//! Trace-driven churn: instead of a uniform churn rate, replay a
//! heavy-tailed join/leave schedule derived from the synthetic BOINC hosts'
//! availability (what the paper's cited volatility studies measure), and
//! check the overlay keeps answering.

use std::collections::HashMap;

use autosel::prelude::*;
use autosel::traces::sessions::{Schedule, SessionEvent};

#[test]
fn overlay_survives_trace_driven_sessions() {
    let hosts: Vec<_> = HostGenerator::new(11).take(150).collect();
    let rows: Vec<Vec<u64>> = hosts.iter().map(|h| h.to_values()).collect();
    let space = fit_space(&rows, 3).expect("fit space");

    let mut cfg = SimConfig {
        latency: LatencyModel::Constant { ms: 5 },
        ..SimConfig::default()
    };
    cfg.gossip.period_ms = 10_000;

    let mut sim = SimCluster::new(space.clone(), cfg, 5);

    // 30 000 s of sessions: mean offline gap 30 min.
    let schedule = Schedule::generate(&hosts, 10_000, 1_800, 7);
    let mut alive: HashMap<usize, NodeId> = HashMap::new();

    // Apply the t = 0 joins, then let gossip build the overlay.
    for &(t, ev) in schedule.events() {
        if t > 0 {
            break;
        }
        if let SessionEvent::Join { host } = ev {
            let id = sim.add_node(space.point(&rows[host]).unwrap());
            alive.insert(host, id);
        }
    }
    let initial = alive.len();
    assert!(initial > 30, "enough hosts start online: {initial}");
    sim.run_until(250_000);

    // Replay the schedule in 100-virtual-second steps, probing periodically.
    let mut deliveries = Vec::new();
    let mut cursor = 0u64;
    let t0 = sim.now();
    while cursor < 3_000 {
        for &(t, ev) in schedule.window(cursor, cursor + 100) {
            let _ = t;
            match ev {
                SessionEvent::Join { host } => {
                    alive.entry(host).or_insert_with(|| {
                        // Rejoin under a fresh identity (§6.6's model).
                        
                        sim.add_node(space.point(&rows[host]).unwrap())
                    });
                }
                SessionEvent::Leave { host } => {
                    if let Some(id) = alive.remove(&host) {
                        sim.kill(id);
                    }
                }
            }
        }
        cursor += 100;
        sim.run_until(t0 + cursor * 1_000); // schedule seconds = sim seconds
        if cursor.is_multiple_of(1_000) && sim.len() > 10 {
            let query = Query::builder(&space).min("cpu_cores", 2).build().unwrap();
            let origin = sim.random_node();
            let qid = sim.issue_query(origin, query, None);
            sim.run_until(sim.now() + 60_000);
            deliveries.push(sim.query_stats(qid).unwrap().delivery());
            sim.forget_query(qid);
        }
    }
    assert!(!deliveries.is_empty());
    let mean: f64 = deliveries.iter().sum::<f64>() / deliveries.len() as f64;
    assert!(
        mean > 0.7,
        "trace-driven churn: mean delivery {mean:.3} over {deliveries:?}"
    );
}
