//! Cross-crate integration: synthetic traces feed a fitted space, the
//! simulator answers queries over it, and the DHT baseline shows the load
//! imbalance the paper contrasts against (Fig. 9b in miniature).

use autosel::dht::{Ring, SwordIndex};
use autosel::prelude::*;
use autosel::sim::LoadHistogram;

#[test]
fn boinc_traces_through_fitted_space_and_simulator() {
    let hosts: Vec<_> = HostGenerator::new(77).take(1_500).collect();
    let rows: Vec<Vec<u64>> = hosts.iter().map(|h| h.to_values()).collect();
    let space = fit_space(&rows, 3).expect("fit space");

    let mut cluster = SimCluster::new(space.clone(), SimConfig::fast_static(), 3);
    cluster.populate(&Placement::Trace(rows.clone()), rows.len());
    cluster.wire_oracle();

    // Multi-core, RAM-rich machines.
    let query = Query::builder(&space)
        .min("cpu_cores", 4)
        .min("ram_mb", 2_048)
        .build()
        .expect("valid query");
    let truth = rows
        .iter()
        .filter(|r| r[0] >= 4 && r[2] >= 2_048)
        .count();

    let origin = cluster.random_node();
    let qid = cluster.issue_query(origin, query, None);
    cluster.run_to_quiescence();
    let stats = cluster.query_stats(qid).expect("stats");
    assert_eq!(stats.truth as usize, truth);
    assert_eq!(stats.delivery(), 1.0, "all {truth} candidates reached");
    assert_eq!(stats.duplicates, 0);
    assert_eq!(
        cluster.query_result(qid).expect("completed").len(),
        truth,
        "all candidates reported"
    );
}

#[test]
fn load_balance_beats_dht_baseline_on_skewed_traces() {
    // The headline of §6.4: on skewed attributes, delegation (SWORD on a
    // DHT) concentrates query traffic on few registry nodes; autonomous
    // selection spreads it.
    let hosts: Vec<_> = HostGenerator::new(42).take(800).collect();
    let rows: Vec<Vec<u64>> = hosts.iter().map(|h| h.to_values()).collect();
    let space = fit_space(&rows, 3).expect("fit space");

    // Our system: issue 50 σ-bounded queries from random nodes.
    let mut cluster = SimCluster::new(space.clone(), SimConfig::fast_static(), 9);
    cluster.populate(&Placement::Trace(rows.clone()), rows.len());
    cluster.wire_oracle();
    cluster.reset_load();
    for i in 0..50 {
        let query = Query::builder(&space)
            .min("ram_mb", if i % 2 == 0 { 512 } else { 1_024 })
            .exact("os_family", 0) // the 87%-popular value: worst skew
            .build()
            .expect("valid query");
        let origin = cluster.random_node();
        let qid = cluster.issue_query(origin, query, Some(50));
        cluster.run_to_quiescence();
        cluster.forget_query(qid);
    }
    let ours = cluster.load_histogram();

    // DHT baseline: same resources, same 50 queries.
    let ring = Ring::new(
        (0..rows.len() as u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect(),
    );
    let attr_max: Vec<u64> = (0..16)
        .map(|k| rows.iter().map(|r| r[k]).max().unwrap_or(1).max(1))
        .collect();
    let mut index = SwordIndex::build(ring, &rows, &attr_max);
    let starts: Vec<u64> = index.ring().nodes().to_vec();
    for i in 0..50usize {
        let ram_lo = if i % 2 == 0 { 512 } else { 1_024 };
        let mut filters = vec![(0u64, u64::MAX); 16];
        filters[2] = (ram_lo, u64::MAX);
        filters[8] = (0, 0);
        // SWORD searches the os_family range (the skewed attribute).
        let _ = index.range_query(starts[i * 7 % starts.len()], 8, (0, 0), &filters, Some(50));
    }
    let dht = LoadHistogram::new(index.load_per_node());

    // Compare imbalance: max/mean ratio.
    let ours_ratio = ours.max() as f64 / ours.mean().max(1e-9);
    let dht_ratio = dht.max() as f64 / dht.mean().max(1e-9);
    assert!(
        dht_ratio > 3.0 * ours_ratio,
        "DHT should be far more imbalanced: ours {ours_ratio:.1}, dht {dht_ratio:.1}"
    );
}

#[test]
fn best_and_worst_case_queries_bracket_overhead() {
    use autosel::sim::workload::{best_case_query, worst_case_query};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let space = Space::uniform(5, 80, 3).expect("space");
    let mut cluster = SimCluster::new(space.clone(), SimConfig::fast_static(), 21);
    cluster.populate(&Placement::Uniform { lo: 0, hi: 80 }, 3_000);
    cluster.wire_oracle();

    let mut rng = StdRng::seed_from_u64(4);
    let f = 0.125;
    let mut best_overhead = 0u64;
    let mut worst_overhead = 0u64;
    for _ in 0..5 {
        let bq = best_case_query(&space, f, &mut rng);
        let origin = cluster.random_node();
        let qid = cluster.issue_query(origin, bq, None);
        cluster.run_to_quiescence();
        best_overhead += cluster.query_stats(qid).expect("stats").overhead;
        cluster.forget_query(qid);

        let wq = worst_case_query(&space, f);
        let origin = cluster.random_node();
        let qid = cluster.issue_query(origin, wq, None);
        cluster.run_to_quiescence();
        worst_overhead += cluster.query_stats(qid).expect("stats").overhead;
        cluster.forget_query(qid);
    }
    assert!(
        worst_overhead > 3 * best_overhead.max(1),
        "worst-case routing must cost much more: best {best_overhead}, worst {worst_overhead}"
    );
}
