//! The §6.6–6.7 behaviours end to end in the simulator: churn resilience,
//! massive-failure recovery, and the 90%-failure partition the paper reports
//! as unrecoverable.

use autosel::prelude::*;

fn dynamic_config() -> SimConfig {
    let mut cfg = SimConfig {
        latency: LatencyModel::Constant { ms: 5 },
        ..SimConfig::default()
    };
    cfg.gossip.period_ms = 10_000;
    cfg
}

fn probe_delivery(cluster: &mut SimCluster, space: &Space) -> f64 {
    let query = Query::builder(space).min("a0", 40).build().expect("query");
    let origin = cluster.random_node();
    let qid = cluster.issue_query(origin, query, None);
    cluster.run_until(cluster.now() + 60_000);
    let d = cluster.query_stats(qid).expect("stats").delivery();
    cluster.forget_query(qid);
    d
}

#[test]
fn churn_barely_dents_delivery() {
    let space = Space::uniform(5, 80, 3).expect("space");
    let placement = Placement::Uniform { lo: 0, hi: 80 };
    let mut cluster = SimCluster::new(space.clone(), dynamic_config(), 31);
    cluster.populate(&placement, 400);
    cluster.run_until(250_000);

    let mut total = 0.0;
    let rounds = 6;
    for _ in 0..rounds {
        cluster.churn_step(0.002, &placement); // 0.2% per 10 s (Fig. 11b)
        cluster.run_until(cluster.now() + 10_000);
        total += probe_delivery(&mut cluster, &space);
    }
    let avg = total / rounds as f64;
    assert!(avg > 0.75, "average delivery under churn was {avg:.3}"); // paper band: 0.8-0.95
}

#[test]
fn fifty_percent_failure_recovers() {
    let space = Space::uniform(4, 80, 3).expect("space");
    let placement = Placement::Uniform { lo: 0, hi: 80 };
    let mut cluster = SimCluster::new(space.clone(), dynamic_config(), 32);
    cluster.populate(&placement, 400);
    cluster.run_until(250_000);

    assert!(probe_delivery(&mut cluster, &space) > 0.99, "pre-failure baseline");

    cluster.kill_fraction(0.5);
    // Right after the blast, delivery is disrupted (many broken links).
    let just_after = probe_delivery(&mut cluster, &space);

    // The paper: full recovery within ~15 minutes (90 gossip rounds).
    cluster.run_until(cluster.now() + 600_000);
    let recovered = probe_delivery(&mut cluster, &space);
    assert!(
        recovered > 0.95,
        "after recovery window delivery is {recovered:.3} (was {just_after:.3})"
    );
}

#[test]
fn ninety_percent_failure_may_partition() {
    // §6.7: "Only in the case of 90% simultaneous failures, the delivery
    // could not be restored. The overlay was partitioned." With 60 survivors
    // the overlay *sometimes* stays connected; the robust claim is that
    // recovery is much worse than the 50% case.
    let space = Space::uniform(4, 80, 3).expect("space");
    let placement = Placement::Uniform { lo: 0, hi: 80 };
    let mut cluster = SimCluster::new(space.clone(), dynamic_config(), 33);
    cluster.populate(&placement, 400);
    cluster.run_until(250_000);

    cluster.kill_fraction(0.9);
    cluster.run_until(cluster.now() + 600_000);
    let recovered = probe_delivery(&mut cluster, &space);
    // Survivors answer *something* — the protocol never hangs — even if the
    // overlay stays split.
    assert!((0.0..=1.0).contains(&recovered));
    assert_eq!(cluster.len(), 40);
}

#[test]
fn repeated_decimation_planetlab_style() {
    // Fig. 13: kill 10% every "20 minutes" without replacement; delivery
    // dips and recovers each time.
    let space = Space::uniform(3, 80, 3).expect("space");
    let placement = Placement::Uniform { lo: 0, hi: 80 };
    let mut cluster = SimCluster::new(space.clone(), dynamic_config(), 34);
    cluster.populate(&placement, 302); // the paper's PlanetLab population
    cluster.run_until(250_000);

    for wave in 0..3 {
        cluster.kill_fraction(0.10);
        cluster.run_until(cluster.now() + 400_000); // 40 gossip rounds
        let d = probe_delivery(&mut cluster, &space);
        assert!(d > 0.9, "wave {wave}: delivery {d:.3} after recovery window");
    }
    assert!(cluster.len() < 302 && cluster.len() > 200);
}
