//! Minimal flat-JSON writer and parser.
//!
//! The workspace has no registry access and vendors every dependency, so
//! the observability layer hand-rolls the one JSON shape it needs: a flat
//! object of string / integer / bool / null fields — no nesting, no
//! arrays, no floats. Both directions are covered so `tracedump` can read
//! back what [`crate::JsonlSink`] wrote.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Builds one flat JSON object with caller-controlled field order.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter { buf: String::from("{") }
    }

    fn key(&mut self, name: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(name);
        self.buf.push_str("\":");
    }

    /// Appends a string field (value is escaped).
    pub fn str_field(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push('"');
        for c in value.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\t' => self.buf.push_str("\\t"),
                '\r' => self.buf.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Appends an unsigned integer field.
    pub fn u64_field(&mut self, name: &str, value: u64) {
        self.key(name);
        let _ = write!(self.buf, "{value}");
    }

    /// Appends a signed integer field.
    pub fn i64_field(&mut self, name: &str, value: i64) {
        self.key(name);
        let _ = write!(self.buf, "{value}");
    }

    /// Appends a boolean field.
    pub fn bool_field(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Appends an explicit `null` field.
    pub fn null_field(&mut self, name: &str) {
        self.key(name);
        self.buf.push_str("null");
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// One parsed field value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// A string (already unescaped).
    Str(String),
    /// An integer; JSON numbers with a fraction or exponent are rejected.
    Int(i128),
    /// A boolean.
    Bool(bool),
    /// An explicit `null`.
    Null,
}

/// A parsed flat object: field name → value.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct JsonObject {
    fields: BTreeMap<String, JsonValue>,
}

impl JsonObject {
    /// Raw access to a field, if present.
    pub fn get(&self, name: &str) -> Option<&JsonValue> {
        self.fields.get(name)
    }

    /// The field as a string, or an error naming the field.
    pub fn str(&self, name: &str) -> Result<&str, String> {
        match self.get(name) {
            Some(JsonValue::Str(s)) => Ok(s),
            Some(v) => Err(format!("field {name:?}: expected string, got {v:?}")),
            None => Err(format!("missing field {name:?}")),
        }
    }

    /// The field as a `u64`, or an error naming the field.
    pub fn u64(&self, name: &str) -> Result<u64, String> {
        match self.get(name) {
            Some(JsonValue::Int(i)) => {
                u64::try_from(*i).map_err(|_| format!("field {name:?}: {i} out of u64 range"))
            }
            Some(v) => Err(format!("field {name:?}: expected integer, got {v:?}")),
            None => Err(format!("missing field {name:?}")),
        }
    }

    /// The field as an `i64`, or an error naming the field.
    pub fn i64(&self, name: &str) -> Result<i64, String> {
        match self.get(name) {
            Some(JsonValue::Int(i)) => {
                i64::try_from(*i).map_err(|_| format!("field {name:?}: {i} out of i64 range"))
            }
            Some(v) => Err(format!("field {name:?}: expected integer, got {v:?}")),
            None => Err(format!("missing field {name:?}")),
        }
    }

    /// The field as a bool, or an error naming the field.
    pub fn bool(&self, name: &str) -> Result<bool, String> {
        match self.get(name) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            Some(v) => Err(format!("field {name:?}: expected bool, got {v:?}")),
            None => Err(format!("missing field {name:?}")),
        }
    }

    /// Errors when the object holds a field outside `allowed` — the event
    /// schema is closed, so an unexpected field means a malformed trace.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), String> {
        for name in self.fields.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(format!("unexpected field {name:?}"));
            }
        }
        Ok(())
    }
}

/// Parses one flat JSON object (one JSONL line).
pub fn parse_object(input: &str) -> Result<JsonObject, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            if fields.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate field {key:?}"));
            }
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(JsonObject { fields })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad \\u escape digit")?;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected literal {word:?}"))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err("non-integer numbers are not part of the event schema".into());
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i128>().map(JsonValue::Int).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_agree() {
        let mut w = ObjectWriter::new();
        w.str_field("name", "a \"quoted\"\\ value\n");
        w.u64_field("big", u64::MAX);
        w.i64_field("neg", -3);
        w.bool_field("yes", true);
        w.null_field("nothing");
        let text = w.finish();
        let obj = parse_object(&text).unwrap();
        assert_eq!(obj.str("name").unwrap(), "a \"quoted\"\\ value\n");
        assert_eq!(obj.u64("big").unwrap(), u64::MAX);
        assert_eq!(obj.i64("neg").unwrap(), -3);
        assert!(obj.bool("yes").unwrap());
        assert_eq!(obj.get("nothing"), Some(&JsonValue::Null));
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_object("{}").unwrap(), JsonObject::default());
        assert_eq!(parse_object(" { } ").unwrap(), JsonObject::default());
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "{\"a\":}", "{\"a\":1,}", "{\"a\":1}x", "{\"a\":1.5}", "{\"a\":1,\"a\":2}"] {
            assert!(parse_object(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn unicode_survives() {
        let mut w = ObjectWriter::new();
        w.str_field("s", "héllo → wörld");
        let text = w.finish();
        assert_eq!(parse_object(&text).unwrap().str("s").unwrap(), "héllo → wörld");
        // Escaped code points parse too.
        let obj = parse_object("{\"s\":\"\\u00e9\"}").unwrap();
        assert_eq!(obj.str("s").unwrap(), "é");
    }
}
