//! Always-on flight recorder: the last K events, bounded memory, dump on
//! demand.
//!
//! Tracing everything at N = 1 000 000 is not an option — a JSONL sink
//! writes gigabytes per virtual hour and a [`TraceTree`](crate::TraceTree)
//! keeps every span alive. A [`FlightRecorder`] is the always-on
//! alternative: a fixed-capacity ring of recent typed [`Event`]s that
//! overwrites its oldest entry on wraparound, so memory is bounded by
//! construction and the recording cost per event is one slot write. When
//! something goes wrong — an [`InvariantChecker`] violation, a soak health
//! breach, an operator asking "what just happened?" — the ring holds the
//! last K events leading up to the fault and [`FlightRecorder::dump_jsonl`]
//! writes them out as ordinary trace JSONL, parseable by the same
//! closed-schema parser (`jsonl::parse_trace`) as a full trace.
//!
//! **Writer discipline.** The recorder is designed single-writer: one
//! emitting context (a simulator, or one peer thread) per recorder. Under
//! `forbid(unsafe_code)` the slot write goes through a `Mutex`, but with a
//! single writer that mutex is uncontended on every push — a reader taking
//! a dump is the only thing that ever waits. Multiple writers are *safe*
//! (the lock serializes them) — their interleaving is simply whatever the
//! lock order was.
//!
//! [`InvariantChecker`]: ../overlay_sim/struct.InvariantChecker.html

use std::io::Write;

use crate::event::Event;
use crate::observer::Observer;
use crate::sync::TrackedMutex;

#[derive(Debug)]
struct Ring {
    /// Slots in ring order; grows to capacity once, then wraps.
    slots: Vec<Event>,
    /// Next slot to overwrite once `slots` is full.
    next: usize,
    /// Events ever pushed (so `dropped = total − len`).
    total: u64,
}

/// A fixed-capacity ring buffer of the most recent [`Event`]s.
///
/// Implements [`Observer`], so it can be installed anywhere a trace sink
/// can — including fanned out next to a [`Registry`](crate::Registry) — and
/// like every observer it never feeds back into the protocol.
#[derive(Debug)]
pub struct FlightRecorder {
    // lock-class: obs.flight.ring
    ring: TrackedMutex<Ring>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs at least one slot");
        FlightRecorder {
            ring: TrackedMutex::new(
                "obs.flight.ring",
                Ring { slots: Vec::with_capacity(capacity), next: 0, total: 0 },
            ),
            capacity,
        }
    }

    /// The fixed slot count K.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().slots.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events ever pushed, including those overwritten since.
    pub fn total_seen(&self) -> u64 {
        self.ring.lock().total
    }

    /// Events lost to wraparound (`total_seen − len`).
    pub fn dropped(&self) -> u64 {
        let ring = self.ring.lock();
        ring.total - ring.slots.len() as u64
    }

    /// Records one event, overwriting the oldest once full.
    pub fn push(&self, event: Event) {
        let mut ring = self.ring.lock();
        ring.total += 1;
        if ring.slots.len() < self.capacity {
            ring.slots.push(event);
        } else {
            let at = ring.next;
            ring.slots[at] = event;
            ring.next = (at + 1) % self.capacity;
        }
    }

    /// The held events, oldest first — exactly the most recent
    /// `min(total_seen, capacity)` pushes in push order.
    pub fn recent(&self) -> Vec<Event> {
        let ring = self.ring.lock();
        let mut out = Vec::with_capacity(ring.slots.len());
        if ring.slots.len() == self.capacity {
            out.extend_from_slice(&ring.slots[ring.next..]);
            out.extend_from_slice(&ring.slots[..ring.next]);
        } else {
            out.extend_from_slice(&ring.slots);
        }
        out
    }

    /// Empties the ring (the drop counter keeps counting from where it was).
    pub fn clear(&self) {
        let mut ring = self.ring.lock();
        ring.slots.clear();
        ring.next = 0;
    }

    /// Writes the held events, oldest first, as trace JSONL — one
    /// [`Event::to_json`] line per event, parseable by
    /// [`jsonl::parse_trace`](crate::jsonl::parse_trace). Returns the
    /// number of lines written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn dump_jsonl<W: Write>(&self, out: &mut W) -> std::io::Result<u64> {
        let events = self.recent();
        for ev in &events {
            writeln!(out, "{}", ev.to_json())?;
        }
        Ok(events.len() as u64)
    }
}

impl Observer for FlightRecorder {
    fn on_event(&self, event: &Event) {
        self.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::parse_trace;

    fn ev(at: u64) -> Event {
        Event::NodeCrashed { at, node: at }
    }

    #[test]
    fn wraparound_keeps_exactly_the_most_recent_k_in_order() {
        let fr = FlightRecorder::new(4);
        for at in 0..11 {
            fr.push(ev(at));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.total_seen(), 11);
        assert_eq!(fr.dropped(), 7);
        let ats: Vec<u64> = fr.recent().iter().map(Event::at).collect();
        assert_eq!(ats, vec![7, 8, 9, 10], "last K pushes, oldest first");
        // One more push evicts exactly the oldest.
        fr.push(ev(11));
        let ats: Vec<u64> = fr.recent().iter().map(Event::at).collect();
        assert_eq!(ats, vec![8, 9, 10, 11]);
    }

    #[test]
    fn partial_ring_reports_everything_in_order() {
        let fr = FlightRecorder::new(10);
        for at in 0..3 {
            fr.push(ev(at));
        }
        assert_eq!(fr.dropped(), 0);
        let ats: Vec<u64> = fr.recent().iter().map(Event::at).collect();
        assert_eq!(ats, vec![0, 1, 2]);
    }

    #[test]
    fn dump_round_trips_through_the_trace_parser() {
        let fr = FlightRecorder::new(3);
        for at in 0..5 {
            fr.push(ev(at));
        }
        let mut buf = Vec::new();
        let n = fr.dump_jsonl(&mut buf).expect("in-memory write");
        assert_eq!(n, 3);
        let parsed = parse_trace(std::str::from_utf8(&buf).expect("utf8")).expect("valid JSONL");
        assert_eq!(parsed, fr.recent());
    }

    #[test]
    fn clear_resets_contents_but_not_history() {
        let fr = FlightRecorder::new(2);
        fr.push(ev(1));
        fr.push(ev(2));
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.total_seen(), 2);
        fr.push(ev(3));
        let ats: Vec<u64> = fr.recent().iter().map(Event::at).collect();
        assert_eq!(ats, vec![3]);
    }
}
