//! In-memory reconstruction of each query's depth-first routing tree.
//!
//! The protocol guarantees exactly-once delivery, so `(query, node)` names
//! a unique span and the tree is simply: root = the issuing node, edge =
//! the first `QueryForwarded` reaching a node. Everything that violates
//! that shape — a forward from an unknown hop, a second root, a delivery
//! with no issue — is collected as a *problem* for `tracedump --check`,
//! while expected anomalies (duplicate deliveries under fault injection,
//! timeouts, hops that never replied) are *flags* rendered inline.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::event::{Event, NodeRef, QueryRef};
use crate::observer::Observer;

/// One node's span in a query's routing tree.
#[derive(Debug, Clone, Default)]
pub struct Hop {
    /// Causal parent (None only for the root).
    pub parent: Option<NodeRef>,
    /// When the parent handed this subtree over.
    pub forwarded_at: Option<u64>,
    /// When the QUERY delivery arrived here (first, non-duplicate one).
    pub received_at: Option<u64>,
    /// Hierarchy level of the received subtree (-1 = whole space).
    pub level: i8,
    /// Whether this node's resource matched the query.
    pub matched: bool,
    /// Extra (duplicate) QUERY deliveries observed at this hop.
    pub duplicates: u32,
    /// When this hop answered upstream, and with what count.
    pub reply: Option<(u64, u64)>,
    /// When the parent merged this hop's reply (fresh merges only).
    pub merged_at: Option<u64>,
    /// Genuinely stale replies from this hop: copies echoing an attempt id
    /// the parent no longer waited on (duplicated delivery, superseded
    /// forward, post-conclusion arrival). Since attempt-tagged replies, a
    /// stale reply never costs results — the fresh copy of the same
    /// attempt, or the cached retransmission, carries them.
    pub stale_replies: u32,
    /// True when the parent's timeout fired while waiting on this hop.
    pub timed_out: bool,
    /// Children in forwarding order.
    pub children: Vec<NodeRef>,
}

/// Everything reconstructed about one query.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The issuing node (tree root).
    pub root: NodeRef,
    /// Issue timestamp (ms).
    pub issued_at: u64,
    /// σ early-stop bound, when one was requested.
    pub sigma: Option<u32>,
    /// Count-only query?
    pub count_only: bool,
    /// `(at, count)` when the origin observed completion.
    pub completed: Option<(u64, u64)>,
    /// Nodes that cut the traversal short on σ, with the count there.
    pub sigma_stops: Vec<(NodeRef, u64)>,
    /// Every span, keyed by node id.
    pub hops: BTreeMap<NodeRef, Hop>,
}

/// Aggregate numbers for one reconstructed tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Spans in the tree (nodes the query visited).
    pub hops: usize,
    /// Longest root-to-leaf path (root alone = 1).
    pub depth: usize,
    /// Hops whose resource matched.
    pub matched: usize,
    /// Total duplicate deliveries across all hops.
    pub duplicates: u64,
    /// Timeout refires observed.
    pub timeouts: u64,
    /// Non-root hops that received the query but never replied.
    pub leaked: u64,
}

#[derive(Debug, Default)]
struct State {
    queries: BTreeMap<QueryRef, QueryTrace>,
    problems: Vec<String>,
}

/// Appends a problem, capped so a pathological trace cannot balloon memory.
fn push_problem(problems: &mut Vec<String>, msg: String) {
    if problems.len() < 1000 {
        problems.push(msg);
    }
}

impl State {
    fn apply(&mut self, ev: &Event) {
        let State { queries, problems } = self;
        match *ev {
            Event::QueryIssued { at, query, node, sigma, count_only, matched } => {
                if queries.contains_key(&query) {
                    push_problem(
                        problems,
                        format!("{query}: issued more than once (second root at node {node})"),
                    );
                    return;
                }
                let mut hops = BTreeMap::new();
                hops.insert(
                    node,
                    Hop { received_at: Some(at), matched, level: i8::MIN, ..Hop::default() },
                );
                queries.insert(
                    query,
                    QueryTrace {
                        root: node,
                        issued_at: at,
                        sigma,
                        count_only,
                        completed: None,
                        sigma_stops: Vec::new(),
                        hops,
                    },
                );
            }
            Event::QueryForwarded { at, query, from, to, level, .. } => {
                let Some(qt) = queries.get_mut(&query) else {
                    push_problem(problems, format!("{query}: forward {from}->{to} before issue"));
                    return;
                };
                if !qt.hops.contains_key(&from) {
                    push_problem(
                        problems,
                        format!("{query}: forward from {from}, which is not a hop of this tree"),
                    );
                }
                let known = qt.hops.contains_key(&to);
                let hop = qt.hops.entry(to).or_default();
                if !known {
                    hop.parent = Some(from);
                    hop.forwarded_at = Some(at);
                    hop.level = level;
                    if let Some(parent) = qt.hops.get_mut(&from) {
                        parent.children.push(to);
                    }
                }
                // Re-forwards to an already-visited node produce a
                // duplicate delivery there; the receive event flags it.
            }
            Event::QueryReceived { at, query, node, parent, level, matched, duplicate } => {
                let Some(qt) = queries.get_mut(&query) else {
                    push_problem(problems, format!("{query}: delivery at {node} before issue"));
                    return;
                };
                if !qt.hops.contains_key(&parent) {
                    push_problem(
                        problems,
                        format!(
                            "{query}: delivery at {node} from {parent}, which is not a hop of this tree"
                        ),
                    );
                }
                let known = qt.hops.contains_key(&node);
                let hop = qt.hops.entry(node).or_default();
                if duplicate {
                    hop.duplicates += 1;
                } else if hop.received_at.is_some() {
                    push_problem(
                        problems,
                        format!("{query}: second non-duplicate delivery at {node} (t={at})"),
                    );
                } else {
                    hop.received_at = Some(at);
                    hop.level = level;
                    hop.matched = matched;
                    if hop.parent.is_none() && node != qt.root {
                        // Delivery without a matching forward edge (e.g. a
                        // trace that only recorded the receiving side).
                        hop.parent = Some(parent);
                        if !known {
                            if let Some(p) = qt.hops.get_mut(&parent) {
                                p.children.push(node);
                            }
                        }
                    }
                }
            }
            Event::ReplySent { at, query, node, count, .. } => {
                let Some(qt) = queries.get_mut(&query) else {
                    push_problem(problems, format!("{query}: reply from {node} before issue"));
                    return;
                };
                let hop = qt.hops.entry(node).or_default();
                if hop.reply.is_none() {
                    hop.reply = Some((at, count));
                }
            }
            Event::ReplyMerged { at, query, node: _, from, fresh, .. } => {
                let Some(qt) = queries.get_mut(&query) else {
                    push_problem(
                        problems,
                        format!("{query}: merge of {from}'s reply before issue"),
                    );
                    return;
                };
                let hop = qt.hops.entry(from).or_default();
                if fresh {
                    if hop.merged_at.is_none() {
                        hop.merged_at = Some(at);
                    }
                } else {
                    hop.stale_replies += 1;
                }
            }
            Event::TimeoutFired { query, peer, .. } => {
                let Some(qt) = queries.get_mut(&query) else {
                    push_problem(problems, format!("{query}: timeout on {peer} before issue"));
                    return;
                };
                qt.hops.entry(peer).or_default().timed_out = true;
            }
            Event::SigmaStop { query, node, count, .. } => {
                if let Some(qt) = queries.get_mut(&query) {
                    qt.sigma_stops.push((node, count));
                }
            }
            Event::QueryCompleted { at, query, count, .. } => {
                let Some(qt) = queries.get_mut(&query) else {
                    push_problem(problems, format!("{query}: completed before issue"));
                    return;
                };
                qt.completed = Some((at, count));
            }
            // Membership and gossip events carry no per-query causality.
            Event::GossipRound { .. }
            | Event::ViewChange { .. }
            | Event::NodeCrashed { .. }
            | Event::NodeRestarted { .. } => {}
        }
    }
}

/// The in-memory trace sink: feed it events (directly as an [`Observer`]
/// or replayed from a JSONL file) and ask for reconstructed trees.
#[derive(Debug, Default)]
pub struct TraceTree {
    // lock-class: obs.trace.state
    state: Mutex<State>,
}

impl TraceTree {
    /// An empty trace.
    pub fn new() -> Self {
        TraceTree::default()
    }

    /// Feeds one event into the reconstruction (same as `on_event`).
    pub fn apply(&self, ev: &Event) {
        self.state.lock().expect("trace lock").apply(ev);
    }

    /// Every query seen so far, ascending by (origin, seq).
    pub fn queries(&self) -> Vec<QueryRef> {
        self.state.lock().expect("trace lock").queries.keys().copied().collect()
    }

    /// A copy of one query's reconstruction.
    pub fn query(&self, q: QueryRef) -> Option<QueryTrace> {
        self.state.lock().expect("trace lock").queries.get(&q).cloned()
    }

    /// Structural problems: unresolved parents, multiple roots, deliveries
    /// before issue, double non-duplicate delivery. Empty ⇔ the trace is a
    /// well-formed forest with one rooted tree per query.
    pub fn problems(&self) -> Vec<String> {
        self.state.lock().expect("trace lock").problems.clone()
    }

    /// Aggregate numbers for one query's tree.
    pub fn summary(&self, q: QueryRef) -> Option<TraceSummary> {
        let qt = self.query(q)?;
        let mut s = TraceSummary { hops: qt.hops.len(), ..TraceSummary::default() };
        for (&id, hop) in &qt.hops {
            if hop.matched {
                s.matched += 1;
            }
            s.duplicates += hop.duplicates as u64;
            if hop.timed_out {
                s.timeouts += 1;
            }
            if id != qt.root && hop.received_at.is_some() && hop.reply.is_none() {
                s.leaked += 1;
            }
        }
        s.depth = depth_of(&qt, qt.root, 0);
        Some(s)
    }

    /// Renders one query's routing tree as an indented ASCII tree with
    /// per-hop latency/overhead annotations; duplicate deliveries, timeout
    /// refires, stale replies and leaked pending state are flagged inline
    /// at the offending hop.
    pub fn render(&self, q: QueryRef) -> Option<String> {
        let qt = self.query(q)?;
        let mut out = String::new();
        let _ = write!(out, "{q}  origin={}  issued t={}ms", qt.root, qt.issued_at);
        if let Some(sigma) = qt.sigma {
            let _ = write!(out, "  sigma={sigma}");
        }
        if qt.count_only {
            out.push_str("  count-only");
        }
        match qt.completed {
            Some((at, count)) => {
                let _ = write!(out, "  completed t={at}ms count={count} ({} ms)", at - qt.issued_at);
            }
            None => out.push_str("  !UNRESOLVED"),
        }
        out.push('\n');
        for &(node, count) in &qt.sigma_stops {
            let _ = writeln!(out, "  sigma met at node {node} (count={count})");
        }
        render_hop(&mut out, &qt, qt.root, "", true);
        Some(out)
    }

    /// Renders every query in id order, separated by blank lines.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        for q in self.queries() {
            if let Some(tree) = self.render(q) {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&tree);
            }
        }
        out
    }
}

impl Observer for TraceTree {
    fn on_event(&self, event: &Event) {
        self.apply(event);
    }
}

fn depth_of(qt: &QueryTrace, node: NodeRef, seen: usize) -> usize {
    // `seen` guards against a corrupt trace containing a cycle.
    if seen > qt.hops.len() {
        return seen;
    }
    let Some(hop) = qt.hops.get(&node) else { return seen };
    1 + hop.children.iter().map(|&c| depth_of(qt, c, seen + 1)).max().unwrap_or(0)
}

fn render_hop(out: &mut String, qt: &QueryTrace, node: NodeRef, prefix: &str, last: bool) {
    let connector = if prefix.is_empty() {
        ""
    } else if last {
        "`- "
    } else {
        "|- "
    };
    let Some(hop) = qt.hops.get(&node) else {
        let _ = writeln!(out, "{prefix}{connector}[{node}] <missing hop>");
        return;
    };
    let _ = write!(out, "{prefix}{connector}[{node}]");
    if node == qt.root {
        out.push_str(" root");
    } else if hop.level != i8::MIN {
        let _ = write!(out, " L{}", hop.level);
    }
    if node != qt.root {
        match (hop.forwarded_at, hop.received_at) {
            (Some(f), Some(r)) => {
                let _ = write!(out, " recv@{r} (+{} ms)", r.saturating_sub(f));
            }
            (Some(f), None) => {
                let _ = write!(out, " sent@{f} NEVER-RECEIVED");
            }
            (None, Some(r)) => {
                let _ = write!(out, " recv@{r}");
            }
            (None, None) => {}
        }
    }
    out.push_str(if hop.matched { " matched" } else { " overhead" });
    if let Some((at, count)) = hop.reply {
        let _ = write!(out, " reply={count}@{at}");
        if let Some(m) = hop.merged_at {
            if let Some(f) = hop.forwarded_at {
                let _ = write!(out, " (subtree {} ms)", m.saturating_sub(f));
            }
        } else if node != qt.root {
            out.push_str(" UNMERGED");
        }
    }
    if hop.duplicates > 0 {
        let _ = write!(out, " !dup(x{})", hop.duplicates);
    }
    if hop.timed_out {
        out.push_str(" !timeout");
    }
    if hop.stale_replies > 0 {
        let _ = write!(out, " !stale-reply(x{})", hop.stale_replies);
    }
    if node != qt.root && hop.received_at.is_some() && hop.reply.is_none() {
        out.push_str(" !leaked-pending");
    }
    out.push('\n');
    let deeper = if prefix.is_empty() {
        "   ".to_string()
    } else if last {
        format!("{prefix}   ")
    } else {
        format!("{prefix}|  ")
    };
    for (i, &child) in hop.children.iter().enumerate() {
        let last_child = i + 1 == hop.children.len();
        render_hop(out, qt, child, &deeper, last_child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> QueryRef {
        QueryRef::new(1, 0)
    }

    /// 1 → {2, 3}, 2 → 4, with a duplicate delivery at 3.
    fn sample_events() -> Vec<Event> {
        let q = q();
        vec![
            Event::QueryIssued { at: 0, query: q, node: 1, sigma: Some(10), count_only: false, matched: true },
            Event::QueryForwarded { at: 0, query: q, from: 1, to: 2, level: 1, attempt: 1 },
            Event::QueryForwarded { at: 0, query: q, from: 1, to: 3, level: 1, attempt: 2 },
            Event::QueryReceived { at: 5, query: q, node: 2, parent: 1, level: 1, matched: true, duplicate: false },
            Event::QueryReceived { at: 5, query: q, node: 3, parent: 1, level: 1, matched: false, duplicate: false },
            Event::QueryReceived { at: 6, query: q, node: 3, parent: 1, level: 1, matched: false, duplicate: true },
            Event::QueryForwarded { at: 5, query: q, from: 2, to: 4, level: 0, attempt: 1 },
            Event::QueryReceived { at: 10, query: q, node: 4, parent: 2, level: 0, matched: true, duplicate: false },
            Event::ReplySent { at: 10, query: q, node: 4, to: 2, count: 1, attempt: 1 },
            Event::ReplySent { at: 5, query: q, node: 3, to: 1, count: 0, attempt: 2 },
            Event::ReplyMerged { at: 10, query: q, node: 1, from: 3, count: 0, fresh: true, attempt: 2 },
            Event::ReplyMerged { at: 15, query: q, node: 2, from: 4, count: 1, fresh: true, attempt: 1 },
            Event::ReplySent { at: 15, query: q, node: 2, to: 1, count: 2, attempt: 1 },
            Event::ReplyMerged { at: 20, query: q, node: 1, from: 2, count: 2, fresh: true, attempt: 1 },
            Event::QueryCompleted { at: 20, query: q, node: 1, count: 3 },
        ]
    }

    #[test]
    fn reconstructs_one_rooted_tree() {
        let tree = TraceTree::new();
        for ev in sample_events() {
            tree.apply(&ev);
        }
        assert!(tree.problems().is_empty(), "{:?}", tree.problems());
        let qt = tree.query(q()).unwrap();
        assert_eq!(qt.root, 1);
        assert_eq!(qt.completed, Some((20, 3)));
        assert_eq!(qt.hops[&1].children, vec![2, 3]);
        assert_eq!(qt.hops[&2].children, vec![4]);
        assert_eq!(qt.hops[&3].duplicates, 1);
        let s = tree.summary(q()).unwrap();
        assert_eq!(s.hops, 4);
        assert_eq!(s.depth, 3);
        assert_eq!(s.matched, 3);
        assert_eq!(s.duplicates, 1);
        assert_eq!(s.leaked, 0);
    }

    #[test]
    fn render_flags_duplicates_inline() {
        let tree = TraceTree::new();
        for ev in sample_events() {
            tree.apply(&ev);
        }
        let text = tree.render(q()).unwrap();
        assert!(text.contains("completed t=20ms count=3"), "{text}");
        // The duplicate is flagged at node 3's hop line, not elsewhere.
        let dup_line = text.lines().find(|l| l.contains("!dup")).expect("dup flag rendered");
        assert!(dup_line.contains("[3]"), "{text}");
        assert!(text.contains("[2] L1 recv@5 (+5 ms) matched"), "{text}");
    }

    #[test]
    fn unresolved_parent_is_a_problem() {
        let tree = TraceTree::new();
        tree.apply(&Event::QueryIssued {
            at: 0,
            query: q(),
            node: 1,
            sigma: None,
            count_only: false,
            matched: false,
        });
        tree.apply(&Event::QueryForwarded { at: 1, query: q(), from: 99, to: 5, level: 0, attempt: 1 });
        let problems = tree.problems();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("not a hop"), "{problems:?}");
    }

    #[test]
    fn second_root_is_a_problem() {
        let tree = TraceTree::new();
        let issue = Event::QueryIssued {
            at: 0,
            query: q(),
            node: 1,
            sigma: None,
            count_only: false,
            matched: false,
        };
        tree.apply(&issue);
        tree.apply(&issue);
        assert!(tree.problems().iter().any(|p| p.contains("more than once")));
    }

    #[test]
    fn delivery_before_issue_is_a_problem() {
        let tree = TraceTree::new();
        tree.apply(&Event::QueryReceived {
            at: 1,
            query: q(),
            node: 2,
            parent: 1,
            level: 0,
            matched: false,
            duplicate: false,
        });
        assert!(tree.problems().iter().any(|p| p.contains("before issue")));
    }

    #[test]
    fn leaked_pending_state_is_flagged() {
        let tree = TraceTree::new();
        let qr = q();
        tree.apply(&Event::QueryIssued {
            at: 0,
            query: qr,
            node: 1,
            sigma: None,
            count_only: false,
            matched: false,
        });
        tree.apply(&Event::QueryForwarded { at: 0, query: qr, from: 1, to: 2, level: 0, attempt: 1 });
        tree.apply(&Event::QueryReceived {
            at: 3,
            query: qr,
            node: 2,
            parent: 1,
            level: 0,
            matched: false,
            duplicate: false,
        });
        // Node 2 never replies.
        assert_eq!(tree.summary(qr).unwrap().leaked, 1);
        let text = tree.render(qr).unwrap();
        assert!(text.contains("!leaked-pending"), "{text}");
        assert!(text.contains("!UNRESOLVED"), "{text}");
    }
}
