//! Ring-of-buckets sliding windows over counters and histograms.
//!
//! The cumulative [`Registry`](crate::Registry) answers "how many, ever";
//! production observability also needs "how many, *lately*" — queries/sec,
//! timeouts/sec, and the tail latency of the last few seconds rather than
//! of the whole run. A [`WindowedCounter`] / [`WindowedHistogram`] covers
//! that with a fixed ring of time buckets: recording is O(1), memory is
//! bounded by the ring, and a snapshot at instant `now` aggregates exactly
//! the buckets that fall inside the window ending at `now`.
//!
//! **Clock discipline.** Nothing here reads a clock. Every operation takes
//! the caller's `now_ms` — virtual milliseconds from the simulator (so
//! windowed snapshots are deterministic, same events ⇒ same snapshot) or
//! wall-clock milliseconds since cluster start from the network runtime.
//! That is the same contract as [`Event::at`](crate::Event::at), which is
//! how the [`Registry`](crate::Registry) observer can feed windows straight
//! from the event stream.
//!
//! A bucket is *live* at `now` when its epoch (bucket index,
//! `now / bucket_ms`) is within the last `buckets` epochs; stale slots are
//! lazily reset on write and skipped on read, so an idle window naturally
//! decays to zero without any background maintenance.

use crate::registry::Histogram;

/// Shape of a sliding window: `buckets` ring slots of `bucket_ms` each.
///
/// The window span is `bucket_ms × buckets`; a snapshot taken at `now`
/// covers `(now − span, now]` (the bucket containing `now` is included,
/// partially filled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Width of one ring bucket, in milliseconds.
    pub bucket_ms: u64,
    /// Number of ring buckets.
    pub buckets: usize,
}

impl WindowSpec {
    /// A window of `buckets` slots, `bucket_ms` wide each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(bucket_ms: u64, buckets: usize) -> Self {
        assert!(bucket_ms > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        WindowSpec { bucket_ms, buckets }
    }

    /// A spec whose span covers at least `span_ms`, split into `buckets`
    /// slots (rounded up).
    pub fn covering(span_ms: u64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        WindowSpec { bucket_ms: span_ms.div_ceil(buckets as u64).max(1), buckets }
    }

    /// Total window span in milliseconds.
    pub fn span_ms(&self) -> u64 {
        self.bucket_ms * self.buckets as u64
    }

    fn epoch(&self, now_ms: u64) -> u64 {
        now_ms / self.bucket_ms
    }

    /// Whether a slot stamped `slot_epoch` is still inside the window at
    /// `now_epoch`.
    fn live(&self, slot_epoch: u64, now_epoch: u64) -> bool {
        slot_epoch <= now_epoch && slot_epoch + self.buckets as u64 > now_epoch
    }
}

/// One windowed counter reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRate {
    /// Sum of deltas recorded inside the window.
    pub total: u64,
    /// `total` divided by the window span — events per second. A constant
    /// event stream reads its true rate; a burst shorter than the span is
    /// averaged over the whole span (by design: the span *is* the
    /// smoothing interval).
    pub per_sec: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct CounterSlot {
    epoch: u64,
    value: u64,
}

/// A counter whose recent history lives in a ring of time buckets.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    spec: WindowSpec,
    slots: Vec<CounterSlot>,
    /// All-time total, so one structure serves both cumulative and
    /// windowed reads.
    total: u64,
}

impl WindowedCounter {
    /// An empty windowed counter.
    pub fn new(spec: WindowSpec) -> Self {
        WindowedCounter { spec, slots: vec![CounterSlot::default(); spec.buckets], total: 0 }
    }

    /// The window shape.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Adds `delta` at instant `now_ms`.
    pub fn add(&mut self, now_ms: u64, delta: u64) {
        let epoch = self.spec.epoch(now_ms);
        let slot = &mut self.slots[(epoch % self.spec.buckets as u64) as usize];
        if slot.epoch != epoch {
            slot.epoch = epoch;
            slot.value = 0;
        }
        slot.value += delta;
        self.total += delta;
    }

    /// All-time total (every delta ever added).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The window ending at `now_ms`: in-window total and per-second rate.
    pub fn rate(&self, now_ms: u64) -> WindowRate {
        let now_epoch = self.spec.epoch(now_ms);
        let total = self
            .slots
            .iter()
            .filter(|s| self.spec.live(s.epoch, now_epoch))
            .map(|s| s.value)
            .sum();
        WindowRate { total, per_sec: total as f64 * 1e3 / self.spec.span_ms() as f64 }
    }
}

#[derive(Debug, Clone, Default)]
struct HistSlot {
    epoch: u64,
    hist: Histogram,
}

/// A histogram whose recent samples live in a ring of per-bucket
/// sub-histograms; a snapshot merges the live ones, so windowed tail
/// quantiles come from [`Histogram::quantile`] on the merged result.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    spec: WindowSpec,
    slots: Vec<HistSlot>,
    /// All-time histogram, maintained alongside the ring.
    lifetime: Histogram,
}

impl WindowedHistogram {
    /// An empty windowed histogram.
    pub fn new(spec: WindowSpec) -> Self {
        WindowedHistogram {
            spec,
            slots: vec![HistSlot::default(); spec.buckets],
            lifetime: Histogram::default(),
        }
    }

    /// The window shape.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Records one sample at instant `now_ms`.
    pub fn record(&mut self, now_ms: u64, value: u64) {
        let epoch = self.spec.epoch(now_ms);
        let slot = &mut self.slots[(epoch % self.spec.buckets as u64) as usize];
        if slot.epoch != epoch {
            slot.epoch = epoch;
            slot.hist = Histogram::default();
        }
        slot.hist.record(value);
        self.lifetime.record(value);
    }

    /// The all-time histogram (every sample ever recorded).
    pub fn lifetime(&self) -> &Histogram {
        &self.lifetime
    }

    /// Merged histogram of the window ending at `now_ms`.
    pub fn merged(&self, now_ms: u64) -> Histogram {
        let now_epoch = self.spec.epoch(now_ms);
        let mut out = Histogram::default();
        for s in &self.slots {
            if self.spec.live(s.epoch, now_epoch) {
                out.merge(&s.hist);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_window_slides_and_decays() {
        let spec = WindowSpec::new(100, 5); // 500 ms window
        let mut c = WindowedCounter::new(spec);
        c.add(0, 3);
        c.add(120, 2);
        c.add(450, 1);
        assert_eq!(c.rate(450).total, 6, "everything inside the first window");
        // At t=520 the epoch-0 bucket (holding 3) has left the window.
        assert_eq!(c.rate(520).total, 3);
        // Far in the future everything decays; all-time total persists.
        assert_eq!(c.rate(10_000).total, 0);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn counter_rate_is_per_second_over_the_span() {
        let spec = WindowSpec::new(1_000, 10); // 10 s window
        let mut c = WindowedCounter::new(spec);
        for t in 0..10_000 {
            if t % 10 == 0 {
                c.add(t, 1); // 100 events/s
            }
        }
        let r = c.rate(9_999);
        assert_eq!(r.total, 1_000);
        assert!((r.per_sec - 100.0).abs() < 1e-9, "got {}", r.per_sec);
    }

    #[test]
    fn ring_reuse_resets_stale_slots() {
        let spec = WindowSpec::new(10, 2); // 20 ms window, tight ring
        let mut c = WindowedCounter::new(spec);
        c.add(0, 7);
        // Epoch 2 reuses epoch 0's slot and must not inherit its value.
        c.add(25, 1);
        assert_eq!(c.rate(25).total, 1);
    }

    #[test]
    fn histogram_window_merges_live_buckets_only() {
        let spec = WindowSpec::new(100, 3); // 300 ms window
        let mut h = WindowedHistogram::new(spec);
        h.record(0, 1_000);
        h.record(150, 8);
        h.record(250, 16);
        assert_eq!(h.merged(250).count(), 3);
        // t=320: epoch 0 (the 1000 sample) is out of the window.
        let m = h.merged(320);
        assert_eq!(m.count(), 2);
        assert_eq!(m.max(), 16);
        assert_eq!(h.lifetime().count(), 3);
        assert_eq!(h.lifetime().max(), 1_000);
    }

    #[test]
    fn windowed_quantiles_track_the_recent_tail() {
        let spec = WindowSpec::new(1_000, 4);
        let mut h = WindowedHistogram::new(spec);
        // An old slow phase…
        for _ in 0..100 {
            h.record(10, 4_000);
        }
        // …then a fast recent phase.
        for t in 0..100 {
            h.record(10_000 + t, 8);
        }
        let recent = h.merged(10_100);
        assert_eq!(recent.count(), 100);
        assert!(recent.quantile(0.99) <= 16.0, "old tail leaked into the window");
        assert!(h.lifetime().quantile(0.99) >= 2_048.0, "lifetime keeps the slow phase");
    }

    #[test]
    fn covering_spec_spans_at_least_the_request() {
        let spec = WindowSpec::covering(4_500, 8);
        assert!(spec.span_ms() >= 4_500);
        assert_eq!(spec.buckets, 8);
        assert_eq!(WindowSpec::covering(10, 64).bucket_ms, 1);
    }

    #[test]
    fn determinism_same_feed_same_snapshot() {
        let feed: Vec<(u64, u64)> = (0..500).map(|i| (i * 7 % 1_300, i % 40)).collect();
        let run = || {
            let mut h = WindowedHistogram::new(WindowSpec::new(50, 8));
            let mut c = WindowedCounter::new(WindowSpec::new(50, 8));
            for &(t, v) in &feed {
                h.record(t, v);
                c.add(t, 1);
            }
            (h.merged(1_300), c.rate(1_300))
        };
        assert_eq!(run(), run());
    }
}
