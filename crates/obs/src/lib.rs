//! # autosel-obs — zero-dependency, sans-IO observability
//!
//! The workspace's instrumentation layer: a typed [`Event`] vocabulary for
//! the ICDCS'09 selection protocol (query spans with causal parents,
//! gossip-health gauges, membership changes), an [`Observer`] trait that
//! instrumented code calls through a nullable [`ObsHandle`], and three
//! sinks:
//!
//! * [`NullObserver`] — the default. A null [`ObsHandle`] holds `None`, so
//!   the instrumented hot path pays one branch and never constructs the
//!   event value ([`ObsHandle::emit`] takes a closure).
//! * [`JsonlSink`] — streams one flat-JSON line per event to any writer;
//!   [`jsonl::parse_trace`] reads a trace back for offline analysis.
//! * [`TraceTree`] — reconstructs each query's depth-first routing tree in
//!   memory and renders it as an annotated ASCII tree (`tracedump`).
//!
//! A [`Registry`] of counters and log2-bucketed histograms (deterministic,
//! sorted snapshots) is also an [`Observer`], aggregating the standard
//! gauges. Two production additions build on it:
//!
//! * [`window`] — ring-of-buckets sliding windows ([`WindowedCounter`],
//!   [`WindowedHistogram`]) so rates (qps, msgs/s) and windowed tail
//!   quantiles can be snapshotted at any instant; a [`Registry`] built
//!   [`with_windows`](Registry::with_windows) feeds them straight from
//!   event timestamps, so windowed snapshots stay deterministic under
//!   virtual time.
//! * [`flight`] — a [`FlightRecorder`] ring of the most recent K events,
//!   bounded memory, dumpable as trace JSONL on invariant violation or
//!   demand.
//!
//! ## Design constraints
//!
//! * **Zero dependencies.** Every other crate in the workspace (core,
//!   gossip, sim, net, bench) depends on this one, so it must sit at the
//!   bottom of the graph; the container has no registry access anyway.
//!   Ids are raw integers ([`NodeRef`] = `u64`, [`QueryRef`] mirrors the
//!   core crate's `QueryId`) for the same reason.
//! * **Sans-IO.** Only [`JsonlSink`] touches I/O, and only through the
//!   `Write` trait handed to it. The simulator emits **virtual-time**
//!   timestamps, the network runtime **wall-clock** ones — same schema,
//!   same sinks.
//! * **Passive.** Observers never feed back into the protocol, consume
//!   protocol RNG, or affect scheduling; enabling one cannot change a
//!   run's deterministic fingerprints (`sweepbench` digests are
//!   byte-identical with observation on or off).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod flight;
pub mod json;
pub mod jsonl;
pub mod observer;
pub mod registry;
pub mod sync;
pub mod trace;
pub mod window;

pub use event::{Event, Layer, NodeRef, QueryRef};
pub use flight::FlightRecorder;
pub use jsonl::JsonlSink;
pub use observer::{Fanout, NullObserver, ObsHandle, Observer};
pub use registry::{Histogram, Registry, Snapshot, WindowSnapshot};
pub use sync::{TrackedCondvar, TrackedMutex, TrackedRwLock};
pub use trace::{Hop, QueryTrace, TraceSummary, TraceTree};
pub use window::{WindowRate, WindowSpec, WindowedCounter, WindowedHistogram};
