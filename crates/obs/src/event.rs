//! The typed event vocabulary shared by every sink.
//!
//! Events are deliberately **flat**: every field is a primitive (`u64`,
//! `u32`, `i8`, `bool`) so the crate needs no serialization dependency and
//! both substrates (virtual-time simulator, wall-clock network runtime) can
//! construct them without conversion. Causality is span-style but implicit
//! in the protocol: a query's routing tree visits each node at most once
//! (exactly-once delivery), so the pair `(query, node)` names a span and
//! the `parent`/`from` fields are the causal parent edges.

use std::fmt;

use crate::json::{self, JsonValue};

/// A node identifier as seen by the observability layer.
///
/// This is the raw `u64` behind both `epigossip::NodeId` and the core
/// crate's node ids; keeping it primitive here is what lets `autosel-obs`
/// sit below every other crate with zero dependencies.
pub type NodeRef = u64;

/// A query identifier: the issuing node plus its per-origin sequence
/// number. Mirrors `autosel_core::messages::QueryId` field-for-field and
/// shares its display syntax (`q<origin>#<seq>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryRef {
    /// Node that issued the query.
    pub origin: NodeRef,
    /// Per-origin sequence number.
    pub seq: u32,
}

impl QueryRef {
    /// Builds a reference from its raw parts.
    pub fn new(origin: NodeRef, seq: u32) -> Self {
        QueryRef { origin, seq }
    }

    /// Parses the `q<origin>#<seq>` display syntax back into a reference.
    pub fn parse(s: &str) -> Option<Self> {
        let rest = s.strip_prefix('q')?;
        let (origin, seq) = rest.split_once('#')?;
        Some(QueryRef { origin: origin.parse().ok()?, seq: seq.parse().ok()? })
    }
}

impl fmt::Display for QueryRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}#{}", self.origin, self.seq)
    }
}

/// Which gossip layer a [`Event::GossipRound`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// The bottom CYCLON layer (random peer sampling).
    Random,
    /// The top Vicinity layer (semantic, selector-driven).
    Semantic,
}

impl Layer {
    /// Stable lowercase name used in JSON and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Random => "random",
            Layer::Semantic => "semantic",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "random" => Some(Layer::Random),
            "semantic" => Some(Layer::Semantic),
            _ => None,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observed protocol, gossip, or membership fact.
///
/// Timestamps (`at`) are milliseconds: **virtual** milliseconds when the
/// emitter is the discrete-event simulator, **wall-clock** milliseconds
/// since cluster start when it is the network runtime. The schema is the
/// same either way — that is the point of the sans-IO design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A node issued a new query; the root span of its routing tree.
    QueryIssued {
        /// Timestamp in milliseconds.
        at: u64,
        /// The query this event belongs to.
        query: QueryRef,
        /// The issuing node (always `query.origin`).
        node: NodeRef,
        /// σ early-stop bound, when one was requested.
        sigma: Option<u32>,
        /// True when the query only counts matches instead of listing them.
        count_only: bool,
        /// Whether the origin itself matched the query.
        matched: bool,
    },
    /// A node handed a subtree of the traversal to a neighbor. This is the
    /// causal edge `from → to` in the query's routing tree.
    QueryForwarded {
        /// Timestamp in milliseconds.
        at: u64,
        /// The query this event belongs to.
        query: QueryRef,
        /// Sender (the causal parent of `to` in the tree).
        from: NodeRef,
        /// Receiver of the delegated subtree.
        to: NodeRef,
        /// Hierarchy level `l` the subtree covers (-1 = whole space).
        level: i8,
        /// Per-forward attempt id stamped on the QUERY; the subtree's REPLY
        /// echoes it, which is how stale replies are told apart from live
        /// ones in a trace.
        attempt: u32,
    },
    /// A node received a QUERY message. `duplicate` deliveries (fault
    /// injection, retransmits) are answered with an empty dedup-REPLY and
    /// open no span.
    QueryReceived {
        /// Timestamp in milliseconds.
        at: u64,
        /// The query this event belongs to.
        query: QueryRef,
        /// The receiving node.
        node: NodeRef,
        /// Causal parent: the node the QUERY arrived from.
        parent: NodeRef,
        /// Hierarchy level `l` of the received subtree (-1 = whole space).
        level: i8,
        /// Whether this node's resource matched the query.
        matched: bool,
        /// True when this delivery was a duplicate (already seen).
        duplicate: bool,
    },
    /// A node answered its upstream with its subtree's accumulated result.
    ReplySent {
        /// Timestamp in milliseconds.
        at: u64,
        /// The query this event belongs to.
        query: QueryRef,
        /// The replying node.
        node: NodeRef,
        /// Upstream node the reply is addressed to.
        to: NodeRef,
        /// Matches accumulated in the subtree rooted at `node`.
        count: u64,
        /// The attempt id the reply echoes (from the QUERY that opened this
        /// node's span).
        attempt: u32,
    },
    /// A node processed a REPLY from a downstream neighbor. `fresh` is
    /// false when the reply was genuinely stale — it echoed an attempt the
    /// node no longer waits on (superseded forward, duplicated delivery,
    /// post-timeout arrival) or the query had already concluded — and
    /// could not clear a waiting entry or add a count.
    ReplyMerged {
        /// Timestamp in milliseconds.
        at: u64,
        /// The query this event belongs to.
        query: QueryRef,
        /// The node merging the reply.
        node: NodeRef,
        /// Downstream node the reply came from.
        from: NodeRef,
        /// Matches carried by the reply.
        count: u64,
        /// Whether the sender was still awaited *for this exact attempt*.
        /// Stale (`fresh = false`) replies contribute nothing in count
        /// mode; in enumerate mode the per-id dedup set decides what, if
        /// anything, they add.
        fresh: bool,
        /// The attempt id the reply echoed.
        attempt: u32,
    },
    /// The query timeout `T(q)` fired: `node` stopped waiting on `peer`
    /// and re-fired the subtree elsewhere (or gave up on it).
    TimeoutFired {
        /// Timestamp in milliseconds.
        at: u64,
        /// The query this event belongs to.
        query: QueryRef,
        /// The node whose timer fired.
        node: NodeRef,
        /// The unresponsive downstream peer.
        peer: NodeRef,
    },
    /// The σ bound was met at `node`: the traversal stops early there.
    SigmaStop {
        /// Timestamp in milliseconds.
        at: u64,
        /// The query this event belongs to.
        query: QueryRef,
        /// The node that cut the traversal short.
        node: NodeRef,
        /// Matches accumulated when σ was met.
        count: u64,
    },
    /// The originator observed completion of its own query.
    QueryCompleted {
        /// Timestamp in milliseconds.
        at: u64,
        /// The query this event belongs to.
        query: QueryRef,
        /// The origin node (root of the tree).
        node: NodeRef,
        /// Total matches reported back to the origin.
        count: u64,
    },
    /// One gossip exchange round of one layer finished on a node.
    GossipRound {
        /// Timestamp in milliseconds.
        at: u64,
        /// The gossiping node.
        node: NodeRef,
        /// Which layer ran the round.
        layer: Layer,
        /// Entries in the layer's view after the round.
        view_size: u32,
        /// Mean descriptor age in the view, fixed-point ×1000 (so the
        /// schema stays integer-only).
        mean_age_x1000: u64,
        /// Distinct new peer ids that entered the view since the previous
        /// round (the replacement-rate gauge).
        replaced: u64,
    },
    /// The routing table was rebuilt from the current gossip view.
    ViewChange {
        /// Timestamp in milliseconds.
        at: u64,
        /// The node that rebuilt its table.
        node: NodeRef,
        /// Total live links after the rebuild (slot links + `C0` links).
        links: u32,
        /// `N(l,k)` slots left empty (no known peer covers that subcell).
        zero: u32,
        /// Slots whose occupant changed in this rebuild (table churn).
        changed: u32,
    },
    /// A node crashed (fault injection or real failure).
    NodeCrashed {
        /// Timestamp in milliseconds.
        at: u64,
        /// The crashed node.
        node: NodeRef,
    },
    /// A crashed node came back and re-bootstrapped.
    NodeRestarted {
        /// Timestamp in milliseconds.
        at: u64,
        /// The restarted node.
        node: NodeRef,
    },
}

impl Event {
    /// Stable snake_case name of the variant, used as the JSON `ev` field
    /// and as the per-kind counter key in [`crate::Registry`].
    pub fn kind(&self) -> &'static str {
        match self {
            Event::QueryIssued { .. } => "query_issued",
            Event::QueryForwarded { .. } => "query_forwarded",
            Event::QueryReceived { .. } => "query_received",
            Event::ReplySent { .. } => "reply_sent",
            Event::ReplyMerged { .. } => "reply_merged",
            Event::TimeoutFired { .. } => "timeout_fired",
            Event::SigmaStop { .. } => "sigma_stop",
            Event::QueryCompleted { .. } => "query_completed",
            Event::GossipRound { .. } => "gossip_round",
            Event::ViewChange { .. } => "view_change",
            Event::NodeCrashed { .. } => "node_crashed",
            Event::NodeRestarted { .. } => "node_restarted",
        }
    }

    /// The event's timestamp in milliseconds.
    pub fn at(&self) -> u64 {
        match *self {
            Event::QueryIssued { at, .. }
            | Event::QueryForwarded { at, .. }
            | Event::QueryReceived { at, .. }
            | Event::ReplySent { at, .. }
            | Event::ReplyMerged { at, .. }
            | Event::TimeoutFired { at, .. }
            | Event::SigmaStop { at, .. }
            | Event::QueryCompleted { at, .. }
            | Event::GossipRound { at, .. }
            | Event::ViewChange { at, .. }
            | Event::NodeCrashed { at, .. }
            | Event::NodeRestarted { at, .. } => at,
        }
    }

    /// The query this event belongs to, when it is a protocol event.
    pub fn query(&self) -> Option<QueryRef> {
        match *self {
            Event::QueryIssued { query, .. }
            | Event::QueryForwarded { query, .. }
            | Event::QueryReceived { query, .. }
            | Event::ReplySent { query, .. }
            | Event::ReplyMerged { query, .. }
            | Event::TimeoutFired { query, .. }
            | Event::SigmaStop { query, .. }
            | Event::QueryCompleted { query, .. } => Some(query),
            Event::GossipRound { .. }
            | Event::ViewChange { .. }
            | Event::NodeCrashed { .. }
            | Event::NodeRestarted { .. } => None,
        }
    }

    /// Serializes the event as one flat JSON object (no trailing newline).
    ///
    /// Field order is fixed per variant, so identical events serialize to
    /// identical bytes — trace files diff cleanly across runs.
    pub fn to_json(&self) -> String {
        let mut w = json::ObjectWriter::new();
        w.str_field("ev", self.kind());
        w.u64_field("at", self.at());
        if let Some(q) = self.query() {
            w.str_field("q", &q.to_string());
        }
        match *self {
            Event::QueryIssued { node, sigma, count_only, matched, .. } => {
                w.u64_field("node", node);
                match sigma {
                    Some(s) => w.u64_field("sigma", s as u64),
                    None => w.null_field("sigma"),
                }
                w.bool_field("count_only", count_only);
                w.bool_field("matched", matched);
            }
            Event::QueryForwarded { from, to, level, attempt, .. } => {
                w.u64_field("from", from);
                w.u64_field("to", to);
                w.i64_field("level", level as i64);
                w.u64_field("attempt", attempt as u64);
            }
            Event::QueryReceived { node, parent, level, matched, duplicate, .. } => {
                w.u64_field("node", node);
                w.u64_field("parent", parent);
                w.i64_field("level", level as i64);
                w.bool_field("matched", matched);
                w.bool_field("duplicate", duplicate);
            }
            Event::ReplySent { node, to, count, attempt, .. } => {
                w.u64_field("node", node);
                w.u64_field("to", to);
                w.u64_field("count", count);
                w.u64_field("attempt", attempt as u64);
            }
            Event::ReplyMerged { node, from, count, fresh, attempt, .. } => {
                w.u64_field("node", node);
                w.u64_field("from", from);
                w.u64_field("count", count);
                w.bool_field("fresh", fresh);
                w.u64_field("attempt", attempt as u64);
            }
            Event::TimeoutFired { node, peer, .. } => {
                w.u64_field("node", node);
                w.u64_field("peer", peer);
            }
            Event::SigmaStop { node, count, .. } | Event::QueryCompleted { node, count, .. } => {
                w.u64_field("node", node);
                w.u64_field("count", count);
            }
            Event::GossipRound { node, layer, view_size, mean_age_x1000, replaced, .. } => {
                w.u64_field("node", node);
                w.str_field("layer", layer.name());
                w.u64_field("view_size", view_size as u64);
                w.u64_field("mean_age_x1000", mean_age_x1000);
                w.u64_field("replaced", replaced);
            }
            Event::ViewChange { node, links, zero, changed, .. } => {
                w.u64_field("node", node);
                w.u64_field("links", links as u64);
                w.u64_field("zero", zero as u64);
                w.u64_field("changed", changed as u64);
            }
            Event::NodeCrashed { node, .. } | Event::NodeRestarted { node, .. } => {
                w.u64_field("node", node);
            }
        }
        w.finish()
    }

    /// Parses one JSONL line produced by [`Event::to_json`] back into an
    /// event. Field order does not matter; unknown fields are errors (the
    /// schema is closed so `tracedump --check` catches malformed traces).
    pub fn from_json(line: &str) -> Result<Event, String> {
        let obj = json::parse_object(line)?;
        let kind = obj.str("ev")?;
        let at = obj.u64("at")?;
        let query = || -> Result<QueryRef, String> {
            let s = obj.str("q")?;
            QueryRef::parse(s).ok_or_else(|| format!("bad query ref {s:?}"))
        };
        let known: &[&str] = match kind {
            "query_issued" => &["ev", "at", "q", "node", "sigma", "count_only", "matched"],
            "query_forwarded" => &["ev", "at", "q", "from", "to", "level", "attempt"],
            "query_received" => &["ev", "at", "q", "node", "parent", "level", "matched", "duplicate"],
            "reply_sent" => &["ev", "at", "q", "node", "to", "count", "attempt"],
            "reply_merged" => &["ev", "at", "q", "node", "from", "count", "fresh", "attempt"],
            "timeout_fired" => &["ev", "at", "q", "node", "peer"],
            "sigma_stop" | "query_completed" => &["ev", "at", "q", "node", "count"],
            "gossip_round" => {
                &["ev", "at", "node", "layer", "view_size", "mean_age_x1000", "replaced"]
            }
            "view_change" => &["ev", "at", "node", "links", "zero", "changed"],
            "node_crashed" | "node_restarted" => &["ev", "at", "node"],
            other => return Err(format!("unknown event kind {other:?}")),
        };
        obj.expect_only(known)?;
        let ev = match kind {
            "query_issued" => Event::QueryIssued {
                at,
                query: query()?,
                node: obj.u64("node")?,
                sigma: match obj.get("sigma") {
                    Some(JsonValue::Null) => None,
                    _ => Some(obj.u64("sigma")? as u32),
                },
                count_only: obj.bool("count_only")?,
                matched: obj.bool("matched")?,
            },
            "query_forwarded" => Event::QueryForwarded {
                at,
                query: query()?,
                from: obj.u64("from")?,
                to: obj.u64("to")?,
                level: obj.i64("level")? as i8,
                attempt: obj.u64("attempt")? as u32,
            },
            "query_received" => Event::QueryReceived {
                at,
                query: query()?,
                node: obj.u64("node")?,
                parent: obj.u64("parent")?,
                level: obj.i64("level")? as i8,
                matched: obj.bool("matched")?,
                duplicate: obj.bool("duplicate")?,
            },
            "reply_sent" => Event::ReplySent {
                at,
                query: query()?,
                node: obj.u64("node")?,
                to: obj.u64("to")?,
                count: obj.u64("count")?,
                attempt: obj.u64("attempt")? as u32,
            },
            "reply_merged" => Event::ReplyMerged {
                at,
                query: query()?,
                node: obj.u64("node")?,
                from: obj.u64("from")?,
                count: obj.u64("count")?,
                fresh: obj.bool("fresh")?,
                attempt: obj.u64("attempt")? as u32,
            },
            "timeout_fired" => Event::TimeoutFired {
                at,
                query: query()?,
                node: obj.u64("node")?,
                peer: obj.u64("peer")?,
            },
            "sigma_stop" => Event::SigmaStop {
                at,
                query: query()?,
                node: obj.u64("node")?,
                count: obj.u64("count")?,
            },
            "query_completed" => Event::QueryCompleted {
                at,
                query: query()?,
                node: obj.u64("node")?,
                count: obj.u64("count")?,
            },
            "gossip_round" => Event::GossipRound {
                at,
                node: obj.u64("node")?,
                layer: {
                    let name = obj.str("layer")?;
                    Layer::parse(name).ok_or_else(|| format!("bad layer {name:?}"))?
                },
                view_size: obj.u64("view_size")? as u32,
                mean_age_x1000: obj.u64("mean_age_x1000")?,
                replaced: obj.u64("replaced")?,
            },
            "view_change" => Event::ViewChange {
                at,
                node: obj.u64("node")?,
                links: obj.u64("links")? as u32,
                zero: obj.u64("zero")? as u32,
                changed: obj.u64("changed")? as u32,
            },
            "node_crashed" => Event::NodeCrashed { at, node: obj.u64("node")? },
            "node_restarted" => Event::NodeRestarted { at, node: obj.u64("node")? },
            _ => unreachable!("kind validated above"),
        };
        Ok(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Event> {
        let q = QueryRef::new(7, 3);
        vec![
            Event::QueryIssued {
                at: 0,
                query: q,
                node: 7,
                sigma: Some(50),
                count_only: false,
                matched: true,
            },
            Event::QueryIssued { at: 0, query: q, node: 7, sigma: None, count_only: true, matched: false },
            Event::QueryForwarded { at: 1, query: q, from: 7, to: 12, level: -1, attempt: 2 },
            Event::QueryReceived {
                at: 2,
                query: q,
                node: 12,
                parent: 7,
                level: 2,
                matched: false,
                duplicate: true,
            },
            Event::ReplySent { at: 3, query: q, node: 12, to: 7, count: 4, attempt: 2 },
            Event::ReplyMerged { at: 4, query: q, node: 7, from: 12, count: 4, fresh: true, attempt: 2 },
            Event::TimeoutFired { at: 5, query: q, node: 7, peer: 12 },
            Event::SigmaStop { at: 6, query: q, node: 9, count: 51 },
            Event::QueryCompleted { at: 7, query: q, node: 7, count: 51 },
            Event::GossipRound {
                at: 8,
                node: 3,
                layer: Layer::Semantic,
                view_size: 16,
                mean_age_x1000: 2500,
                replaced: 3,
            },
            Event::ViewChange { at: 9, node: 3, links: 14, zero: 2, changed: 1 },
            Event::NodeCrashed { at: 10, node: 5 },
            Event::NodeRestarted { at: 11, node: 5 },
        ]
    }

    #[test]
    fn json_round_trips_every_variant() {
        for ev in all_variants() {
            let line = ev.to_json();
            let back = Event::from_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(ev, back, "round trip failed for {line}");
        }
    }

    #[test]
    fn query_ref_display_parses_back() {
        let q = QueryRef::new(123, 45);
        assert_eq!(q.to_string(), "q123#45");
        assert_eq!(QueryRef::parse("q123#45"), Some(q));
        assert_eq!(QueryRef::parse("123#45"), None);
        assert_eq!(QueryRef::parse("q123"), None);
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let line = r#"{"ev":"node_crashed","at":10,"node":5,"extra":1}"#;
        assert!(Event::from_json(line).is_err());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let line = r#"{"ev":"warp_drive","at":10,"node":5}"#;
        assert!(Event::from_json(line).is_err());
    }

    #[test]
    fn serialization_is_stable() {
        let ev = Event::QueryForwarded {
            at: 17,
            query: QueryRef::new(2, 0),
            from: 2,
            to: 9,
            level: 3,
            attempt: 1,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"query_forwarded","at":17,"q":"q2#0","from":2,"to":9,"level":3,"attempt":1}"#
        );
    }
}
