//! Counters and log2-bucketed histograms with deterministic snapshots.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::event::Event;
use crate::observer::Observer;
use crate::window::{WindowRate, WindowSpec, WindowedCounter, WindowedHistogram};

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `b` holds samples whose bit length is `b` (so bucket 0 is the
/// value 0, bucket 1 is value 1, bucket 2 is 2–3, bucket 3 is 4–7, …).
/// 65 buckets cover the whole `u64` range; recording is O(1) and the
/// digest of a histogram is independent of sample order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs in ascending
    /// order. `lower_bound` is the smallest value the bucket can hold.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, c))
            .collect()
    }

    /// Folds another histogram into this one (bucket-wise addition).
    ///
    /// This is how windowed histograms aggregate their ring of per-bucket
    /// sub-histograms into one snapshot; because buckets are positional the
    /// merge is exact — merging then querying equals querying the union of
    /// both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Estimated `q`-quantile of the recorded samples, `q ∈ [0, 1]`.
    ///
    /// Walks the cumulative bucket counts to the bucket holding the sample
    /// of rank `ceil(q · count)` and linearly interpolates inside it
    /// (bucket `b > 0` spans `[2^(b-1), 2^b)`), clamped to [`max`]. Returns
    /// 0.0 when the histogram is empty; `quantile(0.0)` selects the
    /// smallest recorded sample's bucket and `quantile(1.0)` is exactly
    /// [`max`].
    ///
    /// **Error bound.** The true rank-`r` sample lies in the same bucket
    /// the estimate is drawn from, so estimate and truth are both within
    /// one power-of-two span: the estimate is off by strictly less than a
    /// factor of 2 (relative error < 100%), never exceeds [`max`], and for
    /// bucket 0 (the value 0) it is exact. With every sample an exact power
    /// of two, the rank-selection step itself is exact and only the
    /// intra-bucket interpolation adds error.
    ///
    /// Monotone in `q` by construction: cumulative counts only grow and the
    /// interpolation within a bucket is increasing.
    ///
    /// [`max`]: Histogram::max
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the selected sample, 1-based: ceil(q·count), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if b == 0 {
                    return 0.0; // bucket 0 holds only the value 0
                }
                // Bucket b spans [2^(b-1), 2^b − 1]; bucket 64 tops out at
                // u64::MAX. Interpolating toward the *inclusive* top keeps
                // single-value buckets (b = 1) exact.
                let lo = 1u64 << (b - 1);
                let hi = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
                let into = (rank - seen) as f64 / c as f64; // (0, 1]
                let est = lo as f64 + (hi - lo) as f64 * into;
                return est.min(self.max as f64);
            }
            seen += c;
        }
        self.max as f64 // unreachable in practice: rank ≤ count
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    wcounters: BTreeMap<String, WindowedCounter>,
    whistograms: BTreeMap<String, WindowedHistogram>,
}

/// A deterministic point-in-time copy of a [`Registry`], sorted by key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// All histograms, ascending by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl Snapshot {
    /// Renders the snapshot as stable, diff-friendly text: one
    /// `name = value` line per counter, one block per histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: count={} sum={} max={} mean={:.2}",
                h.count(),
                h.sum(),
                h.max(),
                h.mean()
            );
            for (lo, c) in h.nonzero_buckets() {
                let _ = writeln!(out, "  >={lo}: {c}");
            }
        }
        out
    }
}

/// A deterministic point-in-time reading of every sliding window in a
/// [`Registry`], sorted by name. `at` is the caller-supplied snapshot
/// instant; each window covers `(at − span_ms, at]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSnapshot {
    /// The instant the snapshot was taken at (caller's clock).
    pub at: u64,
    /// Window span in milliseconds.
    pub span_ms: u64,
    /// Windowed counters, ascending by name.
    pub rates: Vec<(String, WindowRate)>,
    /// Merged windowed histograms, ascending by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl WindowSnapshot {
    /// Renders the snapshot as stable, diff-friendly text: one
    /// `name = total (rate/s)` line per counter, one quantile line per
    /// histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "window at={} span_ms={}", self.at, self.span_ms);
        for (name, r) in &self.rates {
            let _ = writeln!(out, "{name} = {} ({:.2}/s)", r.total, r.per_sec);
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: count={} p50={:.0} p99={:.0} p999={:.0} max={}",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.quantile(0.999),
                h.max()
            );
        }
        out
    }
}

/// A shared registry of named counters and histograms.
///
/// "Lock-free-enough": one short mutex held per update — contention only
/// matters on the network runtime's per-peer threads, where each update is
/// a map lookup plus an integer add, orders of magnitude cheaper than the
/// socket I/O around it. Iteration order is `BTreeMap` order, so
/// [`Registry::snapshot`] is deterministic by construction.
///
/// `Registry` also implements [`Observer`], aggregating a standard set of
/// gauges: per-kind event counters (`event.<kind>`), query health
/// (`query.duplicates`, `reply.count`), gossip health per layer
/// (`gossip.view_size.<layer>`, `gossip.mean_age_x1000.<layer>`,
/// `gossip.replaced.<layer>`) and routing health (`routing.links`,
/// `routing.zero_slots`).
#[derive(Debug, Default)]
pub struct Registry {
    // lock-class: obs.reg.inner
    inner: Mutex<Inner>,
    /// When set, `*_at` updates also feed per-name sliding windows of this
    /// shape, and [`Registry::window_snapshot`] reads them back.
    window: Option<WindowSpec>,
}

impl Registry {
    /// An empty registry without windowed metrics.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry whose `*_at` updates also maintain sliding windows
    /// of shape `spec` (one [`WindowedCounter`] / [`WindowedHistogram`] per
    /// name, created lazily). The [`Observer`] impl feeds windows from each
    /// event's own `at` timestamp, so windowed readings are deterministic
    /// under virtual time and wall-clock-driven on the network runtime.
    pub fn with_windows(spec: WindowSpec) -> Self {
        Registry { inner: Mutex::default(), window: Some(spec) }
    }

    /// The window shape, when windowed metrics are enabled.
    pub fn window_spec(&self) -> Option<WindowSpec> {
        self.window
    }

    /// Adds 1 to the named counter (creating it at 0).
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("registry lock");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records a sample into the named histogram (creating it empty).
    pub fn record(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// [`add`](Self::add) stamped at `at_ms`: also feeds the name's sliding
    /// window when windows are enabled.
    pub fn add_at(&self, name: &str, delta: u64, at_ms: u64) {
        let mut inner = self.inner.lock().expect("registry lock");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
        if let Some(spec) = self.window {
            inner
                .wcounters
                .entry(name.to_string())
                .or_insert_with(|| WindowedCounter::new(spec))
                .add(at_ms, delta);
        }
    }

    /// [`record`](Self::record) stamped at `at_ms`: also feeds the name's
    /// sliding window when windows are enabled.
    pub fn record_at(&self, name: &str, value: u64, at_ms: u64) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.histograms.entry(name.to_string()).or_default().record(value);
        if let Some(spec) = self.window {
            inner
                .whistograms
                .entry(name.to_string())
                .or_insert_with(|| WindowedHistogram::new(spec))
                .record(at_ms, value);
        }
    }

    /// The named counter's window ending at `now_ms` (None when the name
    /// has no windowed history or windows are disabled).
    pub fn window_rate(&self, name: &str, now_ms: u64) -> Option<WindowRate> {
        self.inner.lock().expect("registry lock").wcounters.get(name).map(|c| c.rate(now_ms))
    }

    /// Merged histogram of the named window ending at `now_ms` — feed it to
    /// [`Histogram::quantile`] for windowed p50/p99/p999.
    pub fn window_histogram(&self, name: &str, now_ms: u64) -> Option<Histogram> {
        self.inner.lock().expect("registry lock").whistograms.get(name).map(|h| h.merged(now_ms))
    }

    /// Deterministic snapshot of every sliding window at `now_ms`, sorted
    /// by name. Empty when windows are disabled.
    pub fn window_snapshot(&self, now_ms: u64) -> WindowSnapshot {
        let inner = self.inner.lock().expect("registry lock");
        WindowSnapshot {
            at: now_ms,
            span_ms: self.window.map(|w| w.span_ms()).unwrap_or(0),
            rates: inner.wcounters.iter().map(|(k, c)| (k.clone(), c.rate(now_ms))).collect(),
            histograms: inner
                .whistograms
                .iter()
                .map(|(k, h)| (k.clone(), h.merged(now_ms)))
                .collect(),
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().expect("registry lock").counters.get(name).copied().unwrap_or(0)
    }

    /// A copy of the named histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().expect("registry lock").histograms.get(name).cloned()
    }

    /// A deterministic snapshot: every counter and histogram, sorted by
    /// name. Two runs that observed the same events snapshot identically.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry lock");
        Snapshot {
            counters: inner.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }
}

impl Observer for Registry {
    fn on_event(&self, event: &Event) {
        let at = event.at();
        let mut key = String::with_capacity(32);
        key.push_str("event.");
        key.push_str(event.kind());
        self.add_at(&key, 1, at);
        match *event {
            Event::QueryReceived { duplicate: true, .. } => {
                self.add_at("query.duplicates", 1, at);
            }
            Event::ReplySent { count, .. } => self.record_at("reply.count", count, at),
            Event::QueryCompleted { count, .. } => self.record_at("query.final_count", count, at),
            Event::GossipRound { layer, view_size, mean_age_x1000, replaced, .. } => {
                let l = layer.name();
                self.record_at(&format!("gossip.view_size.{l}"), view_size as u64, at);
                self.record_at(&format!("gossip.mean_age_x1000.{l}"), mean_age_x1000, at);
                self.add_at(&format!("gossip.replaced.{l}"), replaced, at);
            }
            Event::ViewChange { links, zero, changed, .. } => {
                self.record_at("routing.links", links as u64, at);
                self.record_at("routing.zero_slots", zero as u64, at);
                self.add_at("routing.slots_changed", changed as u64, at);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Layer, QueryRef};

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.nonzero_buckets();
        // 0 | 1 | {2,3} | {4..7} | {8} | {1024} | {u64::MAX}
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (1024, 1), (1 << 63, 1)]
        );
    }

    #[test]
    fn snapshot_order_is_sorted_and_stable() {
        let r = Registry::new();
        r.inc("zeta");
        r.inc("alpha");
        r.add("alpha", 4);
        r.record("hist.b", 10);
        r.record("hist.a", 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("alpha".into(), 5), ("zeta".into(), 1)]);
        let names: Vec<&str> = snap.histograms.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["hist.a", "hist.b"]);
        assert_eq!(snap, r.snapshot());
    }

    #[test]
    fn quantile_exact_on_power_of_two_samples() {
        // Samples that each own a bucket: rank selection is exact and the
        // intra-bucket interpolation lands on the sample's own power of two
        // only at the bucket's top — so assert bucket containment plus the
        // exact endpoints instead of equality.
        let mut h = Histogram::default();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0), 512.0, "q=1 is exactly max");
        assert_eq!(h.quantile(0.1), 1.0, "rank 1 is the 1-bucket, clamped to its only value");
        // The median of 10 samples is rank 5 → the 16-bucket [16, 32).
        let p50 = h.quantile(0.5);
        assert!((16.0..32.0).contains(&p50), "p50={p50} outside its bucket");
        // p99 → rank 10 → the 512-bucket, clamped to max.
        assert_eq!(h.quantile(0.99), 512.0);
    }

    #[test]
    fn quantile_single_bucket_interpolates_within_it() {
        let mut h = Histogram::default();
        for _ in 0..1_000 {
            h.record(100); // bucket [64, 128)
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            let est = h.quantile(q);
            assert!(
                (64.0..=100.0).contains(&est),
                "q={q}: {est} outside [bucket lo, max]"
            );
        }
        assert_eq!(h.quantile(1.0), 100.0);
        // All-zero samples are exact (bucket 0 holds only the value 0).
        let mut z = Histogram::default();
        for _ in 0..5 {
            z.record(0);
        }
        assert_eq!(z.quantile(0.5), 0.0);
        assert_eq!(z.quantile(1.0), 0.0);
    }

    #[test]
    fn quantile_overflow_bucket_is_clamped_to_max() {
        let mut h = Histogram::default();
        h.record(5);
        h.record(u64::MAX); // bucket 64, lower bound 2^63
        h.record(u64::MAX - 1);
        let p99 = h.quantile(0.99);
        assert!(p99 >= (1u64 << 63) as f64, "p99={p99} below the overflow bucket");
        assert!(p99 <= u64::MAX as f64, "clamped to max");
        assert_eq!(h.quantile(1.0), u64::MAX as f64);
        // Empty histogram: defined as 0.
        assert_eq!(Histogram::default().quantile(0.5), 0.0);
    }

    #[test]
    fn merge_equals_union_of_streams() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut union = Histogram::default();
        for v in [0u64, 3, 17, 900, 64] {
            a.record(v);
            union.record(v);
        }
        for v in [5u64, 5, 2_048, u64::MAX] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn windowed_registry_feeds_windows_from_event_time() {
        use crate::window::WindowSpec;
        let r = Registry::with_windows(WindowSpec::new(1_000, 4));
        let q = QueryRef::new(1, 0);
        for t in [0u64, 100, 4_500] {
            r.on_event(&Event::QueryCompleted { at: t, query: q, node: 1, count: 3 });
        }
        // Cumulative view counts all three…
        assert_eq!(r.counter("event.query_completed"), 3);
        // …the window at t=4500 only the one inside (4500-4000, 4500].
        let rate = r.window_rate("event.query_completed", 4_500).expect("windowed");
        assert_eq!(rate.total, 1);
        let snap = r.window_snapshot(4_500);
        assert_eq!(snap.at, 4_500);
        assert_eq!(snap.span_ms, 4_000);
        assert!(snap.rates.iter().any(|(n, _)| n == "event.query_completed"));
        let h = r.window_histogram("query.final_count", 4_500).expect("windowed histogram");
        assert_eq!(h.count(), 1);
        assert!(snap.render().contains("event.query_completed = 1"));
        // A window-less registry records cumulatively and snapshots empty.
        let plain = Registry::new();
        plain.record_at("x", 9, 50);
        assert_eq!(plain.histogram("x").unwrap().count(), 1);
        assert!(plain.window_rate("x", 50).is_none());
        let empty = plain.window_snapshot(50);
        assert!(empty.rates.is_empty() && empty.histograms.is_empty());
    }

    #[test]
    fn registry_observes_standard_gauges() {
        let r = Registry::new();
        let q = QueryRef::new(1, 0);
        r.on_event(&Event::QueryReceived {
            at: 1,
            query: q,
            node: 2,
            parent: 1,
            level: 0,
            matched: true,
            duplicate: true,
        });
        r.on_event(&Event::GossipRound {
            at: 2,
            node: 2,
            layer: Layer::Random,
            view_size: 8,
            mean_age_x1000: 1500,
            replaced: 2,
        });
        assert_eq!(r.counter("event.query_received"), 1);
        assert_eq!(r.counter("query.duplicates"), 1);
        assert_eq!(r.counter("gossip.replaced.random"), 2);
        assert_eq!(r.histogram("gossip.view_size.random").unwrap().sum(), 8);
        let text = r.snapshot().render();
        assert!(text.contains("query.duplicates = 1"));
        assert!(text.contains("gossip.view_size.random: count=1"));
    }

    mod quantile_properties {
        use super::super::Histogram;
        use proptest::prelude::*;

        proptest! {
            /// For any sample set and any ladder of probabilities,
            /// `quantile` is monotone in `q` and every estimate is bounded
            /// by the tracked max (and non-negative).
            #[test]
            fn quantiles_are_monotone_in_q_and_bounded_by_max(
                samples in prop::collection::vec(any::<u64>(), 1..200),
                // The vendored proptest has no f64 range strategy; draw
                // ppm and scale to [0, 1].
                q_ppm in prop::collection::vec(0u64..=1_000_000, 1..20),
            ) {
                let mut h = Histogram::default();
                for &v in &samples {
                    h.record(v);
                }
                let mut qs: Vec<f64> =
                    q_ppm.iter().map(|&p| p as f64 / 1e6).collect();
                qs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in 0..=1"));
                let mut prev = f64::NEG_INFINITY;
                for &q in &qs {
                    let est = h.quantile(q);
                    prop_assert!(est >= 0.0, "quantile({q}) = {est} below zero");
                    prop_assert!(
                        est <= h.max() as f64,
                        "quantile({q}) = {est} exceeds max {}",
                        h.max()
                    );
                    prop_assert!(
                        est >= prev,
                        "quantile not monotone: q={q} gave {est} after {prev}"
                    );
                    prev = est;
                }
            }
        }
    }
}
