//! Counters and log2-bucketed histograms with deterministic snapshots.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::event::Event;
use crate::observer::Observer;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `b` holds samples whose bit length is `b` (so bucket 0 is the
/// value 0, bucket 1 is value 1, bucket 2 is 2–3, bucket 3 is 4–7, …).
/// 65 buckets cover the whole `u64` range; recording is O(1) and the
/// digest of a histogram is independent of sample order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs in ascending
    /// order. `lower_bound` is the smallest value the bucket can hold.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, c))
            .collect()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A deterministic point-in-time copy of a [`Registry`], sorted by key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// All histograms, ascending by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl Snapshot {
    /// Renders the snapshot as stable, diff-friendly text: one
    /// `name = value` line per counter, one block per histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: count={} sum={} max={} mean={:.2}",
                h.count(),
                h.sum(),
                h.max(),
                h.mean()
            );
            for (lo, c) in h.nonzero_buckets() {
                let _ = writeln!(out, "  >={lo}: {c}");
            }
        }
        out
    }
}

/// A shared registry of named counters and histograms.
///
/// "Lock-free-enough": one short mutex held per update — contention only
/// matters on the network runtime's per-peer threads, where each update is
/// a map lookup plus an integer add, orders of magnitude cheaper than the
/// socket I/O around it. Iteration order is `BTreeMap` order, so
/// [`Registry::snapshot`] is deterministic by construction.
///
/// `Registry` also implements [`Observer`], aggregating a standard set of
/// gauges: per-kind event counters (`event.<kind>`), query health
/// (`query.duplicates`, `reply.count`), gossip health per layer
/// (`gossip.view_size.<layer>`, `gossip.mean_age_x1000.<layer>`,
/// `gossip.replaced.<layer>`) and routing health (`routing.links`,
/// `routing.zero_slots`).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds 1 to the named counter (creating it at 0).
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("registry lock");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records a sample into the named histogram (creating it empty).
    pub fn record(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().expect("registry lock").counters.get(name).copied().unwrap_or(0)
    }

    /// A copy of the named histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().expect("registry lock").histograms.get(name).cloned()
    }

    /// A deterministic snapshot: every counter and histogram, sorted by
    /// name. Two runs that observed the same events snapshot identically.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry lock");
        Snapshot {
            counters: inner.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }
}

impl Observer for Registry {
    fn on_event(&self, event: &Event) {
        let mut key = String::with_capacity(32);
        key.push_str("event.");
        key.push_str(event.kind());
        self.add(&key, 1);
        match *event {
            Event::QueryReceived { duplicate: true, .. } => self.inc("query.duplicates"),
            Event::ReplySent { count, .. } => self.record("reply.count", count),
            Event::QueryCompleted { count, .. } => self.record("query.final_count", count),
            Event::GossipRound { layer, view_size, mean_age_x1000, replaced, .. } => {
                let l = layer.name();
                self.record(&format!("gossip.view_size.{l}"), view_size as u64);
                self.record(&format!("gossip.mean_age_x1000.{l}"), mean_age_x1000);
                self.add(&format!("gossip.replaced.{l}"), replaced);
            }
            Event::ViewChange { links, zero, changed, .. } => {
                self.record("routing.links", links as u64);
                self.record("routing.zero_slots", zero as u64);
                self.add("routing.slots_changed", changed as u64);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Layer, QueryRef};

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.nonzero_buckets();
        // 0 | 1 | {2,3} | {4..7} | {8} | {1024} | {u64::MAX}
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (1024, 1), (1 << 63, 1)]
        );
    }

    #[test]
    fn snapshot_order_is_sorted_and_stable() {
        let r = Registry::new();
        r.inc("zeta");
        r.inc("alpha");
        r.add("alpha", 4);
        r.record("hist.b", 10);
        r.record("hist.a", 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("alpha".into(), 5), ("zeta".into(), 1)]);
        let names: Vec<&str> = snap.histograms.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["hist.a", "hist.b"]);
        assert_eq!(snap, r.snapshot());
    }

    #[test]
    fn registry_observes_standard_gauges() {
        let r = Registry::new();
        let q = QueryRef::new(1, 0);
        r.on_event(&Event::QueryReceived {
            at: 1,
            query: q,
            node: 2,
            parent: 1,
            level: 0,
            matched: true,
            duplicate: true,
        });
        r.on_event(&Event::GossipRound {
            at: 2,
            node: 2,
            layer: Layer::Random,
            view_size: 8,
            mean_age_x1000: 1500,
            replaced: 2,
        });
        assert_eq!(r.counter("event.query_received"), 1);
        assert_eq!(r.counter("query.duplicates"), 1);
        assert_eq!(r.counter("gossip.replaced.random"), 2);
        assert_eq!(r.histogram("gossip.view_size.random").unwrap().sum(), 8);
        let text = r.snapshot().render();
        assert!(text.contains("query.duplicates = 1"));
        assert!(text.contains("gossip.view_size.random: count=1"));
    }
}
