//! The [`Observer`] trait and the cheap nullable handle instrumented code
//! holds on to.

use std::fmt;
use std::sync::Arc;

use crate::event::Event;

/// A sink for [`Event`]s.
///
/// Implementations must be `Send + Sync`: the network runtime calls
/// `on_event` from one thread per peer, and the parallel sweep runner may
/// drive several simulators at once. Implementations must also be
/// **side-effect free with respect to the observed system** — an observer
/// never feeds information back into the protocol, consumes protocol RNG,
/// or changes event scheduling, so enabling one cannot change a run's
/// deterministic fingerprints.
pub trait Observer: Send + Sync {
    /// Called once per observed event, in emission order per emitter.
    fn on_event(&self, event: &Event);
}

/// The do-nothing default sink.
///
/// [`ObsHandle::null`] does not even allocate for it: a null handle holds
/// `None` and [`ObsHandle::emit`] skips event construction entirely, so the
/// instrumented hot path pays one branch on a local `Option`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&self, _event: &Event) {}
}

/// Broadcasts every event to several observers in order.
///
/// Useful for recording a JSONL trace while also building an in-memory
/// [`crate::TraceTree`] and aggregating a [`crate::Registry`].
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Arc<dyn Observer>>,
}

impl Fanout {
    /// An empty fanout; add sinks with [`Fanout::push`].
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Adds a sink; events reach sinks in insertion order.
    pub fn push(&mut self, sink: Arc<dyn Observer>) {
        self.sinks.push(sink);
    }
}

impl Observer for Fanout {
    fn on_event(&self, event: &Event) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }
}

/// A cheap, cloneable, possibly-null reference to an [`Observer`].
///
/// This is the type instrumented structs store. The default is null;
/// [`ObsHandle::emit`] takes a closure so that when the handle is null the
/// event value is never even built:
///
/// ```
/// use autosel_obs::{Event, ObsHandle};
///
/// let obs = ObsHandle::null();
/// obs.emit(|| Event::NodeCrashed { at: 10, node: 3 }); // closure not called
/// ```
#[derive(Clone, Default)]
pub struct ObsHandle {
    inner: Option<Arc<dyn Observer>>,
}

impl ObsHandle {
    /// The null handle: no sink, zero cost beyond one branch per call site.
    pub const fn null() -> Self {
        ObsHandle { inner: None }
    }

    /// Wraps an already-shared observer.
    pub fn new(observer: Arc<dyn Observer>) -> Self {
        ObsHandle { inner: Some(observer) }
    }

    /// Convenience: wraps a concrete observer value in an `Arc`.
    pub fn of<O: Observer + 'static>(observer: O) -> Self {
        ObsHandle::new(Arc::new(observer))
    }

    /// True when events will actually reach a sink.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits the event produced by `build` — unless the handle is null, in
    /// which case `build` is never called.
    #[inline]
    pub fn emit<F: FnOnce() -> Event>(&self, build: F) {
        if let Some(obs) = &self.inner {
            obs.on_event(&build());
        }
    }
}

impl fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.enabled() { "ObsHandle(active)" } else { "ObsHandle(null)" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counting(AtomicU64);
    impl Observer for Counting {
        fn on_event(&self, _: &Event) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn null_handle_never_builds_the_event() {
        let obs = ObsHandle::null();
        assert!(!obs.enabled());
        obs.emit(|| unreachable!("closure must not run on a null handle"));
    }

    #[test]
    fn active_handle_delivers() {
        let sink = Arc::new(Counting(AtomicU64::new(0)));
        let obs = ObsHandle::new(sink.clone());
        assert!(obs.enabled());
        obs.emit(|| Event::NodeCrashed { at: 1, node: 2 });
        obs.emit(|| Event::NodeRestarted { at: 2, node: 2 });
        assert_eq!(sink.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(Counting(AtomicU64::new(0)));
        let b = Arc::new(Counting(AtomicU64::new(0)));
        let mut fan = Fanout::new();
        fan.push(a.clone());
        fan.push(b.clone());
        let obs = ObsHandle::of(fan);
        obs.emit(|| Event::NodeCrashed { at: 1, node: 2 });
        assert_eq!(a.0.load(Ordering::Relaxed), 1);
        assert_eq!(b.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Arc::new(Counting(AtomicU64::new(0)));
        let obs = ObsHandle::new(sink.clone());
        let clone = obs.clone();
        obs.emit(|| Event::NodeCrashed { at: 1, node: 2 });
        clone.emit(|| Event::NodeCrashed { at: 2, node: 3 });
        assert_eq!(sink.0.load(Ordering::Relaxed), 2);
    }
}
