//! Tracked lock wrappers: a deadlock tripwire for the threaded runtime.
//!
//! The live runtime (`crates/net`) is genuinely concurrent — per-destination
//! writer threads, a delay-line thread, accept/read threads, peer event
//! loops — and its locks are plain `std::sync` primitives. This module wraps
//! them with *lock-class* tracking so that every debug/test run doubles as a
//! deadlock audit:
//!
//! * every [`TrackedMutex`] / [`TrackedRwLock`] carries a `&'static str`
//!   **lock class** (e.g. `net.link.state`), the same name the static
//!   `lock-order` pass in `crates/analyze` reasons about;
//! * each thread keeps a **held-set** of the classes it currently holds;
//! * acquiring class *B* while holding *A* records the edge *A → B* in a
//!   global acquisition-order graph, together with a witness (the full
//!   held-chain and the thread name at the time);
//! * an acquisition that would close a **cycle** in that graph — a
//!   lock-order inversion, i.e. a potential deadlock — panics immediately,
//!   naming both offending lock-class chains, instead of deadlocking some
//!   future run with unlucky timing. Recursive acquisition of the same
//!   class panics too (self-deadlock for `Mutex`, writer-starvation
//!   deadlock for read-recursive `RwLock`).
//!
//! Per-class **hold-time histograms** can be published through a
//! [`Registry`](crate::Registry) (see [`set_hold_registry`]): every release
//! records the guard's hold duration in microseconds under
//! `lock.hold_us.<class>`, making contention on the TCP writer path visible
//! in `netload` output.
//!
//! ## Zero-cost passthrough in release
//!
//! Tracking is compiled in only under `debug_assertions` **or** the
//! `lockcheck` feature. A plain release build gets newtype wrappers whose
//! methods forward straight to `std::sync` — no held-set, no graph, no
//! clock reads, nothing for the optimizer to even inline away. `cargo test`
//! (a debug build) therefore runs every integration test under the
//! tripwire by default, while the pinned `netload` numbers in
//! `BENCH_net.json` are measured against untouched `std::sync`.
//!
//! Poisoning is folded into the wrapper: a poisoned lock panics with the
//! lock class named (a poisoned lock means a thread already panicked while
//! holding it — continuing would act on torn invariants).
//!
// lint:allow-file(wall-clock) — hold-time histograms time *real* lock hold
// durations on the OS-thread runtime; this code is compiled only in
// debug/lockcheck builds and never runs on the simulator's virtual-time
// path.

#[cfg(any(debug_assertions, feature = "lockcheck"))]
pub use tracked::{
    lockcheck_active, set_hold_registry, TrackedCondvar, TrackedMutex, TrackedMutexGuard,
    TrackedReadGuard, TrackedRwLock, TrackedWriteGuard,
};

#[cfg(not(any(debug_assertions, feature = "lockcheck")))]
pub use passthrough::{
    lockcheck_active, set_hold_registry, TrackedCondvar, TrackedMutex, TrackedMutexGuard,
    TrackedReadGuard, TrackedRwLock, TrackedWriteGuard,
};

/// The instrumented implementation (debug builds and `--features lockcheck`).
#[cfg(any(debug_assertions, feature = "lockcheck"))]
mod tracked {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{
        Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard,
        RwLockWriteGuard, WaitTimeoutResult,
    };
    use std::time::{Duration, Instant};

    use crate::Registry;

    thread_local! {
        /// Lock classes this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// One recorded acquisition-order edge `from → to`: the full held-chain
    /// and thread that first exhibited the order.
    struct EdgeWitness {
        chain: Vec<&'static str>,
        thread: String,
    }

    /// The global acquisition-order graph. Process-wide on purpose: an
    /// inversion between two *different* tests in one binary is still an
    /// inversion in the code under test.
    #[derive(Default)]
    struct LockGraph {
        edges: HashMap<&'static str, HashMap<&'static str, EdgeWitness>>,
    }

    impl LockGraph {
        /// Depth-first path from `from` to any class in `targets`, if one
        /// exists. Returned oldest-first: `[from, …, target]`.
        fn path_to_any(
            &self,
            from: &'static str,
            targets: &[&'static str],
        ) -> Option<Vec<&'static str>> {
            let mut stack = vec![vec![from]];
            let mut visited: Vec<&'static str> = vec![from];
            while let Some(path) = stack.pop() {
                let last = *path.last().expect("paths are non-empty");
                if targets.contains(&last) {
                    return Some(path);
                }
                if let Some(nexts) = self.edges.get(last) {
                    for &next in nexts.keys() {
                        if !visited.contains(&next) {
                            visited.push(next);
                            let mut p = path.clone();
                            p.push(next);
                            stack.push(p);
                        }
                    }
                }
            }
            None
        }
    }

    fn graph() -> &'static Mutex<LockGraph> {
        static GRAPH: OnceLock<Mutex<LockGraph>> = OnceLock::new();
        GRAPH.get_or_init(Mutex::default)
    }

    fn thread_label() -> String {
        let current = std::thread::current();
        current.name().map_or_else(|| format!("{:?}", current.id()), str::to_string)
    }

    /// Checks `class` against this thread's held-set and the global graph;
    /// panics on a same-class re-acquisition or an order inversion,
    /// otherwise records the new edges and pushes `class` onto the held-set.
    fn on_acquire(class: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            assert!(
                !held.contains(&class),
                "lockcheck: recursive acquisition of lock class `{class}` \
                 (this thread already holds {held:?})"
            );
            if !held.is_empty() {
                // Internal infrastructure lock: recover from poison rather
                // than cascade (an intentional inversion panic in one test
                // must not wedge the tripwire for the rest of the binary).
                let mut graph = graph().lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(path) = graph.path_to_any(class, &held) {
                    let witness = &graph.edges[path[0]][path[1]];
                    let mut current = held.clone();
                    current.push(class);
                    let msg = format!(
                        "lockcheck: lock-order inversion acquiring `{class}` on thread \
                         \"{me}\": current chain {current:?} conflicts with prior chain \
                         {prior:?} (recorded on thread \"{thr}\"), which already orders \
                         {path:?}",
                        me = thread_label(),
                        prior = witness.chain,
                        thr = witness.thread,
                    );
                    // Release the graph (and the held-set borrow) before
                    // panicking so the unwind path can still do bookkeeping.
                    drop(graph);
                    drop(held);
                    panic!("{msg}");
                }
                let mut chain = held.clone();
                chain.push(class);
                for &earlier in held.iter() {
                    graph.edges.entry(earlier).or_default().entry(class).or_insert_with(|| {
                        EdgeWitness { chain: chain.clone(), thread: thread_label() }
                    });
                }
            }
            held.push(class);
        });
    }

    /// Pops `class` from the held-set (releases need not be LIFO) and
    /// publishes its hold time if a registry is installed.
    fn on_release(class: &'static str, held_since: Option<Instant>) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(at) = held.iter().rposition(|&c| c == class) {
                held.remove(at);
            }
        });
        record_hold(class, held_since);
    }

    static HOLD_ENABLED: AtomicBool = AtomicBool::new(false);
    static HOLD_REGISTRY: Mutex<Option<Arc<Registry>>> = Mutex::new(None);

    /// Publishes per-class hold times to `registry` as `lock.hold_us.<class>`
    /// histograms (microseconds per guard lifetime); `None` turns publishing
    /// back off. Publishing is off by default — without a registry the
    /// tracked wrappers never read the clock.
    pub fn set_hold_registry(registry: Option<Arc<Registry>>) {
        HOLD_ENABLED.store(registry.is_some(), Ordering::Release);
        *HOLD_REGISTRY.lock().unwrap_or_else(PoisonError::into_inner) = registry;
    }

    /// Whether this build tracks lock acquisitions (`true` here; the release
    /// passthrough reports `false`).
    pub fn lockcheck_active() -> bool {
        true
    }

    fn hold_start() -> Option<Instant> {
        HOLD_ENABLED.load(Ordering::Acquire).then(Instant::now)
    }

    /// Unwinds `on_acquire`'s bookkeeping and panics: the acquisition found
    /// the lock poisoned, so no guard will ever exist to release the class.
    fn poisoned(class: &'static str, during: &str) -> ! {
        on_release(class, None);
        panic!("lock class `{class}` poisoned{during}: a thread panicked while holding it")
    }

    fn record_hold(class: &'static str, held_since: Option<Instant>) {
        let Some(start) = held_since else { return };
        let registry =
            HOLD_REGISTRY.lock().unwrap_or_else(PoisonError::into_inner).as_ref().map(Arc::clone);
        if let Some(registry) = registry {
            let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            registry.record(&format!("lock.hold_us.{class}"), us);
        }
    }

    /// A `std::sync::Mutex` carrying a lock class, checked against the
    /// global acquisition-order graph on every `lock`.
    #[derive(Debug, Default)]
    pub struct TrackedMutex<T> {
        class: &'static str,
        inner: Mutex<T>,
    }

    impl<T> TrackedMutex<T> {
        /// Wraps `value` under lock class `class`.
        pub fn new(class: &'static str, value: T) -> Self {
            TrackedMutex { class, inner: Mutex::new(value) }
        }

        /// The lock class this mutex was declared with.
        pub fn class(&self) -> &'static str {
            self.class
        }

        /// Acquires the lock, recording the acquisition order.
        ///
        /// # Panics
        ///
        /// Panics if the acquisition closes a cycle in the global
        /// acquisition-order graph (a lock-order inversion), if this thread
        /// already holds this class, or if the lock is poisoned.
        pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
            on_acquire(self.class);
            let inner = self.inner.lock().unwrap_or_else(|_| poisoned(self.class, ""));
            TrackedMutexGuard { lock: self, inner: Some(inner), held_since: hold_start() }
        }
    }

    /// Guard for [`TrackedMutex`]; releases the held-set entry (and records
    /// the hold time) on drop.
    #[derive(Debug)]
    pub struct TrackedMutexGuard<'a, T> {
        lock: &'a TrackedMutex<T>,
        /// `None` only mid-[`TrackedCondvar::wait`], where the std guard
        /// moves into `Condvar::wait` and bookkeeping is handed over.
        inner: Option<MutexGuard<'a, T>>,
        held_since: Option<Instant>,
    }

    impl<T> Deref for TrackedMutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard is only empty mid-wait")
        }
    }

    impl<T> DerefMut for TrackedMutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard is only empty mid-wait")
        }
    }

    impl<T> Drop for TrackedMutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.is_some() {
                on_release(self.lock.class, self.held_since);
            }
        }
    }

    /// A `std::sync::Condvar` aware of the tracked guards: waiting releases
    /// the class from the held-set and re-records it on wake-up (re-checking
    /// the acquisition order, since the wake-up re-locks).
    #[derive(Debug, Default)]
    pub struct TrackedCondvar {
        inner: Condvar,
    }

    impl TrackedCondvar {
        /// A new condition variable.
        pub fn new() -> Self {
            TrackedCondvar { inner: Condvar::new() }
        }

        fn release_for_wait<'a, T>(
            mut guard: TrackedMutexGuard<'a, T>,
        ) -> (&'a TrackedMutex<T>, MutexGuard<'a, T>) {
            let lock = guard.lock;
            let inner = guard.inner.take().expect("guard is only empty mid-wait");
            on_release(lock.class, guard.held_since);
            (lock, inner)
        }

        fn reacquire<'a, T>(
            lock: &'a TrackedMutex<T>,
            result: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
        ) -> TrackedMutexGuard<'a, T> {
            on_acquire(lock.class);
            let inner = result.unwrap_or_else(|_| poisoned(lock.class, " during condvar wait"));
            TrackedMutexGuard { lock, inner: Some(inner), held_since: hold_start() }
        }

        /// Blocks until notified, releasing `guard`'s mutex while waiting.
        ///
        /// # Panics
        ///
        /// Panics if the mutex is poisoned, or if re-acquisition on wake-up
        /// violates the recorded lock order.
        pub fn wait<'a, T>(&self, guard: TrackedMutexGuard<'a, T>) -> TrackedMutexGuard<'a, T> {
            let (lock, inner) = Self::release_for_wait(guard);
            Self::reacquire(lock, self.inner.wait(inner))
        }

        /// Blocks until notified or `timeout` elapses.
        ///
        /// # Panics
        ///
        /// As for [`wait`](Self::wait).
        pub fn wait_timeout<'a, T>(
            &self,
            guard: TrackedMutexGuard<'a, T>,
            timeout: Duration,
        ) -> (TrackedMutexGuard<'a, T>, WaitTimeoutResult) {
            let (lock, inner) = Self::release_for_wait(guard);
            match self.inner.wait_timeout(inner, timeout) {
                Ok((inner, timed_out)) => (Self::reacquire(lock, Ok(inner)), timed_out),
                Err(poison) => {
                    let (inner, timed_out) = poison.into_inner();
                    // Preserve the poison panic, but only after restoring
                    // bookkeeping so unwinding releases cleanly.
                    let _guard = Self::reacquire(lock, Ok(inner));
                    let _ = timed_out;
                    panic!("lock class `{}` poisoned during condvar wait", lock.class)
                }
            }
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    /// A `std::sync::RwLock` carrying a lock class. Readers and writers
    /// share the class: the order audit cares about *which* lock, not the
    /// mode — and same-thread read-recursion is flagged like a mutex
    /// re-entry, because a writer queued between the two reads deadlocks.
    #[derive(Debug, Default)]
    pub struct TrackedRwLock<T> {
        class: &'static str,
        inner: RwLock<T>,
    }

    impl<T> TrackedRwLock<T> {
        /// Wraps `value` under lock class `class`.
        pub fn new(class: &'static str, value: T) -> Self {
            TrackedRwLock { class, inner: RwLock::new(value) }
        }

        /// The lock class this lock was declared with.
        pub fn class(&self) -> &'static str {
            self.class
        }

        /// Acquires a shared read guard, recording the acquisition order.
        ///
        /// # Panics
        ///
        /// As for [`TrackedMutex::lock`].
        pub fn read(&self) -> TrackedReadGuard<'_, T> {
            on_acquire(self.class);
            let inner = self.inner.read().unwrap_or_else(|_| poisoned(self.class, ""));
            TrackedReadGuard { class: self.class, inner, held_since: hold_start() }
        }

        /// Acquires the exclusive write guard, recording the acquisition
        /// order.
        ///
        /// # Panics
        ///
        /// As for [`TrackedMutex::lock`].
        pub fn write(&self) -> TrackedWriteGuard<'_, T> {
            on_acquire(self.class);
            let inner = self.inner.write().unwrap_or_else(|_| poisoned(self.class, ""));
            TrackedWriteGuard { class: self.class, inner, held_since: hold_start() }
        }
    }

    /// Shared-read guard for [`TrackedRwLock`].
    #[derive(Debug)]
    pub struct TrackedReadGuard<'a, T> {
        class: &'static str,
        inner: RwLockReadGuard<'a, T>,
        held_since: Option<Instant>,
    }

    impl<T> Deref for TrackedReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> Drop for TrackedReadGuard<'_, T> {
        fn drop(&mut self) {
            on_release(self.class, self.held_since);
        }
    }

    /// Exclusive-write guard for [`TrackedRwLock`].
    #[derive(Debug)]
    pub struct TrackedWriteGuard<'a, T> {
        class: &'static str,
        inner: RwLockWriteGuard<'a, T>,
        held_since: Option<Instant>,
    }

    impl<T> Deref for TrackedWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for TrackedWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Drop for TrackedWriteGuard<'_, T> {
        fn drop(&mut self) {
            on_release(self.class, self.held_since);
        }
    }
}

/// The release implementation: newtypes forwarding straight to `std::sync`,
/// with no held-set, graph, or clock reads — byte-for-byte the locking the
/// pinned `netload` numbers were measured against.
#[cfg(not(any(debug_assertions, feature = "lockcheck")))]
mod passthrough {
    use std::ops::{Deref, DerefMut};
    use std::sync::{
        Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
        WaitTimeoutResult,
    };
    use std::time::Duration;

    use crate::Registry;

    /// No-op in passthrough builds: hold times are only tracked under
    /// `debug_assertions` or `--features lockcheck`.
    pub fn set_hold_registry(registry: Option<Arc<Registry>>) {
        let _ = registry;
    }

    /// Whether this build tracks lock acquisitions (`false` here).
    pub fn lockcheck_active() -> bool {
        false
    }

    /// Passthrough `Mutex`: the class is kept for diagnostics only.
    #[derive(Debug, Default)]
    pub struct TrackedMutex<T> {
        class: &'static str,
        inner: Mutex<T>,
    }

    impl<T> TrackedMutex<T> {
        /// Wraps `value`; `class` is kept for poison diagnostics only.
        pub fn new(class: &'static str, value: T) -> Self {
            TrackedMutex { class, inner: Mutex::new(value) }
        }

        /// The lock class this mutex was declared with.
        pub fn class(&self) -> &'static str {
            self.class
        }

        /// Acquires the lock.
        ///
        /// # Panics
        ///
        /// Panics if the lock is poisoned.
        pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
            TrackedMutexGuard {
                inner: self.inner.lock().unwrap_or_else(|_| {
                    panic!(
                        "lock class `{}` poisoned: a thread panicked while holding it",
                        self.class
                    )
                }),
            }
        }
    }

    /// Guard for the passthrough [`TrackedMutex`].
    #[derive(Debug)]
    pub struct TrackedMutexGuard<'a, T> {
        inner: MutexGuard<'a, T>,
    }

    impl<T> Deref for TrackedMutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for TrackedMutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// Passthrough `Condvar`.
    #[derive(Debug, Default)]
    pub struct TrackedCondvar {
        inner: Condvar,
    }

    impl TrackedCondvar {
        /// A new condition variable.
        pub fn new() -> Self {
            TrackedCondvar { inner: Condvar::new() }
        }

        /// Blocks until notified, releasing `guard`'s mutex while waiting.
        ///
        /// # Panics
        ///
        /// Panics if the mutex is poisoned.
        pub fn wait<'a, T>(&self, guard: TrackedMutexGuard<'a, T>) -> TrackedMutexGuard<'a, T> {
            TrackedMutexGuard {
                inner: self
                    .inner
                    .wait(guard.inner)
                    .unwrap_or_else(|_| panic!("mutex poisoned during condvar wait")),
            }
        }

        /// Blocks until notified or `timeout` elapses.
        ///
        /// # Panics
        ///
        /// Panics if the mutex is poisoned.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: TrackedMutexGuard<'a, T>,
            timeout: Duration,
        ) -> (TrackedMutexGuard<'a, T>, WaitTimeoutResult) {
            let (inner, timed_out) = self
                .inner
                .wait_timeout(guard.inner, timeout)
                .unwrap_or_else(|_| panic!("mutex poisoned during condvar wait"));
            (TrackedMutexGuard { inner }, timed_out)
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    /// Passthrough `RwLock`: the class is kept for diagnostics only.
    #[derive(Debug, Default)]
    pub struct TrackedRwLock<T> {
        class: &'static str,
        inner: RwLock<T>,
    }

    impl<T> TrackedRwLock<T> {
        /// Wraps `value`; `class` is kept for poison diagnostics only.
        pub fn new(class: &'static str, value: T) -> Self {
            TrackedRwLock { class, inner: RwLock::new(value) }
        }

        /// The lock class this lock was declared with.
        pub fn class(&self) -> &'static str {
            self.class
        }

        /// Acquires a shared read guard.
        ///
        /// # Panics
        ///
        /// Panics if the lock is poisoned.
        pub fn read(&self) -> TrackedReadGuard<'_, T> {
            TrackedReadGuard {
                inner: self.inner.read().unwrap_or_else(|_| {
                    panic!(
                        "lock class `{}` poisoned: a thread panicked while holding it",
                        self.class
                    )
                }),
            }
        }

        /// Acquires the exclusive write guard.
        ///
        /// # Panics
        ///
        /// Panics if the lock is poisoned.
        pub fn write(&self) -> TrackedWriteGuard<'_, T> {
            TrackedWriteGuard {
                inner: self.inner.write().unwrap_or_else(|_| {
                    panic!(
                        "lock class `{}` poisoned: a thread panicked while holding it",
                        self.class
                    )
                }),
            }
        }
    }

    /// Shared-read guard for the passthrough [`TrackedRwLock`].
    #[derive(Debug)]
    pub struct TrackedReadGuard<'a, T> {
        inner: RwLockReadGuard<'a, T>,
    }

    impl<T> Deref for TrackedReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    /// Exclusive-write guard for the passthrough [`TrackedRwLock`].
    #[derive(Debug)]
    pub struct TrackedWriteGuard<'a, T> {
        inner: RwLockWriteGuard<'a, T>,
    }

    impl<T> Deref for TrackedWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for TrackedWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
}

#[cfg(all(test, any(debug_assertions, feature = "lockcheck")))]
mod tests {
    use super::*;
    use crate::Registry;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::time::Duration;

    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast::<String>().map(|s| *s).unwrap_or_else(|e| {
            e.downcast::<&str>().map(|s| (*s).to_string()).unwrap_or_default()
        })
    }

    /// The runtime negative control: a deliberately inverted two-lock
    /// acquisition must panic, naming both lock-class chains — the
    /// mutation-style proof that the cycle detector can actually fire.
    #[test]
    fn inversion_panics_with_both_chains_named() {
        let a = TrackedMutex::new("test.inv.a", 0u32);
        let b = TrackedMutex::new("test.inv.b", 0u32);
        {
            // Establish the order a → b.
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // b → a closes the cycle
        }))
        .expect_err("the inverted acquisition must panic");
        let msg = panic_message(err);
        assert!(msg.contains("lock-order inversion"), "verdict named: {msg}");
        assert!(
            msg.contains(r#"["test.inv.b", "test.inv.a"]"#),
            "current (inverted) chain named: {msg}"
        );
        assert!(
            msg.contains(r#"["test.inv.a", "test.inv.b"]"#),
            "prior (witness) chain named: {msg}"
        );
        // The tripwire recovered: `a` (not held at the panic) still locks.
        let _ga = a.lock();
        // `b` *was* held when the inversion panicked, so it is poisoned —
        // and the poison panic must name the lock class.
        drop(_ga);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
        }))
        .expect_err("a guard dropped during the unwind poisons its mutex");
        assert!(panic_message(err).contains("lock class `test.inv.b` poisoned"));
    }

    #[test]
    fn recursive_acquisition_panics() {
        let a = TrackedMutex::new("test.rec.a", 0u32);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _g1 = a.lock();
            let _g2 = a.lock();
        }))
        .expect_err("same-thread re-acquisition must panic, not deadlock");
        assert!(panic_message(err).contains("recursive acquisition"));
    }

    #[test]
    fn rwlock_read_recursion_panics() {
        let l = TrackedRwLock::new("test.rec.rw", 0u32);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _r1 = l.read();
            let _r2 = l.read();
        }))
        .expect_err("read-recursion deadlocks against a queued writer; must panic");
        assert!(panic_message(err).contains("recursive acquisition"));
    }

    #[test]
    fn consistent_nesting_and_parallel_readers_are_fine() {
        let outer = TrackedRwLock::new("test.ok.outer", ());
        let inner = TrackedMutex::new("test.ok.inner", 0u32);
        for _ in 0..3 {
            let _o = outer.read();
            let mut g = inner.lock();
            *g += 1;
        }
        // Two threads reading the same class concurrently is not recursion.
        let shared = Arc::new(TrackedRwLock::new("test.ok.shared", 7u32));
        let other = Arc::clone(&shared);
        let r1 = shared.read();
        let handle = std::thread::spawn(move || *other.read());
        assert_eq!(handle.join().expect("reader thread"), 7);
        assert_eq!(*r1, 7);
    }

    #[test]
    fn condvar_wait_releases_and_restores_bookkeeping() {
        let m = Arc::new(TrackedMutex::new("test.cv.m", false));
        let cv = Arc::new(TrackedCondvar::new());
        // Timeout path: the class must be re-held after the wait (dropping
        // the returned guard must not underflow the held-set).
        let g = m.lock();
        let (g, timed_out) = cv.wait_timeout(g, Duration::from_millis(5));
        assert!(timed_out.timed_out());
        drop(g);
        // Notify path, with the waiter's mutex released while waiting: the
        // notifier can lock the same class without a recursion panic.
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait(g);
            }
        });
        loop {
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
            drop(g);
            if waiter.is_finished() {
                break;
            }
            std::thread::yield_now();
        }
        waiter.join().expect("waiter exits after notify");
    }

    #[test]
    fn hold_times_publish_to_installed_registry() {
        let registry = Arc::new(Registry::new());
        set_hold_registry(Some(Arc::clone(&registry)));
        let m = TrackedMutex::new("test.hold.m", 0u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        set_hold_registry(None);
        let h = registry.histogram("lock.hold_us.test.hold.m").expect("hold histogram published");
        assert_eq!(h.count(), 1, "one guard lifetime recorded");
        // With publishing off again, releases are silent.
        {
            let _g = m.lock();
        }
        let h = registry.histogram("lock.hold_us.test.hold.m").expect("still present");
        assert_eq!(h.count(), 1);
    }
}
