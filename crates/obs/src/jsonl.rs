//! Streaming JSONL event log.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::observer::Observer;

/// Writes one [`Event::to_json`] line per event to any `Write` sink.
///
/// The sink is the only part of the crate that does I/O, and it stays at
/// the edge: instrumented code sees only the [`Observer`] trait. Write
/// errors never panic the observed system — they are counted and the sink
/// goes quiet (query a nonzero [`JsonlSink::io_errors`] to detect a
/// truncated trace).
pub struct JsonlSink {
    // lock-class: obs.jsonl.out
    out: Mutex<Box<dyn Write + Send>>,
    errors: AtomicU64,
}

impl JsonlSink {
    /// Wraps an arbitrary writer (a `File`, a `Vec<u8>`, a socket…).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink { out: Mutex::new(out), errors: AtomicU64::new(0) }
    }

    /// Creates (truncates) `path` and streams events to it, buffered.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// A sink writing into a shared in-memory buffer, for tests and for
    /// piping a trace straight into [`crate::TraceTree`] replay.
    pub fn shared_buffer() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("shared buffer lock").extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        (JsonlSink::new(Box::new(SharedBuf(buf.clone()))), buf)
    }

    /// Number of write errors swallowed so far (0 for a healthy trace).
    pub fn io_errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        // The sink lock IS the I/O serialization point: writes under
        // obs.jsonl.out are its contract, and it is a leaf class (nothing
        // is ever acquired while holding it).
        // lint:allow(lock-order) — sink lock is the I/O serialization point
        self.out.lock().expect("jsonl sink lock").flush()
    }
}

impl Observer for JsonlSink {
    fn on_event(&self, event: &Event) {
        let mut line = event.to_json();
        line.push('\n');
        let mut out = self.out.lock().expect("jsonl sink lock");
        // lint:allow(lock-order) — leaf sink lock, writes are its contract
        if out.write_all(line.as_bytes()).is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        // Poisoning is deliberately ignored: the sink is going away.
        // lint:allow(lock-order) — best-effort flush under the leaf sink lock
        let _ = self.out.lock().map(|mut w| w.flush());
    }
}

/// Parses a whole JSONL trace back into events.
///
/// Blank lines are skipped; the first malformed line aborts with its line
/// number, so `tracedump --check` can point at the exact corruption.
pub fn parse_trace(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(Event::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QueryRef;

    #[test]
    fn events_round_trip_through_a_buffer() {
        let (sink, buf) = JsonlSink::shared_buffer();
        let q = QueryRef::new(1, 0);
        let evs = vec![
            Event::QueryIssued {
                at: 0,
                query: q,
                node: 1,
                sigma: Some(5),
                count_only: false,
                matched: true,
            },
            Event::QueryForwarded { at: 1, query: q, from: 1, to: 2, level: 0, attempt: 1 },
            Event::QueryCompleted { at: 9, query: q, node: 1, count: 3 },
        ];
        for ev in &evs {
            sink.on_event(ev);
        }
        sink.flush().unwrap();
        assert_eq!(sink.io_errors(), 0);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert_eq!(parse_trace(&text).unwrap(), evs);
    }

    #[test]
    fn parse_trace_reports_line_numbers() {
        let err = parse_trace("{\"ev\":\"node_crashed\",\"at\":1,\"node\":2}\n\nnot json\n")
            .unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }

    #[test]
    fn write_errors_are_counted_not_fatal() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(Broken));
        sink.on_event(&Event::NodeCrashed { at: 1, node: 2 });
        assert_eq!(sink.io_errors(), 1);
    }
}
