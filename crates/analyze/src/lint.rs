//! Zero-dependency repo linter for the codebase's own invariants.
//!
//! Ordinary lints (clippy) police generic Rust; these rules police
//! decisions *this* repo made and reviewers previously re-checked by hand:
//!
//! | rule | scope | rationale |
//! |------|-------|-----------|
//! | `std-collections` | `crates/core/src`, `crates/sim/src`, non-test | `std` maps are SipHash-seeded per instance, so iteration order varies run to run; hot paths must use the seedless `fasthash` aliases (or `BTreeMap`) to keep the simulator bit-deterministic |
//! | `binary-heap` | `crates/core/src`, `crates/sim/src`, non-test | the event hot path moved from `BinaryHeap` to the calendar queue (`sim/src/calendar.rs`) for O(1) scheduling at million-node scale; a heap reappearing there is a perf regression, and its unspecified equal-key order invites determinism bugs — reference-model uses in test code are exempt |
//! | `wall-clock` | everywhere except `crates/net` | the protocol and simulator run on *virtual* milliseconds; a stray `SystemTime` / `Instant::now` smuggles real time into reproducible runs |
//! | `thread-sleep-in-tests` | test code | sleeping makes tests flaky-slow; poll with the `wait_until` helper instead |
//! | `unwrap-in-protocol` | `core/src/node.rs`, `core/src/routing.rs` | these files define the protocol invariants — every panic site must state the invariant it relies on (`expect`), tests included, since test panics are how invariant breakage first surfaces |
//! | `obs-schema` | `crates/obs/src/event.rs`, non-test | the trace JSON schema is closed (docs/OBSERVABILITY.md); a new key or event kind must be added to the schema table deliberately, not leak in via a string literal |
//! | `unbounded-channel` | `crates/net/src`, non-test | bounded inboxes are the load-survival invariant: every peer queue is `mpsc::sync_channel` with drop-on-full accounting, so an unbounded `mpsc::channel()` reintroduces the memory blow-up and hides backpressure the netload bench is meant to surface |
//! | `spawn-per-send` | `crates/net/src`, non-test | the TCP transport once spawned a thread (and opened a connection) *per message* — the scalability bug the persistent link data plane replaced; every legitimate runtime thread is long-lived and named via `thread::Builder`, so a bare `thread::spawn` in the runtime is either that regression returning or an unnamed thread that ruins stack traces |
//! | `lock-unwrap` | `crates/net/src`, tests included | the runtime's locks are the tracked `net::sync` wrappers (lock-class audit, invariant-stating poison panics); a raw `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()` is either an untracked `std::sync` lock sneaking back in, or a poison panic that names no invariant — the same standard the protocol files hold for `.unwrap()` |
//!
//! The deeper lock-order analysis (acquisition-graph cycles, blocking
//! calls under a live guard, guards held across channel sends) lives in
//! [`lockgraph`](crate::lockgraph) and runs as the `lock-order` pass of
//! the same `analyze lint` bin.
//!
//! The scanner is hand-rolled (no syn, no regex — the crate has zero
//! external dependencies): comments and string literals are masked out of
//! the code view, `#[cfg(test)]` regions are found by brace matching, and
//! rules run as token searches over the masked lines.
//!
//! Suppression, always with a reason in the surrounding comment:
//! `// lint:allow(rule-name)` on the finding's line or the line above;
//! `// lint:allow-file(rule-name)` anywhere in the file.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The enforced rules. See the module docs for scope and rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `std::collections::HashMap`/`HashSet` in core/sim hot paths.
    StdCollections,
    /// `std::collections::BinaryHeap` in core/sim hot paths.
    BinaryHeap,
    /// `SystemTime` / `Instant::now` outside `crates/net`.
    WallClock,
    /// `thread::sleep` in test code.
    ThreadSleepInTests,
    /// `.unwrap()` in the protocol-defining core files.
    UnwrapInProtocol,
    /// A JSON key or event kind outside the closed obs schema.
    ObsSchema,
    /// Unbounded `mpsc::channel()` in the live runtime's non-test code.
    UnboundedChannel,
    /// Bare `thread::spawn` in the live runtime's non-test code.
    SpawnPerSend,
    /// Raw `.lock().unwrap()`-style acquisition in the live runtime.
    LockUnwrap,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 9] = [
        Rule::StdCollections,
        Rule::BinaryHeap,
        Rule::WallClock,
        Rule::ThreadSleepInTests,
        Rule::UnwrapInProtocol,
        Rule::ObsSchema,
        Rule::UnboundedChannel,
        Rule::SpawnPerSend,
        Rule::LockUnwrap,
    ];

    /// The rule's stable name (used in pragmas and reports).
    pub fn name(self) -> &'static str {
        match self {
            Rule::StdCollections => "std-collections",
            Rule::BinaryHeap => "binary-heap",
            Rule::WallClock => "wall-clock",
            Rule::ThreadSleepInTests => "thread-sleep-in-tests",
            Rule::UnwrapInProtocol => "unwrap-in-protocol",
            Rule::ObsSchema => "obs-schema",
            Rule::UnboundedChannel => "unbounded-channel",
            Rule::SpawnPerSend => "spawn-per-send",
            Rule::LockUnwrap => "lock-unwrap",
        }
    }
}

/// One rule hit at one source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending raw source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.name(), self.excerpt)
    }
}

/// The closed observability schema: every JSON key, event-kind name and
/// enum string the trace format may emit (docs/OBSERVABILITY.md). Adding
/// an entry here is the deliberate act the `obs-schema` rule forces.
const OBS_SCHEMA: &[&str] = &[
    // keys
    "ev", "at", "q", "node", "sigma", "count_only", "matched", "from", "to", "level", "attempt",
    "parent", "duplicate", "count", "fresh", "peer", "layer", "view_size", "mean_age_x1000",
    "replaced", "links", "zero", "changed",
    // event kinds
    "query_issued", "query_forwarded", "query_received", "reply_sent", "reply_merged",
    "timeout_fired", "sigma_stop", "query_completed", "gossip_round", "view_change",
    "node_crashed", "node_restarted",
    // enum values (gossip layers)
    "random", "semantic",
];

/// A source file after masking: comments and literal bodies blanked from
/// the code view, string literals and test regions recorded on the side.
/// Shared with the [`lockgraph`](crate::lockgraph) pass.
pub(crate) struct Scanned {
    /// Raw source lines (pragma detection, excerpts).
    pub(crate) raw: Vec<String>,
    /// Code view lines: comments and string/char literal bodies replaced
    /// by spaces, structure (quotes, braces) preserved positionally.
    pub(crate) code: Vec<String>,
    /// String literal bodies with their 1-based starting line.
    pub(crate) strings: Vec<(usize, String)>,
    /// 1-based inclusive line ranges covered by `#[cfg(test)]` items.
    pub(crate) test_regions: Vec<(usize, usize)>,
}

impl Scanned {
    pub(crate) fn in_test_region(&self, line: usize) -> bool {
        self.test_regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }

    fn allowed(&self, rule: Rule, line: usize) -> bool {
        self.allowed_name(rule.name(), line)
    }

    /// Pragma check by rule name (`lint:allow(name)` on the line or the
    /// line above; `lint:allow-file(name)` anywhere).
    pub(crate) fn allowed_name(&self, rule_name: &str, line: usize) -> bool {
        let file_tag = format!("lint:allow-file({rule_name})");
        if self.raw.iter().any(|l| l.contains(&file_tag)) {
            return true;
        }
        let tag = format!("lint:allow({rule_name})");
        let at = |n: usize| self.raw.get(n.wrapping_sub(1)).is_some_and(|l| l.contains(&tag));
        at(line) || (line > 1 && at(line - 1))
    }
}

/// Masks comments and literals out of `src`, recording literals and
/// `#[cfg(test)]` regions. Handles line/nested-block comments, string,
/// raw-string (`r#"…"#`), byte-string and char literals, and
/// distinguishes lifetimes from char literals well enough for real code.
pub(crate) fn scan(src: &str) -> Scanned {
    let bytes: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut strings: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match c {
            '\n' => {
                code.push('\n');
                line += 1;
                i += 1;
            }
            '/' if next == Some('/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    code.push(' ');
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let mut depth = 1;
                code.push_str("  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        depth += 1;
                        code.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        code.push_str("  ");
                        i += 2;
                    } else {
                        if bytes[i] == '\n' {
                            line += 1;
                            code.push('\n');
                        } else {
                            code.push(' ');
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                // Plain (or byte) string literal body.
                let start_line = line;
                let mut body = String::new();
                code.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        '\\' => {
                            code.push_str("  ");
                            if bytes.get(i + 1) == Some(&'\n') {
                                line += 1;
                            }
                            i += 2;
                        }
                        '"' => {
                            code.push('"');
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            code.push('\n');
                            body.push('\n');
                            i += 1;
                        }
                        ch => {
                            code.push(' ');
                            body.push(ch);
                            i += 1;
                        }
                    }
                }
                strings.push((start_line, body));
            }
            'r' if is_raw_string_start(&bytes, i) => {
                let start_line = line;
                let mut j = i + 1;
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                // Mask `r##"`.
                for _ in i..=j {
                    code.push(' ');
                }
                let mut body = String::new();
                let mut k = j + 1; // past the opening quote
                let closer: String =
                    std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
                while k < bytes.len() {
                    if bytes[k] == '"' && matches_at(&bytes, k, &closer) {
                        for _ in 0..closer.len() {
                            code.push(' ');
                        }
                        k += closer.len();
                        break;
                    }
                    if bytes[k] == '\n' {
                        line += 1;
                        code.push('\n');
                        body.push('\n');
                    } else {
                        code.push(' ');
                        body.push(bytes[k]);
                    }
                    k += 1;
                }
                strings.push((start_line, body));
                i = k;
            }
            '\'' => {
                // Char literal vs lifetime: a literal is '\…' or 'x'.
                let is_char = next == Some('\\')
                    || (next.is_some() && bytes.get(i + 2) == Some(&'\''));
                if is_char {
                    code.push(' ');
                    i += 1;
                    while i < bytes.len() && bytes[i] != '\'' {
                        if bytes[i] == '\\' {
                            code.push(' ');
                            i += 1;
                        }
                        if i < bytes.len() {
                            code.push(' ');
                            i += 1;
                        }
                    }
                    if i < bytes.len() {
                        code.push(' ');
                        i += 1; // closing quote
                    }
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }

    let raw: Vec<String> = src.lines().map(str::to_string).collect();
    let code_lines: Vec<String> = code.lines().map(str::to_string).collect();
    let test_regions = find_test_regions(&code_lines);
    Scanned { raw, code: code_lines, strings, test_regions }
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // `r"`, `r#"`, `br"`, … — and not part of an identifier like `for`.
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

fn matches_at(bytes: &[char], at: usize, pat: &str) -> bool {
    pat.chars().enumerate().all(|(k, p)| bytes.get(at + k) == Some(&p))
}

/// Finds the line spans of `#[cfg(test)]` items by matching the braces of
/// the item that follows the attribute (on the masked code view, so
/// braces inside strings or comments cannot confuse the balance).
fn find_test_regions(code: &[String]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let joined: Vec<(usize, char)> = code
        .iter()
        .enumerate()
        .flat_map(|(n, l)| l.chars().chain(std::iter::once('\n')).map(move |c| (n + 1, c)))
        .collect();
    let text: String = joined.iter().map(|&(_, c)| c).collect();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find("#[cfg(test)]") {
        let attr_at = from + pos;
        let start_line = joined[attr_at].0;
        // First `{` after the attribute opens the item body.
        let Some(open_rel) = text[attr_at..].find('{') else { break };
        let mut depth = 0i64;
        let mut end_line = start_line;
        let mut idx = attr_at + open_rel;
        while idx < joined.len() {
            match joined[idx].1 {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = joined[idx].0;
                        break;
                    }
                }
                _ => {}
            }
            idx += 1;
        }
        regions.push((start_line, end_line.max(start_line)));
        from = idx.min(text.len().saturating_sub(1)).max(attr_at + 1);
    }
    regions
}

/// Whether `hay` contains `needle` starting and ending at identifier
/// boundaries (so `HashMap` does not match `FastHashMapLike`).
pub(crate) fn has_token(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !hay[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Lints one source file given its repo-relative path (always
/// `/`-separated) and contents. The unit the rule tests drive.
pub fn lint_source(relpath: &str, src: &str) -> Vec<Finding> {
    let scanned = scan(src);
    let tests_file = relpath.contains("/tests/");
    let mut findings = Vec::new();
    let mut push = |rule: Rule, line: usize, scanned: &Scanned| {
        if !scanned.allowed(rule, line) {
            findings.push(Finding {
                rule,
                file: relpath.to_string(),
                line,
                excerpt: scanned.raw.get(line - 1).map(|l| l.trim().to_string()).unwrap_or_default(),
            });
        }
    };

    let in_core_or_sim =
        relpath.starts_with("crates/core/src") || relpath.starts_with("crates/sim/src");
    let in_net = relpath.starts_with("crates/net");
    let in_net_src = relpath.starts_with("crates/net/src");
    let protocol_file =
        relpath == "crates/core/src/node.rs" || relpath == "crates/core/src/routing.rs";
    let obs_event_file = relpath == "crates/obs/src/event.rs";

    for (n, code_line) in scanned.code.iter().enumerate() {
        let line = n + 1;
        let in_test = tests_file || scanned.in_test_region(line);

        if in_core_or_sim
            && !in_test
            && (has_token(code_line, "HashMap") || has_token(code_line, "HashSet"))
        {
            push(Rule::StdCollections, line, &scanned);
        }
        if in_core_or_sim && !in_test && has_token(code_line, "BinaryHeap") {
            push(Rule::BinaryHeap, line, &scanned);
        }
        if !in_net && (has_token(code_line, "SystemTime") || code_line.contains("Instant::now")) {
            push(Rule::WallClock, line, &scanned);
        }
        if in_test && code_line.contains("thread::sleep") {
            push(Rule::ThreadSleepInTests, line, &scanned);
        }
        if protocol_file && code_line.contains(".unwrap()") {
            push(Rule::UnwrapInProtocol, line, &scanned);
        }
        // Matched as a qualified path (`mpsc::channel`), which is how the
        // runtime spells it everywhere; `sync_channel` cannot collide.
        if in_net_src && !in_test && has_token(code_line, "mpsc::channel") {
            push(Rule::UnboundedChannel, line, &scanned);
        }
        // `thread::Builder` spawns (named, long-lived) spell the method as
        // `.spawn(...)`, so the qualified `thread::spawn` token only hits
        // the bare free function — the per-message spawn pattern.
        if in_net_src && !in_test && has_token(code_line, "thread::spawn") {
            push(Rule::SpawnPerSend, line, &scanned);
        }
        // Tests included: a test that raw-locks runtime state bypasses the
        // lock-class audit exactly when concurrency bugs are being chased.
        if in_net_src
            && (code_line.contains(".lock().unwrap()")
                || code_line.contains(".read().unwrap()")
                || code_line.contains(".write().unwrap()"))
        {
            push(Rule::LockUnwrap, line, &scanned);
        }
    }

    if obs_event_file {
        for &(line, ref body) in &scanned.strings {
            if tests_file || scanned.in_test_region(line) {
                continue;
            }
            let key_shaped = !body.is_empty()
                && body.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && body.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
            if key_shaped && !OBS_SCHEMA.contains(&body.as_str()) {
                push(Rule::ObsSchema, line, &scanned);
            }
        }
    }

    findings
}

/// Lints every `.rs` file under `root/crates` (vendored stand-ins under
/// `vendor/` are third-party API shims and are not held to repo rules).
/// Findings come back sorted by path, line, rule.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_repo(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        findings.extend(lint_source(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(relpath: &str, src: &str) -> Vec<Rule> {
        lint_source(relpath, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn std_collections_flagged_in_core_hot_path() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u64, u64> = HashMap::new(); }\n";
        let hits = rules_hit("crates/core/src/whatever.rs", src);
        assert!(hits.contains(&Rule::StdCollections), "positive match required");
        // Same source is fine outside core/sim…
        assert!(rules_hit("crates/bench/src/whatever.rs", src).is_empty());
        // …and fine inside a test module.
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert!(rules_hit("crates/sim/src/whatever.rs", test_src).is_empty());
    }

    #[test]
    fn binary_heap_flagged_in_core_hot_path() {
        let src = "use std::collections::BinaryHeap;\nfn f() { let h: BinaryHeap<u64> = BinaryHeap::new(); }\n";
        assert!(
            rules_hit("crates/sim/src/cluster.rs", src).contains(&Rule::BinaryHeap),
            "positive match required"
        );
        assert!(rules_hit("crates/core/src/whatever.rs", src).contains(&Rule::BinaryHeap));
        // Fine outside core/sim (net's delay line legitimately uses one)…
        assert!(rules_hit("crates/net/src/transport.rs", src).is_empty());
        // …fine as a reference model in test code…
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::collections::BinaryHeap;\n}\n";
        assert!(rules_hit("crates/sim/src/event.rs", test_src).is_empty());
        assert!(rules_hit("crates/sim/tests/equiv.rs", src).is_empty());
        // …and suppressible with a reasoned pragma.
        let allowed =
            "// lint:allow(binary-heap) — cold path, profiled 2026-08\nuse std::collections::BinaryHeap;\n";
        assert!(rules_hit("crates/sim/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_net() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(rules_hit("crates/sim/src/clock.rs", src).contains(&Rule::WallClock));
        assert!(rules_hit("crates/bench/src/bin/x.rs", src).contains(&Rule::WallClock));
        assert!(rules_hit("crates/net/src/clock.rs", src).is_empty(), "net owns real time");
        let sys = "fn f() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
        assert!(rules_hit("crates/core/src/x.rs", sys).contains(&Rule::WallClock));
    }

    #[test]
    fn thread_sleep_flagged_in_tests_only() {
        let src = "fn f() { std::thread::sleep(std::time::Duration::from_millis(50)); }\n";
        assert!(
            rules_hit("crates/net/tests/live.rs", src).contains(&Rule::ThreadSleepInTests),
            "integration test files count as test code"
        );
        assert!(rules_hit("crates/net/src/runtime.rs", src).is_empty(), "non-test code exempt");
        let module = "#[cfg(test)]\nmod tests {\n    fn f() { thread::sleep(d); }\n}\n";
        assert!(rules_hit("crates/core/src/x.rs", module).contains(&Rule::ThreadSleepInTests));
    }

    #[test]
    fn unwrap_flagged_in_protocol_files_everywhere() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(rules_hit("crates/core/src/node.rs", src).contains(&Rule::UnwrapInProtocol));
        assert!(rules_hit("crates/core/src/routing.rs", src).contains(&Rule::UnwrapInProtocol));
        assert!(rules_hit("crates/core/src/selector.rs", src).is_empty(), "scoped to two files");
        let in_test = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(
            rules_hit("crates/core/src/node.rs", in_test).contains(&Rule::UnwrapInProtocol),
            "protocol files hold their tests to the same standard"
        );
    }

    #[test]
    fn obs_schema_rejects_unknown_keys() {
        let src = "fn f(w: &mut W) { w.u64_field(\"warp_drive\", 1); }\n";
        assert!(
            rules_hit("crates/obs/src/event.rs", src).contains(&Rule::ObsSchema),
            "unknown key must be flagged"
        );
        let known = "fn f(w: &mut W) { w.u64_field(\"attempt\", 1); }\n";
        assert!(rules_hit("crates/obs/src/event.rs", known).is_empty());
        // Key-shaped strings in *tests* are fixtures (bad-input cases).
        let test_src =
            "#[cfg(test)]\nmod tests {\n    const K: &str = \"warp_drive\";\n}\n";
        assert!(rules_hit("crates/obs/src/event.rs", test_src).is_empty());
        // Other obs files are out of scope.
        assert!(rules_hit("crates/obs/src/json.rs", src).is_empty());
    }

    #[test]
    fn unbounded_channel_flagged_in_net_runtime_only() {
        let src = "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u64>(); }\n";
        assert!(
            rules_hit("crates/net/src/peer.rs", src).contains(&Rule::UnboundedChannel),
            "positive match required"
        );
        let call = "use std::sync::mpsc;\nfn f() { let (tx, rx) = mpsc::channel(); }\n";
        assert!(rules_hit("crates/net/src/cluster.rs", call).contains(&Rule::UnboundedChannel));
        // Bounded inboxes are the sanctioned form…
        let bounded = "fn f() { let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(64); }\n";
        assert!(rules_hit("crates/net/src/peer.rs", bounded).is_empty());
        // …test code may use whatever is convenient…
        assert!(rules_hit("crates/net/tests/live.rs", src).is_empty());
        let module = "#[cfg(test)]\nmod tests {\n    fn f() { let p = std::sync::mpsc::channel::<u8>(); }\n}\n";
        assert!(rules_hit("crates/net/src/transport.rs", module).is_empty());
        // …other crates are out of scope (the simulator has no threads)…
        assert!(rules_hit("crates/sim/src/cluster.rs", src).is_empty());
        // …and a reasoned pragma still escapes.
        let allowed = "// lint:allow(unbounded-channel) — shutdown path, ≤1 message ever\nfn f() { let p = std::sync::mpsc::channel::<u8>(); }\n";
        assert!(rules_hit("crates/net/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn spawn_per_send_flagged_in_net_runtime_only() {
        let src = "fn f() { std::thread::spawn(move || serve()); }\n";
        assert!(
            rules_hit("crates/net/src/transport.rs", src).contains(&Rule::SpawnPerSend),
            "positive match required"
        );
        let bare = "use std::thread;\nfn f() { thread::spawn(|| {}); }\n";
        assert!(rules_hit("crates/net/src/peer.rs", bare).contains(&Rule::SpawnPerSend));
        // Named, long-lived threads via the Builder are the sanctioned form.
        let builder = "fn f() { std::thread::Builder::new().name(\"autosel-net-writer\".into()).spawn(|| {}).unwrap(); }\n";
        assert!(rules_hit("crates/net/src/transport.rs", builder).is_empty());
        // Test code may spawn however it likes…
        assert!(rules_hit("crates/net/tests/live.rs", src).is_empty());
        let module = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}\n";
        assert!(rules_hit("crates/net/src/transport.rs", module).is_empty());
        // …other crates are out of scope…
        assert!(rules_hit("crates/bench/src/bin/x.rs", src).is_empty());
        // …and a reasoned pragma still escapes.
        let allowed = "// lint:allow(spawn-per-send) — one-shot probe, joined below\nfn f() { std::thread::spawn(|| {}); }\n";
        assert!(rules_hit("crates/net/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn lock_unwrap_flagged_in_net_runtime_and_its_tests() {
        let src = "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n";
        assert!(
            rules_hit("crates/net/src/transport.rs", src).contains(&Rule::LockUnwrap),
            "positive match required"
        );
        let read = "fn f() { let n = reg.read().unwrap().len(); }\n";
        assert!(rules_hit("crates/net/src/peer.rs", read).contains(&Rule::LockUnwrap));
        let write = "fn f() { reg.write().unwrap().clear(); }\n";
        assert!(rules_hit("crates/net/src/cluster.rs", write).contains(&Rule::LockUnwrap));
        // Unit tests inside the runtime are held to the same standard…
        let module = "#[cfg(test)]\nmod tests {\n    fn f() { q.lock().unwrap().push(1); }\n}\n";
        assert!(rules_hit("crates/net/src/transport.rs", module).contains(&Rule::LockUnwrap));
        // …the tracked wrappers (no Result, no unwrap) are the sanctioned form…
        let tracked = "fn f() { let mut q = self.queue.lock(); q.push(1); }\n";
        assert!(rules_hit("crates/net/src/transport.rs", tracked).is_empty());
        // …an invariant-stating expect is fine where std locks remain…
        let expect = "fn f() { let g = m.lock().expect(\"registry lock poisoned\"); }\n";
        assert!(rules_hit("crates/net/src/transport.rs", expect).is_empty());
        // …other crates are out of scope, and a reasoned pragma escapes.
        assert!(rules_hit("crates/obs/src/flight.rs", src).is_empty());
        let allowed = "// lint:allow(lock-unwrap) — bench-only scaffold, no runtime lock classes\nfn f() { m.lock().unwrap(); }\n";
        assert!(rules_hit("crates/net/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_trip_token_rules() {
        let src = "// std::collections::HashMap is banned here\nfn f() { let s = \"HashMap Instant::now thread::sleep .unwrap()\"; let _ = s; }\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
        let block = "/* HashMap\n   SystemTime */\nfn g() {}\n";
        assert!(rules_hit("crates/sim/src/y.rs", block).is_empty());
    }

    #[test]
    fn pragmas_suppress_line_and_file() {
        let inline = "fn f() {\n    // lint:allow(wall-clock) — elapsed-time report only\n    let t = Instant::now();\n}\n";
        assert!(rules_hit("crates/bench/src/x.rs", inline).is_empty());
        let same_line = "fn f() { let t = Instant::now(); } // lint:allow(wall-clock)\n";
        assert!(rules_hit("crates/bench/src/x.rs", same_line).is_empty());
        let file_level = "// lint:allow-file(std-collections) — wraps the std maps\nuse std::collections::HashMap;\nfn f() { let _: HashMap<u8, u8> = HashMap::new(); }\n";
        assert!(rules_hit("crates/core/src/x.rs", file_level).is_empty());
        // The pragma only silences its own rule.
        let wrong_rule = "// lint:allow(wall-clock)\nuse std::collections::HashMap;\n";
        assert!(rules_hit("crates/core/src/x.rs", wrong_rule)
            .contains(&Rule::StdCollections));
    }

    #[test]
    fn token_boundaries_respected() {
        let src = "fn f() { let m = FastHashMapLike::new(); my_instant_now(); }\n";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_region_spans_whole_module() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn a() {}\n    fn b() { let m: std::collections::HashMap<u8, u8> = Default::default(); let _ = m; }\n}\n";
        assert!(rules_hit("crates/sim/src/x.rs", src).is_empty());
        // …but code after the module is production again.
        let after = "#[cfg(test)]\nmod tests {\n    fn a() {}\n}\nuse std::collections::HashSet;\n";
        assert!(rules_hit("crates/sim/src/x.rs", after).contains(&Rule::StdCollections));
    }
}
