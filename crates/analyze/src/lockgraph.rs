//! Static lock-order analysis for the live runtime (`crates/net`,
//! `crates/obs`) — the `lock-order` pass of the `analyze lint` bin.
//!
//! The runtime's locks are declared through the tracked `net::sync`
//! wrappers, and every lock field carries a `// lock-class: <name>`
//! annotation. This pass cross-checks those declarations *statically*, in
//! the same hand-rolled, zero-dependency style as [`crate::lint`] (masked
//! comments/strings, brace-matched scopes, token scans — no syn, no
//! regex):
//!
//! * **`unclassed-lock-field`** — a `Mutex`/`RwLock`/`Condvar`-typed field
//!   (tracked or std) with no `lock-class` annotation. Reference-typed
//!   parameters are exempt: they inherit the class of the same-named
//!   field.
//! * **`lock-cycle`** — the cross-function lock-acquisition graph (edges
//!   from every lock class held at an acquisition site to the class
//!   acquired, direct or through a resolvable call chain) contains a
//!   cycle: two code paths that take the same classes in opposite orders,
//!   i.e. a lock-order inversion. **Not pragma-suppressible** — break the
//!   cycle or restructure.
//! * **`blocking-under-lock`** — a blocking call (`write_all`, `flush`,
//!   `read_exact`, `recv`, `recv_timeout`, `connect`, `accept`, `sleep`,
//!   `join`, or a condvar wait with a *second* lock held) while a guard is
//!   live. A guard held across I/O turns one slow peer into a stalled
//!   data plane.
//! * **`send-under-lock`** — a channel send (`try_deliver`, `send`,
//!   `try_send`, `send_blocking`) while a guard is live. Even non-blocking
//!   sends wake receivers that may take locks, widening critical sections
//!   and inviting inversions.
//!
//! Guard liveness is tracked per function with the temporary-lifetime
//! rules the compiler actually applies (pre-2024 editions): a guard bound
//! with `let g = x.lock();` (optionally `.unwrap()` / `.expect(…)`) lives
//! to end of scope or `drop(g)`; a *chained* acquisition
//! (`x.lock().unwrap().do_thing()`) is a statement-transient temporary; an
//! acquisition in an `if let` / `while let` / `for` / `match` head lives
//! for the whole block (the register/deregister bug shape this pass
//! exists to catch); a `let … else` temporary ends at the statement, so
//! the `else` arm runs guard-free (RFC 3137). A dropped guard that is
//! used again (`drop(g); … g.push(…)`) is revived — the enqueue
//! fast-path-drop idiom.
//!
//! Interprocedural effects use per-function summaries (classes acquired,
//! blocking, sends) closed under a fixpoint over calls that resolve to
//! exactly one definition (same file first, then globally unique);
//! container/combinator method names and calls whose receiver is itself a
//! live guard are skipped. Closures handed to `.spawn(…)` run on a *new*
//! thread with an empty held-set, so their bodies are excluded from both
//! the enclosing function's findings and its summary — the spawned
//! function body is still analyzed on its own.
//!
//! Out of scope by construction: test code (`#[cfg(test)]` regions and
//! `tests/` dirs) and the two `sync.rs` files — the checker's own
//! implementation keeps its infrastructure locks leaf-only and is
//! verified at runtime by its unit tests, not by itself.
//!
//! Suppression: `// lint:allow(lock-order)` on the line or the line
//! above, always with a stated reason (`lint:allow-file(lock-order)` for
//! a whole file). Cycles ignore pragmas.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::lint::{collect_rs_files, has_token, scan, Scanned};

/// The pragma name shared by every finding kind of this pass.
pub const PRAGMA: &str = "lock-order";

/// What a lock-order finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockRule {
    /// A lock-typed field with no `lock-class` annotation.
    UnclassedLockField,
    /// A cycle in the lock-acquisition graph (order inversion).
    LockCycle,
    /// A blocking call while a guard is live.
    BlockingUnderLock,
    /// A channel send while a guard is live.
    SendUnderLock,
}

impl LockRule {
    /// Stable slug used in reports.
    pub fn slug(self) -> &'static str {
        match self {
            LockRule::UnclassedLockField => "unclassed-lock-field",
            LockRule::LockCycle => "lock-cycle",
            LockRule::BlockingUnderLock => "blocking-under-lock",
            LockRule::SendUnderLock => "send-under-lock",
        }
    }
}

/// One lock-order finding at one source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockFinding {
    /// Which check fired.
    pub rule: LockRule,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation naming the classes involved.
    pub detail: String,
}

impl fmt::Display for LockFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [lock-order/{}] {}", self.file, self.line, self.rule.slug(), self.detail)
    }
}

/// Lock-typed generics (field decls look like `name: …Type<…>`).
const LOCK_GENERICS: [&str; 4] = ["TrackedMutex", "TrackedRwLock", "Mutex", "RwLock"];
/// Lock types without a payload parameter.
const CONDVARS: [&str; 2] = ["TrackedCondvar", "Condvar"];
/// Acquisition method tokens (must be argument-less calls).
const ACQUIRE: [&str; 3] = [".lock()", ".read()", ".write()"];
/// Calls that block the thread (scanned as substrings of the code view).
const BLOCKING: [&str; 9] = [
    "write_all(",
    ".flush(",
    "read_exact(",
    ".recv(",
    "recv_timeout(",
    "connect(",
    ".accept(",
    "sleep(",
    ".join(",
];
/// Channel-send call tokens.
const SENDS: [&str; 4] = ["try_deliver(", "send_blocking(", ".try_send(", ".send("];
/// Condvar wait tokens (exempt while the waited guard is the only one).
const WAITS: [&str; 2] = [".wait(", ".wait_timeout("];

/// Method names never resolved as calls: lock/condvar family, the
/// blocking/send tokens (handled directly), and container/combinator
/// operations on a guard's payload.
fn skip_call(name: &str) -> bool {
    matches!(
        name,
        "lock" | "read" | "write" | "try_lock" | "try_read" | "try_write"
            | "wait" | "wait_timeout" | "notify_one" | "notify_all"
            | "write_all" | "flush" | "read_exact" | "recv" | "recv_timeout"
            | "connect" | "accept" | "sleep" | "join"
            | "send" | "try_send" | "send_blocking" | "try_deliver"
            | "push" | "push_back" | "push_front" | "pop" | "pop_front" | "pop_back"
            | "insert" | "remove" | "get" | "get_mut" | "entry" | "or_insert" | "or_default"
            | "drain" | "extend" | "extend_from_slice" | "clear" | "len" | "is_empty"
            | "contains" | "contains_key" | "keys" | "values" | "iter" | "iter_mut"
            | "peek" | "front" | "back" | "drop" | "clone" | "cloned" | "copied"
            | "map" | "and_then" | "filter" | "collect" | "unwrap" | "expect"
            | "unwrap_or" | "unwrap_or_default" | "to_string" | "into" | "from"
            | "new" | "default" | "fmt" | "eq" | "cmp" | "partial_cmp" | "hash"
    )
}

/// A lock-class-annotated field: `ident` → class name.
type ClassMap = HashMap<String, String>;

struct FileCtx {
    path: String,
    scanned: Scanned,
    /// Brace depth before each 1-based line (index 0 unused).
    depth_before: Vec<i32>,
    classes: ClassMap,
}

#[derive(Debug, Clone)]
struct FnDef {
    name: String,
    file: usize,
    /// 1-based body line range, inclusive (first line contains the `{`).
    start: usize,
    end: usize,
}

/// Per-function effect summary (transitively closed over resolvable calls).
#[derive(Debug, Clone, Default, PartialEq)]
struct FnFx {
    classes: BTreeSet<String>,
    blocking: bool,
    sends: bool,
    calls: BTreeSet<usize>,
}

/// Analyzes `(repo-relative path, contents)` pairs as one program.
/// The unit the negative-control tests drive.
pub fn lock_order_sources(files: &[(&str, &str)]) -> Vec<LockFinding> {
    let mut ctxs: Vec<FileCtx> = Vec::new();
    for (path, src) in files {
        let scanned = scan(src);
        let mut depth_before = vec![0i32; scanned.code.len() + 2];
        let mut d = 0i32;
        for (i, line) in scanned.code.iter().enumerate() {
            depth_before[i + 1] = d;
            for ch in line.chars() {
                match ch {
                    '{' => d += 1,
                    '}' => d -= 1,
                    _ => {}
                }
            }
        }
        depth_before[scanned.code.len() + 1] = d;
        ctxs.push(FileCtx {
            path: (*path).to_string(),
            scanned,
            depth_before,
            classes: ClassMap::new(),
        });
    }

    let mut findings = Vec::new();

    // Pass 0: lock-class maps from field declarations (+ unclassed findings).
    let mut global_classes: HashMap<String, Option<String>> = HashMap::new();
    for ctx in &mut ctxs {
        for i in 1..=ctx.scanned.code.len() {
            if ctx.scanned.in_test_region(i) {
                continue;
            }
            let code = ctx.scanned.code[i - 1].clone();
            let Some(field) = lock_field_decl(&code) else { continue };
            // Reference-typed params inherit a field's class by name.
            if field.by_ref {
                continue;
            }
            let class = (i.saturating_sub(2)..i)
                .rev()
                .filter_map(|n| ctx.scanned.raw.get(n))
                .find_map(|raw| annotation(raw));
            match class {
                Some(c) => {
                    ctx.classes.insert(field.name.clone(), c.clone());
                    match global_classes.entry(field.name.clone()) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(Some(c));
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            if e.get().as_deref() != Some(c.as_str()) {
                                e.insert(None); // ambiguous across files
                            }
                        }
                    }
                }
                None => {
                    if !ctx.scanned.allowed_name(PRAGMA, i) {
                        findings.push(LockFinding {
                            rule: LockRule::UnclassedLockField,
                            file: ctx.path.clone(),
                            line: i,
                            detail: format!(
                                "lock-typed field `{}` has no `// lock-class: <name>` annotation",
                                field.name
                            ),
                        });
                    }
                }
            }
        }
    }

    // Pass 1: function index (nested fns recorded separately; a function's
    // walk skips lines owned by fns nested inside it).
    let mut fns: Vec<FnDef> = Vec::new();
    for (fi, ctx) in ctxs.iter().enumerate() {
        index_fns(fi, ctx, &mut fns);
    }
    let mut per_file: HashMap<(usize, String), Vec<usize>> = HashMap::new();
    let mut global: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        per_file.entry((f.file, f.name.clone())).or_default().push(i);
        global.entry(f.name.clone()).or_default().push(i);
    }
    let resolve = |file: usize, name: &str| -> Option<usize> {
        if skip_call(name) {
            return None;
        }
        if let Some(v) = per_file.get(&(file, name.to_string())) {
            if v.len() == 1 {
                return Some(v[0]);
            }
            return None; // ambiguous in-file
        }
        match global.get(name) {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    };

    // Pass 2: direct per-function effects, then fixpoint closure.
    let mut fx: Vec<FnFx> = Vec::new();
    for (i, def) in fns.iter().enumerate() {
        let mut out = WalkOut::default();
        walk_fn(def, i, &fns, &ctxs[def.file], &global_classes, &resolve, None, &mut out);
        fx.push(out.direct);
    }
    loop {
        let mut changed = false;
        for i in 0..fx.len() {
            let calls: Vec<usize> = fx[i].calls.iter().copied().collect();
            for c in calls {
                let (classes, blocking, sends) =
                    (fx[c].classes.clone(), fx[c].blocking, fx[c].sends);
                let me = &mut fx[i];
                let before = (me.classes.len(), me.blocking, me.sends);
                me.classes.extend(classes);
                me.blocking |= blocking;
                me.sends |= sends;
                changed |= before != (me.classes.len(), me.blocking, me.sends);
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: findings + acquisition-graph edges, summaries applied.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for (i, def) in fns.iter().enumerate() {
        let mut out = WalkOut::default();
        walk_fn(def, i, &fns, &ctxs[def.file], &global_classes, &resolve, Some(&fx), &mut out);
        findings.extend(out.findings);
        for (from, to, line) in out.edges {
            edges.entry((from, to)).or_insert((ctxs[def.file].path.clone(), line));
        }
    }

    // Cycle detection over the class graph.
    let adj: HashMap<&str, Vec<&str>> = {
        let mut m: HashMap<&str, Vec<&str>> = HashMap::new();
        for (from, to) in edges.keys() {
            m.entry(from.as_str()).or_default().push(to.as_str());
        }
        m
    };
    let mut seen_cycles: HashSet<Vec<String>> = HashSet::new();
    for ((from, to), (file, line)) in &edges {
        if let Some(mut path) = path_between(&adj, to, from) {
            // `path` runs to → … → from; prepending `from` closes the loop.
            path.insert(0, from.clone());
            // Canonicalize (closing node dropped, smallest class rotated to
            // the front) so each cycle is reported once however entered.
            let mut canon = path[..path.len() - 1].to_vec();
            let min = canon.iter().enumerate().min_by_key(|(_, c)| c.as_str()).map(|(i, _)| i);
            if let Some(i) = min {
                canon.rotate_left(i);
            }
            if seen_cycles.insert(canon) {
                findings.push(LockFinding {
                    rule: LockRule::LockCycle,
                    file: file.clone(),
                    line: *line,
                    detail: format!(
                        "lock-order cycle: {} (two paths take these classes in opposite orders)",
                        path.join(" → ")
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Runs the pass over the runtime crates of a repo checkout:
/// `crates/net/src` and `crates/obs/src`, minus test regions and the
/// `sync.rs` checker internals (see module docs).
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lock_order_repo(root: &Path) -> io::Result<Vec<LockFinding>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates/net/src"), &mut files)?;
    collect_rs_files(&root.join("crates/obs/src"), &mut files)?;
    files.sort();
    let mut sources = Vec::new();
    for path in &files {
        if path.file_name().is_some_and(|n| n == "sync.rs") {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel, fs::read_to_string(path)?));
    }
    let refs: Vec<(&str, &str)> =
        sources.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
    Ok(lock_order_sources(&refs))
}

struct LockFieldDecl {
    name: String,
    by_ref: bool,
}

/// Parses `[pub] name: <type containing a lock generic or condvar>` —
/// a struct/enum-variant field or a fn parameter. `Type::path` uses
/// (`Mutex::new`) are excluded by the `::` check; `use`/turbofish lines
/// have no single-colon ident prefix and never match.
fn lock_field_decl(code: &str) -> Option<LockFieldDecl> {
    let hit = LOCK_GENERICS
        .iter()
        .map(|t| (*t, true))
        .chain(CONDVARS.iter().map(|t| (*t, false)))
        .find_map(|(ty, generic)| {
            let mut from = 0;
            while let Some(off) = code[from..].find(ty) {
                let at = from + off;
                let end = at + ty.len();
                let before_ok = at == 0
                    || !code.as_bytes()[at - 1].is_ascii_alphanumeric()
                        && code.as_bytes()[at - 1] != b'_'
                        && &code[at.saturating_sub(2)..at] != "::";
                let after = &code[end..];
                let after_ok = if generic {
                    after.starts_with('<')
                } else {
                    !after.starts_with("::")
                        && !after
                            .bytes()
                            .next()
                            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                };
                if before_ok && after_ok {
                    return Some(at);
                }
                from = end;
            }
            None
        })?;
    // The decl shape: the text before the token must be `name: <prefix>`
    // with a single `:` (not `::`) and a lowercase-initial ident — so
    // SCREAMING_CASE statics stay lockcheck-internal and `use` paths and
    // return types never match.
    let head = &code[..hit];
    let colon = head.find(':').filter(|&i| !head[i..].starts_with("::"))?;
    if head[colon..].starts_with("::") || (colon > 0 && head.as_bytes()[colon - 1] == b':') {
        return None;
    }
    let mut name_part = head[..colon].trim();
    for prefix in ["pub(crate)", "pub(super)", "pub"] {
        if let Some(rest) = name_part.strip_prefix(prefix) {
            name_part = rest.trim();
        }
    }
    if name_part.contains(' ') || name_part.contains('(') || name_part.contains('<') {
        return None;
    }
    let name = name_part.to_string();
    if !name.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_') {
        return None;
    }
    if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let ty = head[colon + 1..].trim_start();
    Some(LockFieldDecl { name, by_ref: ty.starts_with('&') })
}

/// Extracts `name` from a `// lock-class: name` annotation line.
fn annotation(raw: &str) -> Option<String> {
    let at = raw.find("lock-class:")?;
    let rest = raw[at + "lock-class:".len()..].trim();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_' || *c == '-')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Records every `fn name` body in `ctx` (test regions excluded), keeping
/// a stack so nested fns get their own entries.
fn index_fns(fi: usize, ctx: &FileCtx, out: &mut Vec<FnDef>) {
    let mut pending: Option<(String, usize)> = None;
    let mut open: Vec<(String, usize, i32)> = Vec::new(); // (name, start, depth at open)
    for i in 1..=ctx.scanned.code.len() {
        let code = &ctx.scanned.code[i - 1];
        let mut d = ctx.depth_before[i];
        if pending.is_none() {
            if let Some(name) = fn_decl_name(code) {
                if !ctx.scanned.in_test_region(i) {
                    pending = Some((name, i));
                }
            }
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    if let Some((name, start)) = pending.take() {
                        open.push((name, start, d));
                    }
                    d += 1;
                }
                '}' => {
                    d -= 1;
                    if open.last().is_some_and(|&(_, _, od)| d == od) {
                        let (name, start, _) = open.pop().expect("just checked");
                        out.push(FnDef { name, file: fi, start, end: i });
                    }
                }
                _ => {}
            }
        }
        // A `;` before any `{` ends a bodyless trait-method declaration.
        if pending.is_some() && code.trim_end().ends_with(';') {
            pending = None;
        }
    }
}

/// The declared name on a `fn name(` line, if any.
fn fn_decl_name(code: &str) -> Option<String> {
    let mut from = 0;
    while let Some(off) = code[from..].find("fn ") {
        let at = from + off;
        let boundary = at == 0 || {
            let b = code.as_bytes()[at - 1];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        if boundary {
            let rest = code[at + 3..].trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        from = at + 3;
    }
    None
}

#[derive(Debug, Clone)]
struct Guard {
    name: Option<String>,
    class: Option<String>,
    /// Block guards die when depth returns to `birth_depth`; named `let`
    /// guards (`strict` = true) die when depth drops *below* it; `None`
    /// marks a statement-transient guard.
    birth_depth: Option<(i32, bool)>,
}

#[derive(Default)]
struct WalkOut {
    direct: FnFx,
    findings: Vec<LockFinding>,
    edges: Vec<(String, String, usize)>,
}

#[allow(clippy::too_many_arguments)]
fn walk_fn(
    def: &FnDef,
    self_idx: usize,
    fns: &[FnDef],
    ctx: &FileCtx,
    global_classes: &HashMap<String, Option<String>>,
    resolve: &dyn Fn(usize, &str) -> Option<usize>,
    fx: Option<&Vec<FnFx>>,
    out: &mut WalkOut,
) {
    // Lines owned by fns nested strictly inside this one are theirs alone.
    let nested: Vec<(usize, usize)> = fns
        .iter()
        .enumerate()
        .filter(|&(i, f)| {
            i != self_idx && f.file == def.file && f.start >= def.start && f.end <= def.end
        })
        .map(|(_, f)| (f.start, f.end))
        .collect();

    let class_of = |ident: &str| -> Option<String> {
        ctx.classes
            .get(ident)
            .cloned()
            .or_else(|| global_classes.get(ident).and_then(|c| c.clone()))
    };

    let mut live: Vec<Guard> = Vec::new();
    let mut killed: HashMap<String, Guard> = HashMap::new();
    let mut spawn_parens = 0i32; // >0: inside a multi-line `.spawn(…)` closure

    for i in def.start..=def.end {
        if ctx.scanned.in_test_region(i) || nested.iter().any(|&(s, e)| s <= i && i <= e) {
            continue;
        }
        let code = &ctx.scanned.code[i - 1];
        let next_depth = ctx.depth_before[i + 1];

        if spawn_parens > 0 {
            spawn_parens += paren_balance(code);
            expire(&mut live, next_depth);
            continue;
        }
        // Effects after `.spawn(` run on the spawned thread, not under our
        // guards: truncate (same-line closure) or skip until the call's
        // parens close.
        let mut eff: &str = code;
        if let Some(at) = code.find(".spawn(") {
            let tail = &code[at..];
            let bal = paren_balance(tail);
            eff = &code[..at];
            if bal > 0 {
                spawn_parens = bal;
            }
        }

        // Revive drop()-killed guards the line still uses, then process kills.
        let used: Vec<String> = killed
            .keys()
            .filter(|n| has_token(eff, n) && !eff.contains(&format!("drop({n})")))
            .cloned()
            .collect();
        for n in used {
            if let Some(g) = killed.remove(&n) {
                live.push(g);
            }
        }
        let mut search = eff;
        while let Some(at) = search.find("drop(") {
            let arg: String = search[at + 5..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if let Some(pos) = live.iter().position(|g| g.name.as_deref() == Some(arg.as_str())) {
                let g = live.remove(pos);
                killed.insert(arg.clone(), g);
            }
            search = &search[at + 5..];
        }

        // Acquisitions on this line (receiver may end the previous line).
        let mut acquired: Vec<(Option<String>, Option<String>)> = Vec::new(); // (recv, class)
        for tok in ACQUIRE {
            let mut from = 0;
            while let Some(off) = eff[from..].find(tok) {
                let at = from + off;
                let recv = if eff[..at].trim().is_empty() && i > def.start {
                    trailing_ident(&ctx.scanned.code[i - 2])
                } else {
                    trailing_ident(&eff[..at])
                };
                let class = recv.as_deref().and_then(class_of);
                acquired.push((recv, class));
                from = at + tok.len();
            }
        }
        let held_before: Vec<String> =
            live.iter().filter_map(|g| g.class.clone()).collect();
        for (_, class) in &acquired {
            if let Some(c) = class {
                out.direct.classes.insert(c.clone());
                // Same-class self-edges are skipped: re-locking the class a
                // thread already holds is recursion, which the *runtime*
                // checker panics on (and its unit tests cover) — statically
                // it is indistinguishable from a guard reassignment
                // (`drop(g); … g = x.lock();`).
                for h in held_before.iter().filter(|h| *h != c) {
                    out.edges.push((h.clone(), c.clone(), i));
                }
            }
        }

        // Bind the acquisitions to guards by statement shape.
        if !acquired.is_empty() {
            let trimmed = eff.trim_start();
            let depth = ctx.depth_before[i];
            let head_kw = ["if let ", "while let ", "for ", "match "]
                .iter()
                .any(|k| trimmed.starts_with(k) || trimmed.contains(&format!("else {k}")));
            if head_kw && !trimmed.contains(" else {") {
                let (_, class) = acquired[0].clone();
                live.push(Guard { name: None, class, birth_depth: Some((depth, false)) });
            } else if let Some(name) = binding_name(trimmed) {
                if rhs_ends_at_acquisition(trimmed) {
                    let (_, class) = acquired[0].clone();
                    if !live.iter().any(|g| g.name.as_deref() == Some(name.as_str())) {
                        live.push(Guard {
                            name: Some(name),
                            class,
                            birth_depth: Some((depth, true)),
                        });
                    }
                } else {
                    for (_, class) in &acquired {
                        live.push(Guard { name: None, class: class.clone(), birth_depth: None });
                    }
                }
            } else {
                for (_, class) in &acquired {
                    live.push(Guard { name: None, class: class.clone(), birth_depth: None });
                }
            }
        }

        // Condvar waits: blocking for callers (summary), locally exempt
        // while the waited guard is the only one held.
        let is_wait = WAITS.iter().any(|t| eff.contains(t));
        if is_wait {
            out.direct.blocking = true;
            if live.len() >= 2 {
                report(out, ctx, i, LockRule::BlockingUnderLock, format!(
                    "condvar wait while {} other lock(s) held ({})",
                    live.len() - 1,
                    held_names(&live)
                ));
            }
        }

        // Direct blocking / send tokens.
        for t in BLOCKING {
            if eff.contains(t) {
                out.direct.blocking = true;
                if !live.is_empty() && !is_wait {
                    report(out, ctx, i, LockRule::BlockingUnderLock, format!(
                        "blocking call `{}…)` while holding {}",
                        t.trim_start_matches('.'),
                        held_names(&live)
                    ));
                }
            }
        }
        for t in SENDS {
            if eff.contains(t) {
                out.direct.sends = true;
                if !live.is_empty() {
                    report(out, ctx, i, LockRule::SendUnderLock, format!(
                        "channel send `{}…)` while holding {}",
                        t.trim_start_matches('.'),
                        held_names(&live)
                    ));
                }
            }
        }

        // Resolvable calls: fold the callee's summary into this site.
        for (name, recv) in call_sites(eff) {
            if recv.as_deref().is_some_and(|r| {
                live.iter().any(|g| g.name.as_deref() == Some(r))
            }) {
                continue; // container op on a guard's payload
            }
            let Some(callee) = resolve(def.file, &name) else { continue };
            if callee == self_idx {
                continue;
            }
            out.direct.calls.insert(callee);
            if let Some(fx) = fx {
                let s = &fx[callee];
                if !live.is_empty() {
                    for c in &s.classes {
                        for h in &held_before {
                            if h != c {
                                out.edges.push((h.clone(), c.clone(), i));
                            }
                        }
                    }
                    if s.blocking {
                        report(out, ctx, i, LockRule::BlockingUnderLock, format!(
                            "call to `{name}` (transitively blocking) while holding {}",
                            held_names(&live)
                        ));
                    }
                    if s.sends {
                        report(out, ctx, i, LockRule::SendUnderLock, format!(
                            "call to `{name}` (transitively sends) while holding {}",
                            held_names(&live)
                        ));
                    }
                }
            }
        }

        // Statement-transient guards end with the statement.
        let end = eff.trim_end();
        if end.ends_with(';') || end.ends_with('{') || end.ends_with('}') || end.ends_with(',') {
            live.retain(|g| g.birth_depth.is_some());
        }
        expire(&mut live, next_depth);
    }
}

fn expire(live: &mut Vec<Guard>, next_depth: i32) {
    live.retain(|g| match g.birth_depth {
        Some((d, strict)) => {
            if strict {
                next_depth >= d
            } else {
                next_depth > d
            }
        }
        None => true,
    });
}

fn report(out: &mut WalkOut, ctx: &FileCtx, line: usize, rule: LockRule, detail: String) {
    if ctx.scanned.allowed_name(PRAGMA, line) {
        return;
    }
    out.findings.push(LockFinding { rule, file: ctx.path.clone(), line, detail });
}

fn held_names(live: &[Guard]) -> String {
    let names: Vec<String> = live
        .iter()
        .map(|g| match &g.class {
            Some(c) => format!("`{c}`"),
            None => "an unclassed lock".to_string(),
        })
        .collect();
    names.join(", ")
}

/// Net `(` minus `)` on a code-view line.
fn paren_balance(code: &str) -> i32 {
    let mut b = 0i32;
    for ch in code.chars() {
        match ch {
            '(' => b += 1,
            ')' => b -= 1,
            _ => {}
        }
    }
    b
}

/// The identifier ending `text` (skipping trailing whitespace), if any.
fn trailing_ident(text: &str) -> Option<String> {
    let t = text.trim_end();
    let end = t.len();
    let start = t
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_alphanumeric() || *c == '_')
        .last()
        .map(|(i, _)| i)?;
    let ident = &t[start..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(ident.to_string())
}

/// `let [mut] name = …` / `name = …` binding target, if the line is one.
fn binding_name(trimmed: &str) -> Option<String> {
    let rest = if let Some(r) = trimmed.strip_prefix("let ") {
        r.trim_start().strip_prefix("mut ").unwrap_or(r.trim_start())
    } else {
        trimmed
    };
    let name: String =
        rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    let after = rest[name.len()..].trim_start();
    if after.starts_with('=') && !after.starts_with("==") && !after.starts_with("=>") {
        Some(name)
    } else {
        None
    }
}

/// Whether a binding's right-hand side *ends* at the acquisition — the
/// named-guard form (`x.lock();`, `x.lock().unwrap();`,
/// `x.lock().expect("…");`). Chained forms are statement-transient.
fn rhs_ends_at_acquisition(line: &str) -> bool {
    let r = line.trim_end().trim_end_matches(';').trim_end();
    for t in ACQUIRE {
        if r.ends_with(t) {
            return true;
        }
        if let Some(base) = r.strip_suffix(".unwrap()") {
            if base.ends_with(t) {
                return true;
            }
        }
        if r.ends_with(')') {
            if let Some(pos) = r.rfind(".expect(") {
                if r[..pos].ends_with(t) && paren_balance(&r[pos..]) == 0 {
                    return true;
                }
            }
        }
    }
    false
}

/// `(callee name, receiver ident)` for each `name(` call on a line.
fn call_sites(eff: &str) -> Vec<(String, Option<String>)> {
    let bytes = eff.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'(' && i > 0 {
            let head = &eff[..i];
            if let Some(name) = trailing_ident(head) {
                let before = head.trim_end();
                let before = &before[..before.len() - name.len()];
                // Skip declarations (`fn name(`, at an ident boundary).
                let b = before.trim_end();
                let is_decl = b.ends_with("fn")
                    && (b.len() == 2 || {
                        let c = b.as_bytes()[b.len() - 3];
                        !c.is_ascii_alphanumeric() && c != b'_'
                    });
                if !is_decl {
                    let recv = before.strip_suffix('.').and_then(trailing_ident);
                    out.push((name, recv));
                }
            }
        }
        i += 1;
    }
    out
}

/// A path `from → … → to` in the class graph, if one exists.
fn path_between(
    adj: &HashMap<&str, Vec<&str>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut stack = vec![vec![from.to_string()]];
    let mut visited: HashSet<String> = HashSet::new();
    while let Some(path) = stack.pop() {
        let last = path.last().expect("non-empty path").clone();
        if last == to {
            return Some(path);
        }
        if !visited.insert(last.clone()) {
            continue;
        }
        if let Some(nexts) = adj.get(last.as_str()) {
            for n in nexts {
                if !visited.contains(*n) || *n == to {
                    let mut p = path.clone();
                    p.push((*n).to_string());
                    stack.push(p);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<LockFinding> {
        lock_order_sources(files)
    }

    fn rules(files: &[(&str, &str)]) -> Vec<LockRule> {
        run(files).into_iter().map(|f| f.rule).collect()
    }

    const TWO_CLASSES: &str = "\
struct S {
    // lock-class: test.a
    a: Mutex<u32>,
    // lock-class: test.b
    b: Mutex<u32>,
}
";

    #[test]
    fn inverted_acquisition_order_is_a_cycle() {
        let src = format!(
            "{TWO_CLASSES}
impl S {{
    fn ab(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }}
    fn ba(&self) {{
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }}
}}
"
        );
        let found = run(&[("crates/net/src/x.rs", &src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, LockRule::LockCycle);
        assert!(found[0].detail.contains("test.a") && found[0].detail.contains("test.b"));
        // Cycles are not pragma-suppressible: an allow-file changes nothing.
        let escaped = format!("// lint:allow-file(lock-order) — nice try\n{src}");
        assert_eq!(rules(&[("crates/net/src/x.rs", &escaped)]), vec![LockRule::LockCycle]);
    }

    #[test]
    fn consistent_order_and_interprocedural_edges_are_clean() {
        let src = format!(
            "{TWO_CLASSES}
impl S {{
    fn inner_b(&self) {{
        let gb = self.b.lock().unwrap();
        drop(gb);
    }}
    fn ab_direct(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }}
    fn ab_via_call(&self) {{
        let ga = self.a.lock().unwrap();
        self.inner_b();
        drop(ga);
    }}
}}
"
        );
        assert_eq!(run(&[("crates/net/src/x.rs", &src)]), vec![], "a→b both ways: no cycle");
    }

    #[test]
    fn cycle_found_through_a_call_chain() {
        let src = format!(
            "{TWO_CLASSES}
impl S {{
    fn takes_a(&self) {{
        let ga = self.a.lock().unwrap();
        drop(ga);
    }}
    fn ab(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }}
    fn b_then_call_a(&self) {{
        let gb = self.b.lock().unwrap();
        self.takes_a();
        drop(gb);
    }}
}}
"
        );
        assert_eq!(rules(&[("crates/net/src/x.rs", &src)]), vec![LockRule::LockCycle]);
    }

    #[test]
    fn blocking_under_live_guard_is_flagged_and_drop_clears_it() {
        let src = format!(
            "{TWO_CLASSES}
impl S {{
    fn bad(&self, s: &mut std::net::TcpStream) {{
        let ga = self.a.lock().unwrap();
        s.write_all(b\"x\").unwrap();
        drop(ga);
    }}
    fn good(&self, s: &mut std::net::TcpStream) {{
        let ga = self.a.lock().unwrap();
        drop(ga);
        s.write_all(b\"x\").unwrap();
    }}
}}
"
        );
        let found = run(&[("crates/net/src/x.rs", &src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, LockRule::BlockingUnderLock);
        assert!(found[0].detail.contains("test.a"), "{}", found[0].detail);
    }

    #[test]
    fn transitively_blocking_call_under_guard_is_flagged() {
        let src = format!(
            "{TWO_CLASSES}
impl S {{
    fn helper(&self, s: &mut std::net::TcpStream) {{
        s.write_all(b\"x\").unwrap();
    }}
    fn bad(&self, s: &mut std::net::TcpStream) {{
        let ga = self.a.lock().unwrap();
        self.helper(s);
        drop(ga);
    }}
}}
"
        );
        let found = run(&[("crates/net/src/x.rs", &src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, LockRule::BlockingUnderLock);
        assert!(found[0].detail.contains("helper"), "{}", found[0].detail);
    }

    #[test]
    fn send_under_guard_is_flagged() {
        let src = format!(
            "{TWO_CLASSES}
impl S {{
    fn bad(&self, tx: &Sender) {{
        let ga = self.a.lock().unwrap();
        let _ = tx.try_deliver(1);
        drop(ga);
    }}
}}
"
        );
        assert_eq!(rules(&[("crates/net/src/x.rs", &src)]), vec![LockRule::SendUnderLock]);
    }

    #[test]
    fn condvar_wait_with_sole_guard_ok_extra_guard_flagged() {
        let src = "\
struct W {
    // lock-class: test.q
    q: Mutex<Vec<u32>>,
    // lock-class: test.q
    cv: Condvar,
    // lock-class: test.other
    other: Mutex<u32>,
}
impl W {
    fn wait_ok(&self) {
        let mut g = self.q.lock().unwrap();
        while g.is_empty() {
            g = self.cv.wait(g).unwrap();
        }
    }
    fn wait_bad(&self) {
        let go = self.other.lock().unwrap();
        let g = self.q.lock().unwrap();
        let _g = self.cv.wait(g).unwrap();
        drop(go);
    }
}
";
        let found = run(&[("crates/net/src/x.rs", src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, LockRule::BlockingUnderLock);
        assert!(found[0].detail.contains("condvar wait"), "{}", found[0].detail);
    }

    #[test]
    fn if_let_head_guard_spans_the_block() {
        // The register/deregister bug shape: pre-2024 temporary lifetimes
        // keep the write-guard live for the whole `if let` block.
        let bad = "\
struct R {
    // lock-class: test.eps
    eps: RwLock<u32>,
}
impl R {
    fn swap(&self, s: &mut std::net::TcpStream) {
        if let Some(_old) = self.eps.write().insert(1) {
            s.write_all(b\"poke\").unwrap();
        }
    }
}
";
        assert_eq!(
            rules(&[("crates/net/src/x.rs", bad)]),
            vec![LockRule::BlockingUnderLock]
        );
        // The fixed shape: bind first, so the temporary ends at the `;`.
        let good = "\
struct R {
    // lock-class: test.eps
    eps: RwLock<u32>,
}
impl R {
    fn swap(&self, s: &mut std::net::TcpStream) {
        let replaced = self.eps.write().insert(1);
        if let Some(_old) = replaced {
            s.write_all(b\"poke\").unwrap();
        }
    }
}
";
        assert_eq!(run(&[("crates/net/src/x.rs", good)]), vec![]);
    }

    #[test]
    fn let_else_runs_its_else_arm_guard_free() {
        let src = "\
struct R {
    // lock-class: test.m
    m: Mutex<Vec<u32>>,
}
impl R {
    fn take(&self, s: &mut std::net::TcpStream) {
        let Some(v) = self.m.lock().unwrap().pop() else {
            s.write_all(b\"empty\").unwrap();
            return;
        };
        s.write_all(&[v as u8]).unwrap();
    }
}
";
        assert_eq!(run(&[("crates/net/src/x.rs", src)]), vec![]);
    }

    #[test]
    fn chained_transient_guard_covers_its_own_statement() {
        let src = "\
struct R {
    // lock-class: test.out
    out: Mutex<u32>,
}
impl R {
    fn flush_under_lock(&self, s: &mut std::net::TcpStream) {
        self.out.lock().unwrap();
        let _x = 1;
    }
    fn same_stmt(&self) {
        self.out.lock().expect(\"out lock\").flush().unwrap();
    }
}
";
        let found = run(&[("crates/net/src/x.rs", src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, LockRule::BlockingUnderLock);
        assert!(found[0].detail.contains("flush"), "{}", found[0].detail);
    }

    #[test]
    fn spawn_closure_bodies_run_on_their_own_thread() {
        let src = "\
struct R {
    // lock-class: test.m
    m: Mutex<u32>,
}
impl R {
    fn helper(&self, s: &mut std::net::TcpStream) {
        s.write_all(b\"x\").unwrap();
    }
    fn ok(&self, s: &mut std::net::TcpStream) {
        let g = self.m.lock().unwrap();
        std::thread::Builder::new()
            .name(\"w\".into())
            .spawn(move || {
                helper_free(s);
            })
            .unwrap();
        drop(g);
    }
}
fn helper_free(s: &mut std::net::TcpStream) {
    s.write_all(b\"x\").unwrap();
}
";
        assert_eq!(run(&[("crates/net/src/x.rs", src)]), vec![]);
    }

    #[test]
    fn dropped_guard_revives_on_reuse() {
        // The enqueue idiom: branch-local drop + send, then the fall-through
        // path keeps using the guard.
        let src = "\
struct R {
    // lock-class: test.q
    q: Mutex<Vec<u32>>,
}
impl R {
    fn enqueue(&self, tx: &Sender, v: u32) {
        let mut st = self.q.lock().unwrap();
        if st.len() > 4 {
            drop(st);
            let _ = tx.try_deliver(v);
            return;
        }
        st.push(v);
        drop(st);
        let _ = tx.try_deliver(v);
    }
}
";
        assert_eq!(run(&[("crates/net/src/x.rs", src)]), vec![]);
    }

    #[test]
    fn unclassed_field_flagged_ref_params_exempt() {
        let src = "\
struct R {
    naked: Mutex<u32>,
}
fn takes(m: &Mutex<u32>) -> u32 {
    let g = m.lock().unwrap();
    *g
}
";
        let found = run(&[("crates/net/src/x.rs", src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, LockRule::UnclassedLockField);
        assert!(found[0].detail.contains("naked"));
    }

    #[test]
    fn pragma_with_reason_suppresses_non_cycle_findings() {
        let src = "\
struct R {
    // lock-class: test.out
    out: Mutex<u32>,
}
impl R {
    fn flush(&self) {
        // lint:allow(lock-order) — the sink lock is the I/O serialization point
        self.out.lock().expect(\"out lock\").flush().unwrap();
    }
}
";
        assert_eq!(run(&[("crates/net/src/x.rs", src)]), vec![]);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "\
struct R {
    // lock-class: test.m
    m: Mutex<u32>,
}
#[cfg(test)]
mod tests {
    fn poke(r: &super::R, s: &mut std::net::TcpStream) {
        let g = r.m.lock().unwrap();
        s.write_all(b\"x\").unwrap();
        drop(g);
    }
}
";
        assert_eq!(run(&[("crates/net/src/x.rs", src)]), vec![]);
    }

    #[test]
    fn repo_runtime_is_lock_order_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lock_order_repo(&root).expect("walk repo");
        assert!(
            findings.is_empty(),
            "lock-order pass must stay clean:\n{}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }

    /// Meta negative-control: the clean result above must come from the
    /// pragmas doing their job, not from the pass being blind to the real
    /// sources. Stripping the `lint:allow(lock-order)` lines from the
    /// JSONL sink must surface its blocking-under-lock sites.
    #[test]
    fn repo_clean_depends_on_the_jsonl_pragmas() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let src = std::fs::read_to_string(root.join("crates/obs/src/jsonl.rs"))
            .expect("read jsonl.rs");
        let stripped: String = src
            .lines()
            .filter(|l| !l.contains("lint:allow(lock-order)"))
            .map(|l| format!("{l}\n"))
            .collect();
        let findings = run(&[("crates/obs/src/jsonl.rs", stripped.as_str())]);
        assert!(
            findings.iter().any(|f| f.rule == LockRule::BlockingUnderLock
                && f.detail.contains("obs.jsonl.out")),
            "expected blocking-under-lock findings once pragmas are gone, got:\n{}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
        assert!(findings.iter().all(|f| f.rule == LockRule::BlockingUnderLock));
    }

    /// Meta negative-control: the analyzer really extracts the sanctioned
    /// `net.tcp.links → net.link.state` edge from the live transport — a
    /// synthetic file taking the two classes in the opposite order must
    /// close a cycle against it.
    #[test]
    fn transport_edge_is_live_in_the_graph() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let transport = std::fs::read_to_string(root.join("crates/net/src/transport.rs"))
            .expect("read transport.rs");
        let reversed = "
use std::sync::{Mutex, RwLock};
struct Backwards {
    // lock-class: net.link.state
    state: Mutex<u32>,
    // lock-class: net.tcp.links
    links: RwLock<u32>,
}
impl Backwards {
    fn state_then_links(&self) {
        let gs = self.state.lock().unwrap();
        let gl = self.links.write().unwrap();
        drop(gl);
        drop(gs);
    }
}
";
        let findings = run(&[
            ("crates/net/src/transport.rs", transport.as_str()),
            ("crates/net/src/backwards.rs", reversed),
        ]);
        assert!(
            findings.iter().any(|f| f.rule == LockRule::LockCycle
                && f.detail.contains("net.tcp.links")
                && f.detail.contains("net.link.state")),
            "expected a links/state cycle against the real transport, got:\n{}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
