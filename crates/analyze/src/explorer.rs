//! Stateless model checking of the selection protocol over the simulator.
//!
//! The fault-matrix tests sample schedules; this module *enumerates* them.
//! A [`Scenario`] pins a bounded cluster (≤ 5 nodes, 1–2 queries, optional
//! duplicate / drop / timeout-race / crash-restart choice points) and the
//! [`Explorer`]
//! drives a fresh [`SimCluster`] through every inequivalent ordering of its
//! message deliveries, running the [`InvariantChecker`] after each step and
//! at quiescence of every schedule.
//!
//! ## How exploration works
//!
//! The simulator's `dispatch` advances virtual time with `now = max(now,
//! event.at)`, so dispatching queued events in *any* order is semantically
//! valid — an out-of-order dispatch just models an adversarially slow
//! network for the bypassed messages. A schedule is therefore a list of
//! [`Choice`]s: at each state where more than one delivery (or more than
//! one action on a delivery) is possible, pick one. The explorer is
//! *stateless* in the model-checking sense (CMC / MODIST / dBug lineage):
//! it never snapshots the cluster, it re-executes the scenario from scratch
//! for every prefix, which keeps it honest about determinism — any
//! re-execution divergence would surface as a missing [`EventKey`].
//!
//! Three reductions keep the schedule tree tractable:
//!
//! * **Sleep sets** (dynamic partial-order reduction): two queued events
//!   commute unless they target the same node ([`EventKey::target`]), so
//!   after exploring `a` before `b` for independent `a`, `b`, the `b`-first
//!   subtree skips re-exploring `a` at the same depth.
//! * **State-hash pruning**: [`SimCluster::state_hash`] digests everything
//!   that determines future behaviour *and* future invariant verdicts; a
//!   revisited (state, sleep-set) pair is cut off.
//! * **Timeout deferral**: in strict scenarios, `T(q)` poll events stay
//!   uninteresting while deliveries remain queued — the partial-synchrony
//!   assumption under which the paper's §6 exactness claims are stated.
//!   [`Scenario::race_timeouts`] lifts this and adds timeout polls to the
//!   choice set (with relaxed invariants: an early timeout legitimately
//!   abandons a live subtree).
//!
//! On a violation the explorer delta-debugs the failing choice list to a
//! locally minimal one ([`Violation::minimized`]) and [`replay`] re-executes
//! any recorded trace deterministically — the reproduction path a failing
//! test ships with.

use std::collections::BTreeSet;

use attrspace::{Query, Space};
use autosel_core::fasthash::{FastSet, Fnv64};
use autosel_core::QueryId;
use epigossip::NodeId;
use overlay_sim::{
    EventKey, FaultPlan, InvariantChecker, InvariantViolation, QueuedEvent, SimCluster, SimConfig,
};

/// What to do with the chosen event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Dispatch it now (ahead of anything else queued).
    Dispatch,
    /// Enqueue a second copy, then dispatch the original — the message
    /// arrives twice. Bounded by [`Scenario::allow_duplicates`].
    Duplicate,
    /// Discard it — targeted message loss. Bounded by
    /// [`Scenario::allow_drops`].
    Drop,
}

/// One resolved choice point: which queued event, and what was done to it.
/// Keyed by the schedule-independent [`EventKey`], so a recorded trace
/// replays against a fresh execution of the same scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// The chosen event's stable identity.
    pub key: EventKey,
    /// What was done with it.
    pub action: Action,
}

impl std::fmt::Display for Choice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verb = match self.action {
            Action::Dispatch => "dispatch",
            Action::Duplicate => "duplicate",
            Action::Drop => "drop",
        };
        write!(f, "{verb} {:?}", self.key)
    }
}

/// A bounded, fully deterministic protocol situation for the explorer: node
/// placements, queries, and which adversarial choice points (duplication,
/// loss, timeout races, an injected bug) the schedule tree may use.
///
/// Scenarios run on [`SimConfig::fast_static`] — no gossip, constant 1 ms
/// latency, no fault plan — so a run consumes *no* randomness after setup,
/// which is what makes re-execution exact and state-hash pruning sound.
#[derive(Debug, Clone)]
pub struct Scenario {
    space: Space,
    points: Vec<Vec<u64>>,
    queries: Vec<(NodeId, Query, Option<u32>)>,
    duplicates: usize,
    drops: usize,
    timeout_races: bool,
    churn: Vec<(NodeId, u64, u64)>,
    buggy: Vec<NodeId>,
}

/// The most nodes a scenario may hold: exhaustive exploration is for
/// protocol kernels, not populations.
pub const MAX_NODES: usize = 5;

impl Scenario {
    /// An empty scenario over `space`.
    pub fn new(space: Space) -> Self {
        Scenario {
            space,
            points: Vec::new(),
            queries: Vec::new(),
            duplicates: 0,
            drops: 0,
            timeout_races: false,
            churn: Vec::new(),
            buggy: Vec::new(),
        }
    }

    /// Adds a node at attribute values `vals`; returns its id (assigned
    /// 0, 1, … in call order).
    ///
    /// # Panics
    ///
    /// Panics past [`MAX_NODES`] or if `vals` lies outside the space.
    pub fn node(&mut self, vals: &[u64]) -> NodeId {
        assert!(self.points.len() < MAX_NODES, "scenarios are bounded to {MAX_NODES} nodes");
        self.space.point(vals).expect("scenario point inside the space");
        self.points.push(vals.to_vec());
        (self.points.len() - 1) as NodeId
    }

    /// Issues `query` from `origin` at time zero (σ-bounded if given).
    ///
    /// # Panics
    ///
    /// Panics on a third query (bounded scenarios carry 1–2).
    pub fn query(&mut self, origin: NodeId, query: Query, sigma: Option<u32>) {
        assert!(self.queries.len() < 2, "scenarios are bounded to 2 queries");
        self.queries.push((origin, query, sigma));
    }

    /// Lets schedules deliver up to `n` messages twice. Weakens the checker
    /// from strict to relaxed + exact-reporting (duplicates legitimately
    /// break the *zero duplicate receipts* claim, but attempt-tagged
    /// replies keep result accounting exactly-once).
    pub fn allow_duplicates(&mut self, n: usize) {
        self.duplicates = n;
    }

    /// Lets schedules silently discard up to `n` messages. Weakens the
    /// checker to plain relaxed (losses legitimately lose results).
    pub fn allow_drops(&mut self, n: usize) {
        self.drops = n;
    }

    /// Adds `T(q)` timeout polls to the choice set, letting them race ahead
    /// of queued deliveries. Weakens the checker to plain relaxed (an early
    /// timeout abandons a live subtree by design).
    pub fn race_timeouts(&mut self) {
        self.timeout_races = true;
    }

    /// Schedules `node` to crash at `crash_at_ms` and restart at
    /// `restart_at_ms`, and — the point — makes both fault events *choice
    /// points*: the explorer reorders them freely against queued
    /// deliveries, covering crash-just-before-receive, crash-mid-subtree,
    /// restart-overtaking-crash (a legitimate no-op: the restart of an
    /// alive node does nothing), and every other interleaving. Weakens the
    /// checker to plain relaxed — a crash legitimately loses pending
    /// protocol state, and a restarted node comes back with an empty dedup
    /// cache, so duplicate receipts become possible by design.
    ///
    /// # Panics
    ///
    /// Panics if `restart_at_ms < crash_at_ms` (the *scheduled* order is
    /// crash-then-restart; the explorer's reorderings come from dispatch
    /// order, not from nonsensical timestamps).
    pub fn crash_restart(&mut self, node: NodeId, crash_at_ms: u64, restart_at_ms: u64) {
        assert!(
            restart_at_ms >= crash_at_ms,
            "restart must not be scheduled before its crash"
        );
        self.churn.push((node, crash_at_ms, restart_at_ms));
    }

    /// Re-injects the historical dedup-reply bug (pre-reply-cache: *every*
    /// duplicate QUERY is answered with an empty REPLY, even mid-flight)
    /// into `node` — the mutation the smoke test proves the explorer
    /// catches. See `SelectionNode::inject_empty_dedup_reply_bug`.
    pub fn inject_empty_dedup_reply_bug(&mut self, node: NodeId) {
        self.buggy.push(node);
    }

    /// The invariant checker this scenario has earned: strict when no
    /// adversarial choice points are enabled, relaxed + exact-reporting
    /// when only duplication is, plain relaxed once losses, timeout
    /// races, or churn are possible.
    pub fn checker(&self) -> InvariantChecker {
        if self.drops > 0 || self.timeout_races || !self.churn.is_empty() {
            InvariantChecker::relaxed()
        } else if self.duplicates > 0 {
            InvariantChecker::relaxed().expect_exact_reporting()
        } else {
            InvariantChecker::strict()
        }
    }

    /// Builds the cluster fresh: oracle-wired nodes, bugs injected, queries
    /// issued at t = 0, nothing dispatched yet. Deterministic — every call
    /// yields an identical cluster (seed fixed, setup draws are replayed).
    pub fn build(&self) -> (SimCluster, Vec<QueryId>) {
        assert!(!self.queries.is_empty(), "scenario has no query");
        let mut sim = SimCluster::new(self.space.clone(), SimConfig::fast_static(), 0);
        for vals in &self.points {
            sim.add_node(self.space.point(vals).expect("validated in node()"));
        }
        sim.wire_oracle();
        for &id in &self.buggy {
            sim.selection_mut(id)
                .expect("buggy node exists")
                .inject_empty_dedup_reply_bug();
        }
        if !self.churn.is_empty() {
            let mut plan = FaultPlan::new();
            for &(node, crash_at, restart_at) in &self.churn {
                plan = plan.crash(crash_at, node).restart(restart_at, node);
            }
            sim.set_fault_plan(plan);
        }
        let qids = self
            .queries
            .iter()
            .map(|(origin, q, sigma)| sim.issue_query(*origin, q.clone(), *sigma))
            .collect();
        (sim, qids)
    }
}

/// Re-executes `scenario` step by step under explorer control: applies
/// recorded choices, auto-dispatches forced (non-branching) events, and
/// runs the scenario's invariant checker after every dispatch.
struct Executor<'a> {
    scenario: &'a Scenario,
    sim: SimCluster,
    checker: InvariantChecker,
    dups_used: usize,
    drops_used: usize,
    steps: u64,
}

impl<'a> Executor<'a> {
    fn new(scenario: &'a Scenario) -> Self {
        let (sim, _) = scenario.build();
        Executor {
            scenario,
            sim,
            checker: scenario.checker(),
            dups_used: 0,
            drops_used: 0,
            steps: 0,
        }
    }

    /// The *interesting* queued events — those the explorer may reorder —
    /// deduplicated by key (lowest `(at, seq)` copy kept), in deterministic
    /// `(at, seq)` order. Deliveries always; timeout polls only when the
    /// scenario races them; crash/restart fault events only when the
    /// scenario schedules churn.
    fn interesting(&self) -> Vec<QueuedEvent> {
        let mut seen: BTreeSet<EventKey> = BTreeSet::new();
        self.sim
            .queued_events()
            .into_iter()
            .filter(|e| {
                let relevant = e.key.is_deliver()
                    || (self.scenario.timeout_races
                        && matches!(e.key, EventKey::PollTimeouts { .. }))
                    || (!self.scenario.churn.is_empty()
                        && matches!(e.key, EventKey::NodeFault { .. }));
                relevant && seen.insert(e.key)
            })
            .collect()
    }

    /// The actions available on `key` right now (budget-gated).
    fn actions(&self, key: EventKey) -> Vec<Action> {
        let mut out = vec![Action::Dispatch];
        if key.is_deliver() {
            if self.dups_used < self.scenario.duplicates {
                out.push(Action::Duplicate);
            }
            if self.drops_used < self.scenario.drops {
                out.push(Action::Drop);
            }
        }
        out
    }

    /// Whether the current state is a genuine branch point (≥ 2 choices).
    fn is_branching(&self) -> bool {
        let interesting = self.interesting();
        interesting.len() >= 2
            || interesting
                .first()
                .is_some_and(|e| self.actions(e.key).len() >= 2)
    }

    fn dispatch(&mut self, seq: u64) -> Result<(), InvariantViolation> {
        assert!(self.sim.dispatch_queued(seq), "stale queue handle");
        self.steps += 1;
        self.checker.check_step(&self.sim)
    }

    /// Dispatches one forced event: the earliest interesting one if any
    /// (deliveries before deferred timeout polls), else the earliest queued
    /// event. Returns `false` when the queue is empty.
    fn forced_step(&mut self) -> Result<bool, InvariantViolation> {
        let seq = match self.interesting().first() {
            Some(e) => e.seq,
            None => match self.sim.queued_events().first() {
                Some(e) => e.seq,
                None => return Ok(false),
            },
        };
        self.dispatch(seq)?;
        Ok(true)
    }

    /// Auto-dispatches forced events until the state branches or the queue
    /// drains. Returns whether the run quiesced.
    fn advance(&mut self) -> Result<bool, InvariantViolation> {
        loop {
            if self.is_branching() {
                return Ok(false);
            }
            if !self.forced_step()? {
                return Ok(true);
            }
        }
    }

    /// Applies one recorded choice. Returns `false` (and does nothing) if
    /// the keyed event is not currently queued or the action's budget is
    /// spent — replay-with-skip is what makes delta-debugged subsets
    /// executable.
    fn apply(&mut self, choice: &Choice) -> Result<bool, InvariantViolation> {
        let Some(ev) = self
            .sim
            .queued_events()
            .into_iter()
            .find(|e| e.key == choice.key)
        else {
            return Ok(false);
        };
        match choice.action {
            Action::Dispatch => self.dispatch(ev.seq)?,
            Action::Duplicate => {
                if self.dups_used >= self.scenario.duplicates {
                    return Ok(false);
                }
                self.dups_used += 1;
                self.sim.duplicate_queued(ev.seq).expect("event is queued");
                self.dispatch(ev.seq)?;
            }
            Action::Drop => {
                if self.drops_used >= self.scenario.drops {
                    return Ok(false);
                }
                self.drops_used += 1;
                assert!(self.sim.drop_queued(ev.seq), "event is queued");
            }
        }
        Ok(true)
    }

    fn check_quiescent(&mut self) -> Result<(), InvariantViolation> {
        self.checker.check_quiescent(&self.sim)
    }
}

/// A schedule that broke an invariant, with its reproduction traces.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The first invariant the schedule broke.
    pub violation: InvariantViolation,
    /// The full failing choice list, as explored.
    pub schedule: Vec<Choice>,
    /// The delta-debugged (1-minimal) choice list: [`replay`] of this trace
    /// reproduces the same violation kind.
    pub minimized: Vec<Choice>,
}

/// What an exploration did and found.
#[derive(Debug, Clone)]
pub struct Report {
    /// Complete schedules executed to quiescence (or to a violation).
    pub schedules: u64,
    /// Total event dispatches across all re-executions.
    pub steps: u64,
    /// Subtrees cut by state-hash pruning.
    pub pruned: u64,
    /// Enabled events skipped because a sleep set proved the interleaving
    /// already covered.
    pub sleep_skipped: u64,
    /// Whether the full schedule space was covered within budget (always
    /// `false` when a violation stopped the search early).
    pub exhausted: bool,
    /// The first violating schedule found, if any.
    pub violation: Option<Violation>,
}

impl Report {
    /// No violation and the space was exhausted: the scenario is verified
    /// (for its bounds).
    pub fn verified(&self) -> bool {
        self.exhausted && self.violation.is_none()
    }
}

/// Budgeted exhaustive explorer. The defaults comfortably cover every
/// in-repo scenario; exceeding any budget flips
/// [`Report::exhausted`] to `false` instead of running away.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Maximum complete schedules to execute.
    pub max_schedules: u64,
    /// Maximum total dispatches (across re-executions).
    pub max_steps: u64,
    /// Maximum recorded choices per schedule.
    pub max_depth: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer { max_schedules: 100_000, max_steps: 5_000_000, max_depth: 64 }
    }
}

impl Explorer {
    /// Systematically explores `scenario`'s schedule space.
    pub fn explore(&self, scenario: &Scenario) -> Report {
        let mut dfs = Dfs {
            scenario,
            budget: self,
            report: Report {
                schedules: 0,
                steps: 0,
                pruned: 0,
                sleep_skipped: 0,
                exhausted: true,
                violation: None,
            },
            seen: FastSet::default(),
        };
        dfs.explore(&mut Vec::new(), &BTreeSet::new());
        if dfs.report.violation.is_some() {
            dfs.report.exhausted = false;
        }
        dfs.report
    }
}

struct Dfs<'a> {
    scenario: &'a Scenario,
    budget: &'a Explorer,
    report: Report,
    /// (state hash, sleep set) pairs already expanded.
    seen: FastSet<u64>,
}

impl Dfs<'_> {
    /// Whether the search must stop before taking on the *pending* work the
    /// caller is about to start. A budget stop with work still pending
    /// means coverage is incomplete, so it clears [`Report::exhausted`];
    /// a violation stop leaves it to [`Explorer::explore`] to clear.
    fn must_stop(&mut self) -> bool {
        if self.report.violation.is_some() {
            return true;
        }
        if self.report.schedules >= self.budget.max_schedules
            || self.report.steps >= self.budget.max_steps
        {
            self.report.exhausted = false;
            return true;
        }
        false
    }

    fn found(&mut self, violation: InvariantViolation, schedule: Vec<Choice>) {
        let minimized = minimize(self.scenario, &schedule, &violation);
        self.report.violation = Some(Violation { violation, schedule, minimized });
    }

    fn explore(&mut self, prefix: &mut Vec<Choice>, sleep: &BTreeSet<EventKey>) {
        if self.must_stop() {
            return;
        }
        if prefix.len() >= self.budget.max_depth {
            self.report.exhausted = false;
            return;
        }
        // Stateless re-execution of the prefix from scratch.
        let mut exec = Executor::new(self.scenario);
        let outcome = (|| -> Result<bool, InvariantViolation> {
            for choice in prefix.iter() {
                let quiescent = exec.advance()?;
                assert!(!quiescent, "prefix choice past quiescence");
                let applied = exec.apply(choice)?;
                assert!(applied, "prefix replay diverged: {choice} not enabled");
            }
            exec.advance()
        })();
        self.report.steps += exec.steps;
        let quiescent = match outcome {
            Err(v) => {
                self.found(v, prefix.clone());
                return;
            }
            Ok(q) => q,
        };
        if quiescent {
            match exec.check_quiescent() {
                Err(v) => self.found(v, prefix.clone()),
                Ok(()) => self.report.schedules += 1,
            }
            return;
        }

        // Prune revisited (state, sleep) pairs. The sleep set is part of
        // the identity: the same state reached with a *smaller* sleep set
        // still has unexplored obligations.
        let mut h = Fnv64::new();
        h.word(exec.sim.state_hash());
        h.word(sleep.len() as u64);
        for key in sleep {
            use std::hash::{Hash, Hasher};
            let mut kh = autosel_core::fasthash::FastHasher::default();
            key.hash(&mut kh);
            h.word(kh.finish());
        }
        if !self.seen.insert(h.finish()) {
            self.report.pruned += 1;
            return;
        }

        let enabled = exec.interesting();
        let mut explored: Vec<EventKey> = Vec::new();
        for ev in &enabled {
            if sleep.contains(&ev.key) {
                self.report.sleep_skipped += 1;
                continue;
            }
            for action in exec.actions(ev.key) {
                // Gate each new child on the budget *before* starting it:
                // stopping here means a subtree goes unexplored, which
                // must_stop records as non-exhaustive coverage.
                if self.must_stop() {
                    return;
                }
                // Events targeting other nodes commute with this one: the
                // sibling orderings the sleep set carries down remain
                // covered. Same-target events are dependent — they leave
                // the child sleep set.
                let child_sleep: BTreeSet<EventKey> = sleep
                    .iter()
                    .chain(explored.iter())
                    .filter(|k| k.target() != ev.key.target())
                    .copied()
                    .collect();
                prefix.push(Choice { key: ev.key, action });
                self.explore(prefix, &child_sleep);
                prefix.pop();
                if self.report.violation.is_some() {
                    return;
                }
            }
            explored.push(ev.key);
        }
    }
}

/// Deterministically re-executes `trace` against a fresh build of
/// `scenario`: each choice is applied as soon as its keyed event exists
/// (forced events are auto-dispatched in default order until it does;
/// inapplicable choices are skipped), then the remainder drains in default
/// order. Returns the first invariant violation, or `None` for a clean run.
///
/// This is both the failing-test reproduction API and the oracle the
/// delta-debugging minimizer shrinks against.
pub fn replay(scenario: &Scenario, trace: &[Choice]) -> Option<InvariantViolation> {
    let mut exec = Executor::new(scenario);
    for choice in trace {
        // Surface the keyed event if forced progress can produce it.
        loop {
            let queued = exec.sim.queued_events().iter().any(|e| e.key == choice.key);
            if queued {
                break;
            }
            match exec.forced_step() {
                Err(v) => return Some(v),
                Ok(false) => break, // quiescent: choice is skipped
                Ok(true) => {}
            }
        }
        if let Err(v) = exec.apply(choice) {
            return Some(v);
        }
    }
    loop {
        match exec.forced_step() {
            Err(v) => return Some(v),
            Ok(false) => break,
            Ok(true) => {}
        }
    }
    exec.check_quiescent().err()
}

/// Same failure class: delta debugging shrinks against the violation
/// *kind*, not its exact payload (a subset schedule may, say, strand a
/// different count behind the same race).
fn same_kind(a: &InvariantViolation, b: &InvariantViolation) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
}

/// Classic ddmin over the choice list: repeatedly try dropping chunks
/// (halving granularity) while [`replay`] still reproduces the violation
/// kind, down to a 1-minimal trace.
fn minimize(scenario: &Scenario, failing: &[Choice], expect: &InvariantViolation) -> Vec<Choice> {
    let mut trace: Vec<Choice> = failing.to_vec();
    let mut n = 2usize;
    while trace.len() >= 2 {
        let chunk = trace.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < trace.len() {
            let end = (start + chunk).min(trace.len());
            let candidate: Vec<Choice> = trace
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < start || *i >= end)
                .map(|(_, c)| *c)
                .collect();
            if replay(scenario, &candidate).is_some_and(|v| same_kind(&v, expect)) {
                trace = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= trace.len() {
                break;
            }
            n = (n * 2).min(trace.len());
        }
    }
    trace
}
