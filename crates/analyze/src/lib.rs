//! Static and dynamic analysis backstops for the resource-selection
//! overlay: a stateless DPOR model checker that drives the simulator
//! through every interesting message interleaving of a bounded scenario
//! ([`explorer`]), a zero-dependency repo linter enforcing the
//! codebase's own invariants ([`lint`]), and a static lock-order pass
//! auditing the threaded runtime's acquisition graph ([`lockgraph`]).
//!
//! The two halves share a philosophy: the repo's correctness story should
//! not depend on anyone *remembering* the rules. The explorer turns
//! "the protocol is correct under reordering, duplication and loss" from
//! a review argument into an exhaustively checked property (for bounded
//! scenarios); the linter turns "hot paths stay deterministic, virtual
//! time stays virtual" from review lore into CI failures.
//!
//! Like the rest of the workspace, this crate has **zero external
//! dependencies** — the scanner is hand-rolled and the checker reuses the
//! simulator's own invariant machinery.
//!
//! See `docs/ANALYSIS.md` for scope, guarantees and limits.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod explorer;
pub mod lint;
pub mod lockgraph;

pub use explorer::{replay, Action, Choice, Explorer, Report, Scenario, Violation};
pub use lint::{lint_repo, lint_source, Finding, Rule};
pub use lockgraph::{lock_order_repo, lock_order_sources, LockFinding, LockRule};
