//! Exhaustive small-instance exploration, one test per scenario family of
//! the `synthtrace::scenario` DSL. The soak harness runs each family at
//! population scale with sampled schedules; these tests shrink each family
//! to its protocol kernel (≤ 4 nodes) and enumerate *every* inequivalent
//! schedule, so the family's invariant-strictness contract is verified
//! rather than spot-checked:
//!
//! | family   | kernel choice points            | checker          |
//! |----------|---------------------------------|------------------|
//! | churn    | crash/restart vs. deliveries    | relaxed          |
//! | flash    | concurrent demand + duplication | relaxed + exact  |
//! | diurnal  | timeout polls racing deliveries | relaxed          |
//! | outage   | message loss + crash/restart    | relaxed          |
//! | composed | all of the above                | relaxed          |
//!
//! Plus the mutation-style negative control: re-inject a historical bug
//! into the flash kernel and prove a violated invariant is *caught*,
//! delta-debugged to a minimal schedule, and that the minimized schedule
//! replays to the same violation kind.

use attrspace::{Query, Space};
use autosel_analyze::{replay, Explorer, Scenario};

/// Four nodes in the 2-d demo space: origin low, three matches in the
/// `a0 >= 60` half so the query fans out mid-tree and replies race.
fn four_node_kernel() -> Scenario {
    let space = Space::uniform(2, 80, 3).expect("valid 2-d space geometry");
    let mut sc = Scenario::new(space.clone());
    let origin = sc.node(&[5, 5]);
    sc.node(&[70, 5]);
    sc.node(&[70, 40]);
    sc.node(&[70, 70]);
    let q = Query::builder(&space).min("a0", 60).build().expect("well-formed query");
    sc.query(origin, q, None);
    sc
}

#[test]
fn churn_family_kernel_is_exhaustively_verified() {
    let mut sc = four_node_kernel();
    // Node 1 relays the query down-tree; crash it mid-arc and bring it
    // back. The explorer reorders both fault events against every queued
    // delivery (crash-before-receive, crash-mid-subtree, restart-first…).
    sc.crash_restart(1, 5, 20);
    let report = Explorer::default().explore(&sc);
    assert!(
        report.verified(),
        "churn kernel must verify under relaxed invariants: exhausted={}, violation={:?}",
        report.exhausted,
        report.violation
    );
    assert!(
        report.schedules >= 2,
        "churn choice points must branch the schedule tree, got {}",
        report.schedules
    );
}

#[test]
fn flash_family_kernel_is_exhaustively_verified() {
    // Flash crowd at kernel scale: a burst of concurrent demand (the DSL's
    // join ramp becomes a second racing query) plus a duplicated message —
    // the family's RelaxedExact contract: duplicates may arrive, but
    // result accounting stays exactly-once.
    let space = Space::uniform(2, 80, 3).expect("valid 2-d space geometry");
    let mut sc = Scenario::new(space.clone());
    let a = sc.node(&[5, 5]);
    sc.node(&[70, 5]);
    let c = sc.node(&[70, 70]);
    let q1 = Query::builder(&space).min("a0", 60).build().expect("well-formed query");
    let q2 = Query::builder(&space).min("a1", 60).build().expect("well-formed query");
    sc.query(a, q1, None);
    sc.query(c, q2, None);
    sc.allow_duplicates(1);
    let report = Explorer::default().explore(&sc);
    assert!(
        report.verified(),
        "flash kernel must keep accounting exact under duplication: exhausted={}, violation={:?}",
        report.exhausted,
        report.violation
    );
    assert!(report.schedules >= 2, "concurrent demand must branch");
}

#[test]
fn diurnal_family_kernel_is_exhaustively_verified() {
    // Diurnal modulation at kernel scale: the load trough is where `T(q)`
    // timers catch up with in-flight work, so the family's kernel races
    // timeout polls against deliveries.
    let mut sc = four_node_kernel();
    sc.race_timeouts();
    let report = Explorer::default().explore(&sc);
    assert!(
        report.verified(),
        "diurnal kernel must survive timeout races: exhausted={}, violation={:?}",
        report.exhausted,
        report.violation
    );
}

#[test]
fn outage_family_kernel_is_exhaustively_verified() {
    // Region outage at kernel scale: correlated failure = a lost message
    // plus a node down for a window, then healed.
    let mut sc = four_node_kernel();
    sc.allow_drops(1);
    sc.crash_restart(3, 5, 20);
    let report = Explorer::default().explore(&sc);
    assert!(
        report.verified(),
        "outage kernel must degrade results, not correctness: exhausted={}, violation={:?}",
        report.exhausted,
        report.violation
    );
}

#[test]
fn composed_family_kernel_is_exhaustively_verified() {
    // Everything at once, still exhaustive: churn, duplication, loss, and
    // timeout races over the four-node kernel.
    let mut sc = four_node_kernel();
    sc.crash_restart(1, 5, 20);
    sc.allow_duplicates(1);
    sc.allow_drops(1);
    sc.race_timeouts();
    let report = Explorer::default().explore(&sc);
    assert!(
        report.verified(),
        "composed kernel must verify: exhausted={}, violation={:?}",
        report.exhausted,
        report.violation
    );
    assert!(
        report.schedules >= 4,
        "the composed kernel should branch more than any single family, got {}",
        report.schedules
    );
}

/// The mutation-style negative control for the family suite: re-inject the
/// historical dedup-reply bug (every duplicate QUERY answered with an
/// immediate empty REPLY, even mid-flight) into the flash kernel, whose
/// relaxed + exact-reporting checker is exactly the contract the bug
/// breaks. Proves the harness *can* fail: the explorer finds a violating
/// schedule, delta-debugs it, and the minimized trace replays to the same
/// violation kind.
#[test]
fn mutated_flash_kernel_is_caught_and_minimized() {
    let space = Space::uniform(2, 80, 3).expect("valid 2-d space geometry");
    let mut sc = Scenario::new(space.clone());
    let origin = sc.node(&[5, 5]);
    sc.node(&[70, 5]);
    sc.node(&[70, 70]);
    let q = Query::builder(&space).min("a0", 60).build().expect("well-formed query");
    sc.query(origin, q, None);
    sc.allow_duplicates(1);
    sc.inject_empty_dedup_reply_bug(1);
    let report = Explorer::default().explore(&sc);
    let violation = report.violation.expect("the re-injected bug must be found");
    assert!(
        violation.minimized.len() <= violation.schedule.len(),
        "minimization must not grow the trace"
    );
    assert!(!violation.minimized.is_empty(), "the bug needs at least the duplication choice");
    let replayed = replay(&sc, &violation.minimized)
        .expect("the minimized trace must still reproduce a violation");
    assert_eq!(
        std::mem::discriminant(&replayed),
        std::mem::discriminant(&violation.violation),
        "replay must reproduce the same violation kind: got {replayed:?}, want {:?}",
        violation.violation
    );
}
