//! End-to-end explorer tests: exhaustive verification of bounded clean
//! scenarios, and the mutation smoke test — re-inject the historical
//! dedup-reply bug and prove the explorer finds it, minimizes it, and the
//! minimized trace replays to the same violation.

use attrspace::{Query, Space};
use autosel_analyze::{replay, Explorer, Scenario};
use overlay_sim::InvariantViolation;

/// Three nodes in the 2-d demo space: the origin in the low corner and two
/// matches in the `a0 >= 60` half, so the query fans out and replies race.
fn three_node_scenario() -> Scenario {
    let space = Space::uniform(2, 80, 3).expect("valid 2-d space geometry");
    let mut sc = Scenario::new(space.clone());
    let origin = sc.node(&[5, 5]);
    sc.node(&[70, 5]);
    sc.node(&[70, 70]);
    let q = Query::builder(&space).min("a0", 60).build().expect("well-formed query");
    sc.query(origin, q, None);
    sc
}

/// A two-query scenario: the protocol keeps exactly one message in flight
/// per query (iterative deepening), so genuine schedule branching needs a
/// second concurrent query, duplication, or timeout races.
fn two_query_scenario() -> Scenario {
    let space = Space::uniform(2, 80, 3).expect("valid 2-d space geometry");
    let mut sc = Scenario::new(space.clone());
    let a = sc.node(&[5, 5]);
    sc.node(&[70, 5]);
    let c = sc.node(&[70, 70]);
    let q1 = Query::builder(&space).min("a0", 60).build().expect("well-formed query");
    let q2 = Query::builder(&space).min("a1", 60).build().expect("well-formed query");
    sc.query(a, q1, None);
    sc.query(c, q2, None);
    sc
}

#[test]
fn strict_three_node_one_query_is_exhaustively_verified() {
    let report = Explorer::default().explore(&three_node_scenario());
    assert!(
        report.verified(),
        "strict scenario must verify: exhausted={}, violation={:?}",
        report.exhausted,
        report.violation
    );
    // A verified *finding*, not a shortcut: the protocol walks the overlay
    // with one in-flight message per query, so a lone query admits exactly
    // one delivery order.
    assert_eq!(report.schedules, 1, "single-query runs are sequential by design");
}

#[test]
fn dpor_reductions_do_real_work() {
    let report = Explorer::default().explore(&two_query_scenario());
    assert!(report.verified());
    assert!(report.schedules >= 2, "two concurrent queries must branch");
    assert!(
        report.pruned + report.sleep_skipped > 0,
        "a branching scenario should exercise at least one reduction \
         (pruned={}, sleep_skipped={})",
        report.pruned,
        report.sleep_skipped
    );
}

#[test]
fn duplicates_without_the_bug_stay_exactly_once() {
    let mut sc = three_node_scenario();
    sc.allow_duplicates(1);
    let report = Explorer::default().explore(&sc);
    assert!(
        report.verified(),
        "attempt-tagged replies must keep accounting exact under duplication: {:?}",
        report.violation
    );
}

#[test]
fn drops_are_survived_under_relaxed_invariants() {
    let mut sc = three_node_scenario();
    sc.allow_drops(1);
    let report = Explorer::default().explore(&sc);
    assert!(
        report.verified(),
        "message loss must degrade results, not correctness: {:?}",
        report.violation
    );
}

#[test]
fn timeout_races_are_survived_under_relaxed_invariants() {
    let mut sc = three_node_scenario();
    sc.race_timeouts();
    let report = Explorer::default().explore(&sc);
    assert!(
        report.verified(),
        "an early timeout abandons a subtree but must not corrupt state: {:?}",
        report.violation
    );
}

#[test]
fn clean_replay_of_empty_trace_is_quiet() {
    assert_eq!(replay(&three_node_scenario(), &[]), None);
}

/// The mutation smoke test. PR 4 fixed a dedup bug where a node answered
/// every duplicate QUERY with an immediate empty REPLY, even while its own
/// subtree was still in flight — the upstream merged the empty reply as
/// fresh and closed the branch early, silently losing results. The
/// scenario re-injects that bug into the mid-tree node and asserts the
/// explorer (a) finds the violation, (b) delta-debugs the schedule, and
/// (c) ships a minimized trace that replays to the same violation kind.
#[test]
fn explorer_catches_reinjected_dedup_reply_bug() {
    let mut sc = three_node_scenario();
    sc.allow_duplicates(1);
    sc.inject_empty_dedup_reply_bug(1); // node 1 relays the query down-tree
    let report = Explorer::default().explore(&sc);

    let violation = report.violation.expect("explorer must find the re-injected bug");
    assert!(
        matches!(violation.violation, InvariantViolation::ReportedInexact { .. }),
        "the bug loses results, so exact-reporting must flag it, got {:?}",
        violation.violation
    );

    assert!(!violation.minimized.is_empty(), "a non-trivial schedule cannot minimize to nothing");
    assert!(
        violation.minimized.len() <= violation.schedule.len(),
        "minimization must not grow the trace"
    );

    let replayed = replay(&sc, &violation.minimized)
        .expect("minimized trace must still reproduce a violation");
    assert_eq!(
        std::mem::discriminant(&replayed),
        std::mem::discriminant(&violation.violation),
        "minimized trace must reproduce the same violation kind, got {replayed:?}"
    );

    // And the same scenario without the bug is clean: the detection is the
    // mutation's doing, not the harness's.
    let mut clean = three_node_scenario();
    clean.allow_duplicates(1);
    assert!(Explorer::default().explore(&clean).verified());
}

/// Exhaustiveness is honest: an absurdly small budget must report
/// `exhausted == false`, never a false "verified".
#[test]
fn budget_exhaustion_is_reported_not_hidden() {
    let explorer = Explorer { max_schedules: 1, max_steps: 10, max_depth: 64 };
    let report = explorer.explore(&two_query_scenario());
    assert!(!report.exhausted);
    assert!(!report.verified());
}

/// Two concurrent queries from different origins: the interleaving-richest
/// in-repo scenario, still exhaustively coverable within the default budget.
#[test]
fn two_queries_from_two_origins_verify() {
    let report = Explorer::default().explore(&two_query_scenario());
    assert!(report.verified(), "two-query scenario must verify: {:?}", report.violation);
    assert!(report.schedules >= 2);
}
