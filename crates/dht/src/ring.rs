use std::collections::HashMap;

/// Identifier of a DHT ring node (its position on the 64-bit key circle).
pub type RingNodeId = u64;

/// A Chord/Bamboo-style key ring with finger-table routing.
///
/// Every key `k` is owned by its *successor*: the first node clockwise at or
/// after `k` (wrapping). Lookups start at an arbitrary node and repeatedly
/// jump to the closest preceding finger, exactly like iterative Chord/Bamboo
/// routing; each visited node is charged one unit of load.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted node positions.
    nodes: Vec<RingNodeId>,
    /// Finger tables: for node index `i`, fingers `[i][j]` is the node index
    /// owning key `nodes[i] + 2^j`.
    fingers: Vec<Vec<usize>>,
    /// Messages served per node (routing hops + record serving).
    load: HashMap<RingNodeId, u64>,
}

impl Ring {
    /// Builds a ring over the given node ids (deduplicated, sorted).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(mut nodes: Vec<RingNodeId>) -> Self {
        assert!(!nodes.is_empty(), "ring needs at least one node");
        nodes.sort_unstable();
        nodes.dedup();
        let mut ring = Ring { fingers: Vec::new(), load: HashMap::new(), nodes };
        ring.rebuild_fingers();
        ring
    }

    fn rebuild_fingers(&mut self) {
        let n = self.nodes.len();
        self.fingers = (0..n)
            .map(|i| {
                (0..64)
                    .map(|j| {
                        let target = self.nodes[i].wrapping_add(1u64 << j);
                        self.successor_index(target)
                    })
                    .collect()
            })
            .collect();
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The sorted node ids.
    pub fn nodes(&self) -> &[RingNodeId] {
        &self.nodes
    }

    /// Index of the node owning `key` (its successor, wrapping).
    pub fn successor_index(&self, key: u64) -> usize {
        match self.nodes.binary_search(&key) {
            Ok(i) => i,
            Err(i) => {
                if i == self.nodes.len() {
                    0
                } else {
                    i
                }
            }
        }
    }

    /// The node owning `key`.
    pub fn successor(&self, key: u64) -> RingNodeId {
        self.nodes[self.successor_index(key)]
    }

    /// The node after `node` clockwise.
    pub fn next_of(&self, node: RingNodeId) -> RingNodeId {
        let i = self.nodes.binary_search(&node).expect("known node");
        self.nodes[(i + 1) % self.nodes.len()]
    }

    /// Routes from `start` to the owner of `key`, charging one load unit to
    /// every node on the path (including start and owner). Returns the owner
    /// and the hop count.
    pub fn route(&mut self, start: RingNodeId, key: u64) -> (RingNodeId, u32) {
        let mut cur = self.nodes.binary_search(&start).expect("known start node");
        let target = self.successor_index(key);
        let mut hops = 0u32;
        *self.load.entry(self.nodes[cur]).or_insert(0) += 1;
        while cur != target {
            // Greedy: largest finger that does not overshoot the target.
            let mut next = (cur + 1) % self.nodes.len(); // successor fallback
            let gap = Self::clockwise(self.nodes[cur], key);
            for j in (0..64).rev() {
                let f = self.fingers[cur][j];
                if f == cur {
                    continue;
                }
                let d = Self::clockwise(self.nodes[cur], self.nodes[f]);
                if d > 0 && d <= gap.max(1) && Self::clockwise(self.nodes[f], key) < gap {
                    next = f;
                    break;
                }
            }
            cur = next;
            hops += 1;
            *self.load.entry(self.nodes[cur]).or_insert(0) += 1;
            if hops as usize > self.nodes.len() {
                // Defensive: cannot happen with consistent fingers.
                break;
            }
        }
        (self.nodes[cur], hops)
    }

    /// Charges `units` of serving load to `node` (record storage lookups).
    pub fn charge(&mut self, node: RingNodeId, units: u64) {
        *self.load.entry(node).or_insert(0) += units;
    }

    /// Per-node load counters, including zero entries for idle nodes.
    pub fn load_per_node(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| self.load.get(n).copied().unwrap_or(0))
            .collect()
    }

    /// Clears all load counters.
    pub fn reset_load(&mut self) {
        self.load.clear();
    }

    fn clockwise(from: u64, to: u64) -> u64 {
        to.wrapping_sub(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Ring {
        Ring::new((0..32).map(|i| i * 1000 + 17).collect())
    }

    #[test]
    fn successor_wraps() {
        let r = ring();
        assert_eq!(r.successor(0), 17);
        assert_eq!(r.successor(17), 17);
        assert_eq!(r.successor(18), 1017);
        assert_eq!(r.successor(u64::MAX), 17, "wraps past the top");
    }

    #[test]
    fn next_of_cycles() {
        let r = ring();
        assert_eq!(r.next_of(17), 1017);
        assert_eq!(r.next_of(31_017), 17);
    }

    #[test]
    fn route_reaches_owner_in_log_hops() {
        let mut r = Ring::new((0u64..1024).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect());
        let nodes = r.nodes().to_vec();
        let mut max_hops = 0;
        for k in 0..200u64 {
            let key = k.wrapping_mul(0x1234_5678_9ABC_DEF1);
            let start = nodes[(k as usize * 7) % nodes.len()];
            let (owner, hops) = r.route(start, key);
            assert_eq!(owner, r.successor(key));
            max_hops = max_hops.max(hops);
        }
        assert!(max_hops <= 20, "O(log n) routing, got {max_hops}");
    }

    #[test]
    fn load_is_charged_along_paths() {
        let mut r = ring();
        r.route(17, 30_000);
        let total: u64 = r.load_per_node().iter().sum();
        assert!(total >= 2, "start and owner charged");
        r.reset_load();
        assert_eq!(r.load_per_node().iter().sum::<u64>(), 0);
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let mut r = Ring::new(vec![5]);
        let (owner, hops) = r.route(5, u64::MAX / 2);
        assert_eq!(owner, 5);
        assert_eq!(hops, 0);
    }
}
