use std::collections::HashMap;

use crate::{Ring, RingNodeId};

/// SWORD-style resource index on a DHT [`Ring`].
///
/// Every resource publishes one record per attribute at an order-preserving
/// key (`attribute id` in the high bits, scaled value below), so a
/// single-attribute range maps to a contiguous key arc. A multi-attribute
/// query routes to the start of the most selective attribute's arc and walks
/// successors, filtering each record against the remaining attributes —
/// SWORD's "iterated search ... until the requested number of nodes is found
/// ... or the range is exhausted" (§6.4).
///
/// All routing hops and record-serving messages are charged to [`Ring`]'s
/// per-node load counters; Fig. 9(b) plots exactly that distribution.
#[derive(Debug, Clone)]
pub struct SwordIndex {
    ring: Ring,
    /// Records per owner: `(key, resource index)`.
    records: HashMap<RingNodeId, Vec<(u64, usize)>>,
    resources: Vec<Vec<u64>>,
    attr_max: Vec<u64>,
}

const DIM_BITS: u32 = 6; // up to 64 attributes
const VALUE_BITS: u32 = 64 - DIM_BITS;

impl SwordIndex {
    /// Publishes every resource's attribute records onto the ring.
    ///
    /// `attr_max[k]` is the largest expected value of attribute `k`, used
    /// for order-preserving scaling (larger observed values saturate).
    ///
    /// # Panics
    ///
    /// Panics if a resource row's arity differs from `attr_max`, more than
    /// 64 attributes are used, or any `attr_max` is zero.
    pub fn build(ring: Ring, resources: &[Vec<u64>], attr_max: &[u64]) -> Self {
        assert!(attr_max.len() <= 1 << DIM_BITS, "too many attributes");
        assert!(attr_max.iter().all(|&m| m > 0), "attr_max must be positive");
        let mut index = SwordIndex {
            ring,
            records: HashMap::new(),
            resources: resources.to_vec(),
            attr_max: attr_max.to_vec(),
        };
        for (i, row) in resources.iter().enumerate() {
            assert_eq!(row.len(), attr_max.len(), "resource arity mismatch");
            for (k, &v) in row.iter().enumerate() {
                let key = index.key_of(k, v);
                let owner = index.ring.successor(key);
                index.records.entry(owner).or_default().push((key, i));
            }
        }
        for recs in index.records.values_mut() {
            recs.sort_unstable();
        }
        index
    }

    /// The order-preserving key of `(attribute, value)`.
    pub fn key_of(&self, dim: usize, value: u64) -> u64 {
        assert!(dim < self.attr_max.len(), "attribute out of range");
        let max = self.attr_max[dim];
        let scaled = ((value.min(max) as u128) * ((1u128 << VALUE_BITS) - 1) / max as u128) as u64;
        ((dim as u64) << VALUE_BITS) | scaled
    }

    /// Read access to the underlying ring (load counters, node set).
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Clears accumulated load.
    pub fn reset_load(&mut self) {
        self.ring.reset_load();
    }

    /// Per-node messages served (routing + record serving + walk steps).
    pub fn load_per_node(&self) -> Vec<u64> {
        self.ring.load_per_node()
    }

    /// Executes a range query: `range` on attribute `dim`, with inclusive
    /// per-attribute `filters` (use `(0, u64::MAX)` for unconstrained),
    /// stopping after `sigma` matches if given. Returns matching resource
    /// indices in walk order.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a ring node or arities disagree.
    pub fn range_query(
        &mut self,
        start: RingNodeId,
        dim: usize,
        range: (u64, u64),
        filters: &[(u64, u64)],
        sigma: Option<u32>,
    ) -> Vec<usize> {
        assert_eq!(filters.len(), self.attr_max.len(), "filter arity mismatch");
        let (lo, hi) = range;
        let key_lo = self.key_of(dim, lo);
        let key_hi = self.key_of(dim, hi);
        let mut hits = Vec::new();
        if key_lo > key_hi {
            return hits;
        }

        // Phase 1: DHT routing to the arc owner (O(log N) charged hops).
        let (mut cur, _) = self.ring.route(start, key_lo);

        // Phase 2: successor walk over the arc.
        loop {
            if let Some(recs) = self.records.get(&cur) {
                for &(key, idx) in recs {
                    if key < key_lo || key > key_hi {
                        continue;
                    }
                    // Serving a candidate record costs a message exchange.
                    self.ring.charge(cur, 1);
                    let row = &self.resources[idx];
                    let ok = row
                        .iter()
                        .zip(filters)
                        .all(|(&v, &(flo, fhi))| flo <= v && v <= fhi);
                    if ok {
                        hits.push(idx);
                        if sigma.is_some_and(|s| hits.len() as u32 >= s) {
                            return hits;
                        }
                    }
                }
            }
            // The walk ends when this node's arc already covers key_hi.
            if cur >= key_hi {
                break;
            }
            let next = self.ring.next_of(cur);
            if next <= cur {
                break; // wrapped around the ring: arc exhausted
            }
            self.ring.charge(next, 1); // walk hop received by next
            cur = next;
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread_ring(n: u64) -> Ring {
        // Well-spread node ids across the whole key circle.
        Ring::new((0..n).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect())
    }

    fn small_resources() -> Vec<Vec<u64>> {
        vec![
            vec![1, 100],
            vec![2, 200],
            vec![4, 400],
            vec![8, 800],
            vec![16, 1600],
        ]
    }

    #[test]
    fn key_is_order_preserving_within_dim() {
        let idx = SwordIndex::build(spread_ring(8), &small_resources(), &[16, 1600]);
        assert!(idx.key_of(0, 1) < idx.key_of(0, 2));
        assert!(idx.key_of(0, 2) < idx.key_of(0, 16));
        assert!(idx.key_of(0, 16) < idx.key_of(1, 0), "dims are disjoint arcs");
        assert_eq!(idx.key_of(0, 99), idx.key_of(0, 16), "values saturate at max");
    }

    #[test]
    fn range_query_finds_exactly_the_range() {
        let mut idx = SwordIndex::build(spread_ring(32), &small_resources(), &[16, 1600]);
        let start = idx.ring().nodes()[0];
        let mut hits = idx.range_query(start, 0, (2, 8), &[(0, u64::MAX); 2], None);
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2, 3]);
    }

    #[test]
    fn filters_apply_on_other_attributes() {
        let mut idx = SwordIndex::build(spread_ring(32), &small_resources(), &[16, 1600]);
        let start = idx.ring().nodes()[3];
        let hits = idx.range_query(start, 0, (0, 16), &[(0, u64::MAX), (300, 900)], None);
        let mut hits = hits;
        hits.sort_unstable();
        assert_eq!(hits, vec![2, 3], "only values with 300 ≤ attr1 ≤ 900");
    }

    #[test]
    fn sigma_stops_the_walk_early() {
        let resources: Vec<Vec<u64>> = (0..200).map(|i| vec![i, i]).collect();
        let mut idx = SwordIndex::build(spread_ring(64), &resources, &[200, 200]);
        let start = idx.ring().nodes()[0];
        let hits = idx.range_query(start, 0, (0, 199), &[(0, u64::MAX); 2], Some(5));
        assert_eq!(hits.len(), 5);
        let full = idx.range_query(start, 0, (0, 199), &[(0, u64::MAX); 2], None);
        assert_eq!(full.len(), 200);
    }

    #[test]
    fn skewed_values_concentrate_load() {
        // 95% of resources share one popular value: their records land on
        // one arc, so the serving load is heavy-tailed.
        let mut resources: Vec<Vec<u64>> = Vec::new();
        for i in 0..400 {
            let v = if i % 20 == 0 { 1 + (i as u64 % 50) } else { 7 };
            resources.push(vec![7, v]);
        }
        let mut idx = SwordIndex::build(spread_ring(64), &resources, &[16, 64]);
        let start_nodes: Vec<RingNodeId> = idx.ring().nodes().to_vec();
        for q in 0..50usize {
            let start = start_nodes[q % start_nodes.len()];
            let _ = idx.range_query(start, 0, (7, 7), &[(0, u64::MAX); 2], Some(50));
        }
        let mut load = idx.load_per_node();
        load.sort_unstable();
        let total: u64 = load.iter().sum();
        let top = load.last().copied().unwrap();
        assert!(
            top as f64 > 0.3 * total as f64,
            "one node should serve most traffic: top {top} of {total}"
        );
    }

    #[test]
    fn empty_range_returns_nothing() {
        let mut idx = SwordIndex::build(spread_ring(8), &small_resources(), &[16, 1600]);
        let start = idx.ring().nodes()[0];
        assert!(idx.range_query(start, 0, (9, 3), &[(0, u64::MAX); 2], None).is_empty());
    }
}
