//! # dht-baseline — the delegation-based comparison system
//!
//! The paper's Fig. 9(b) compares its self-representation overlay against a
//! *delegation* design: the Bamboo DHT with SWORD's resource-discovery
//! scheme ("store a record of the nodes' attributes in the DHT at a key for
//! each attribute value for each dimension", §6.4). This crate implements
//! that baseline from scratch:
//!
//! * [`Ring`] — a Chord/Bamboo-style key ring: each node owns the key arc
//!   ending at its id; routing is iterative greedy over finger tables
//!   (`O(log N)` hops), and every hop is *charged* to the node that serves
//!   it, which is what the load histogram measures;
//! * [`SwordIndex`] — the SWORD key scheme: every resource publishes one
//!   record per attribute at an order-preserving key, and a range query
//!   routes to the range start then walks successors until the range is
//!   exhausted or `σ` matches are found, filtering on the other attributes.
//!
//! The point of the comparison: with skewed attribute values the SWORD keys
//! concentrate on few ring arcs, so a handful of registry nodes serve most
//! of the query traffic — the heavy tail of Fig. 9(b) — while the
//! autonomous overlay spreads the same workload almost uniformly.
//!
//! ```
//! use dht_baseline::{Ring, SwordIndex};
//!
//! let ring = Ring::new((0..64).map(|i| i * 1_000).collect());
//! let resources = vec![vec![4, 512], vec![2, 256], vec![8, 2048]];
//! let mut index = SwordIndex::build(ring, &resources, &[16, 65_536]);
//! let hits = index.range_query(0, 0, (4, u64::MAX), &[(0, u64::MAX); 2], None);
//! assert_eq!(hits.len(), 2); // resources with ≥ 4 in attribute 0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod ring;
mod sword;

pub use ring::{Ring, RingNodeId};
pub use sword::SwordIndex;
