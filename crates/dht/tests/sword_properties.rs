//! Property tests of the SWORD baseline: range queries agree with a
//! brute-force scan, and σ prefixes are consistent with the full result.

use dht_baseline::{Ring, SwordIndex};
use proptest::prelude::*;

fn brute_force(
    resources: &[Vec<u64>],
    dim: usize,
    range: (u64, u64),
    filters: &[(u64, u64)],
) -> Vec<usize> {
    resources
        .iter()
        .enumerate()
        .filter(|(_, row)| {
            row[dim] >= range.0
                && row[dim] <= range.1
                && row
                    .iter()
                    .zip(filters)
                    .all(|(&v, &(lo, hi))| lo <= v && v <= hi)
        })
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn range_query_agrees_with_brute_force(
        rows in prop::collection::vec(prop::collection::vec(0u64..100, 3), 1..60),
        ring_seed in any::<u64>(),
        dim in 0usize..3,
        range in (0u64..100, 0u64..100),
        f0 in (0u64..100, 0u64..100),
        f1 in (0u64..100, 0u64..100),
    ) {
        let range = (range.0.min(range.1), range.0.max(range.1));
        let filters = vec![
            (f0.0.min(f0.1), f0.0.max(f0.1)),
            (f1.0.min(f1.1), f1.0.max(f1.1)),
            (0, u64::MAX),
        ];
        let ring = Ring::new(
            (0..32u64)
                .map(|i| (i ^ ring_seed).wrapping_mul(0x9E3779B97F4A7C15))
                .collect(),
        );
        let mut idx = SwordIndex::build(ring, &rows, &[100, 100, 100]);
        let start = idx.ring().nodes()[0];
        let mut got = idx.range_query(start, dim, range, &filters, None);
        got.sort_unstable();
        let mut want = brute_force(&rows, dim, range, &filters);
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sigma_returns_a_subset_of_the_full_result(
        rows in prop::collection::vec(prop::collection::vec(0u64..50, 2), 1..50),
        sigma in 1u32..20,
    ) {
        let ring = Ring::new((0..16u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect());
        let mut idx = SwordIndex::build(ring, &rows, &[50, 50]);
        let start = idx.ring().nodes()[0];
        let filters = [(0, u64::MAX); 2];
        let full = idx.range_query(start, 0, (0, 49), &filters, None);
        let bounded = idx.range_query(start, 0, (0, 49), &filters, Some(sigma));
        prop_assert_eq!(bounded.len(), full.len().min(sigma as usize));
        for b in &bounded {
            prop_assert!(full.contains(b));
        }
    }

    /// Load accounting: every query charges at least the routing path, and
    /// totals are monotone in the number of queries.
    #[test]
    fn load_is_monotone(queries in 1usize..10) {
        let rows: Vec<Vec<u64>> = (0..40).map(|i| vec![i % 10, i / 4]).collect();
        let ring = Ring::new((0..24u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect());
        let mut idx = SwordIndex::build(ring, &rows, &[10, 10]);
        let starts: Vec<u64> = idx.ring().nodes().to_vec();
        let mut last_total = 0u64;
        for q in 0..queries {
            let _ = idx.range_query(starts[q % starts.len()], 0, (2, 7), &[(0, u64::MAX); 2], None);
            let total: u64 = idx.load_per_node().iter().sum();
            prop_assert!(total > last_total, "each query adds load");
            last_total = total;
        }
    }
}
