use attrspace::{CellCoord, Point, Space};

/// The gossip profile of a resource-selection node: its raw attribute values
/// plus the derived bucket coordinate.
///
/// This is what nodes advertise about themselves through the gossip layers —
/// the paper's "links are associated with the attribute values of the node
/// they represent" (§5). The coordinate is carried redundantly so receivers
/// can classify peers without re-deriving buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeProfile {
    point: Point,
    coord: CellCoord,
}

impl NodeProfile {
    /// Builds the profile of a node at `point` in `space`.
    pub fn new(space: &Space, point: Point) -> Self {
        let coord = space.cell_coord(&point);
        NodeProfile { point, coord }
    }

    /// The raw attribute values.
    pub fn point(&self) -> &Point {
        &self.point
    }

    /// The bucket coordinate.
    pub fn coord(&self) -> &CellCoord {
        &self.coord
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrspace::Space;

    #[test]
    fn profile_derives_coord() {
        let space = Space::uniform(3, 80, 3).unwrap();
        let p = space.point(&[5, 45, 79]).unwrap();
        let profile = NodeProfile::new(&space, p.clone());
        assert_eq!(profile.point(), &p);
        assert_eq!(profile.coord().indices(), &[0, 4, 7]);
    }
}
