use std::fmt;
use std::sync::Arc;

use attrspace::{Point, Query, Range, RawValue};
use epigossip::NodeId;

/// A constraint on a *dynamic* attribute (footnote 1 of the paper): a value
/// that changes too quickly to be represented as a space dimension — free
/// disk, current load, queue depth. Queries are **routed** on the static
/// attributes only; every node that receives the query checks its own
/// current dynamic values locally before answering. This is impossible in
/// delegation-based systems, where the registry's copy would be stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DynamicConstraint {
    /// Application-defined key identifying the dynamic attribute.
    pub key: u32,
    /// The value range the resource must currently satisfy.
    pub range: Range,
}

impl DynamicConstraint {
    /// Whether a current value satisfies the constraint.
    pub fn satisfied_by(&self, value: Option<RawValue>) -> bool {
        value.is_some_and(|v| self.range.contains(v))
    }
}

/// Globally unique query identifier: the originating node plus a local
/// sequence number (the paper's `q.id`, "must be unique").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId {
    /// The node that issued the query.
    pub origin: NodeId,
    /// Origin-local sequence number.
    pub seq: u32,
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}#{}", self.origin, self.seq)
    }
}

/// One discovered resource: a node that matched the query, with the
/// attribute values it advertised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// The matching node.
    pub node: NodeId,
    /// Its attribute values at match time.
    pub values: Point,
}

/// The QUERY message of Fig. 4(a).
///
/// `level` and `dimensions` restrict how the receiver may continue the
/// traversal: a receiver never explores a (level, dimension) pair its sender
/// already covered, which is what makes the depth-first tree loop-free.
/// `level == -1` is a leaf delivery to a `C0` neighbor that must answer
/// directly without forwarding.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMsg {
    /// Unique query identifier.
    pub id: QueryId,
    /// The attribute ranges being searched. Shared, not owned: a query is
    /// immutable for its whole lifetime, so every hop of the depth-first
    /// traversal forwards the same allocation instead of deep-cloning the
    /// range vector (the simulator's hottest clone before this change).
    pub query: Arc<Query>,
    /// Upper bound `σ` on the number of nodes wanted (`None` = unbounded).
    pub sigma: Option<u32>,
    /// Highest cell level the receiver may explore; `-1` = answer only.
    pub level: i8,
    /// Dimensions still explorable at `level` (bitmask over dimensions;
    /// bit `k` set ⇒ dimension `k` may be explored).
    pub dims: u32,
    /// Constraints on dynamic attributes, checked locally by every receiver
    /// (footnote 1); empty for purely static queries.
    pub dynamic: Vec<DynamicConstraint>,
    /// Count-only mode: replies carry an aggregate count instead of the
    /// matching nodes themselves. §2 contrasts the overlay with Astrolabe,
    /// which "can easily provide (approximate) information on how many
    /// nodes fit an application's requirements, but cannot efficiently
    /// produce the list" — this protocol does both, and counting is exact
    /// because the traversal visits each matching node exactly once.
    pub count_only: bool,
    /// `C0` members already contacted for this query — carried on leaf
    /// (`level ≤ 0`) deliveries so the optional `C0` epidemic relay
    /// (§4.1: "broadcast … through an epidemic protocol") does not re-visit
    /// nodes. Empty unless the relay is enabled.
    pub visited_zero: Vec<NodeId>,
    /// Per-forward attempt id, unique among this sender's forwards of this
    /// query (`0` marks the origin's self-delivery, which is never on the
    /// wire). The receiver echoes it verbatim in its REPLY so the sender
    /// can correlate the reply to the *specific forward* rather than just
    /// `(query, peer)` — the difference between exactly-once accounting and
    /// the dedup-reply race under duplicated or retried deliveries.
    pub attempt: u32,
}

/// The REPLY message of Fig. 4(a): the matches collected by the subtree
/// rooted at the replying node.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyMsg {
    /// The query being answered.
    pub id: QueryId,
    /// Matching nodes found in the sender's subtree (empty in count-only
    /// mode).
    pub matching: Vec<Match>,
    /// Number of matches in the sender's subtree. Equals `matching.len()`
    /// in enumerate mode; carries the whole answer in count-only mode.
    pub count: u64,
    /// Echo of the answered QUERY's [`attempt`](QueryMsg::attempt). The
    /// upstream merges a reply *fresh* only while it still waits on this
    /// exact attempt — any other copy (duplicated delivery, reply to a
    /// superseded forward) is recognisably stale and cannot clear the
    /// waiting entry or double-add a count.
    pub attempt: u32,
}

/// A resource-selection protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Depth-first query propagation.
    Query(QueryMsg),
    /// Subtree results travelling back up the traversal tree.
    Reply(ReplyMsg),
}

impl Message {
    /// The query id this message concerns.
    pub fn query_id(&self) -> QueryId {
        match self {
            Message::Query(q) => q.id,
            Message::Reply(r) => r.id,
        }
    }
}

/// Returns a bitmask with the low `d` bits set — "all dimensions".
pub(crate) fn all_dims(d: usize) -> u32 {
    debug_assert!(d <= 32, "at most 32 dimensions supported by the dims bitmask");
    if d == 32 {
        u32::MAX
    } else {
        (1u32 << d) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrspace::Space;

    #[test]
    fn query_id_display() {
        assert_eq!(QueryId { origin: 3, seq: 9 }.to_string(), "q3#9");
    }

    #[test]
    fn all_dims_masks() {
        assert_eq!(all_dims(1), 0b1);
        assert_eq!(all_dims(5), 0b11111);
        assert_eq!(all_dims(32), u32::MAX);
    }

    #[test]
    fn message_query_id_roundtrip() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let id = QueryId { origin: 1, seq: 2 };
        let q = Message::Query(QueryMsg {
            id,
            query: Query::builder(&space).build().unwrap().into(),
            sigma: None,
            level: 3,
            dims: all_dims(2),
            dynamic: Vec::new(),
            count_only: false,
            visited_zero: Vec::new(),
            attempt: 1,
        });
        let r = Message::Reply(ReplyMsg { id, matching: Vec::new(), count: 0, attempt: 1 });
        assert_eq!(q.query_id(), id);
        assert_eq!(r.query_id(), id);
    }
}
