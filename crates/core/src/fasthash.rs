//! A fast, deterministic hasher for the simulator's small hot keys.
//!
//! Every per-event map operation — node lookup on delivery, per-query stats
//! updates, pending-table access, the oracle wiring's subcell groups — keys
//! on a `u64` node id or a two-word `QueryId`. `std`'s default SipHash is
//! DoS-resistant but costs more than the lookup itself for such keys, and
//! its per-instance random seed makes iteration order vary between runs.
//! This multiplicative hasher (the Fibonacci-hashing family) is a handful
//! of arithmetic ops per word, and being seedless it makes map iteration
//! order a pure function of the insertion sequence — one less source of
//! nondeterminism to audit.
//!
//! Not collision-resistant against adversarial keys; use only for internal
//! identifiers, never for attacker-controlled input.

// lint:allow-file(std-collections) — this module *wraps* the std maps to
// build the deterministic FastMap/FastSet aliases everyone else must use.
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Odd multiplier from the golden ratio (`2^64 / φ`), the classic Fibonacci
/// hashing constant: consecutive ids spread across the whole table.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// See the module docs. Word-at-a-time multiplicative hasher.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.add(n as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.add(n as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add(n as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add(n as u64);
    }
}

/// Seedless [`BuildHasher`] for [`FastHasher`]: every instance hashes
/// identically, so map iteration order depends only on insertions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FastHashState;

impl BuildHasher for FastHashState {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// `HashMap` keyed by internal identifiers, using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastHashState>;
/// `HashSet` of internal identifiers, using [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastHashState>;

/// Word-at-a-time FNV-1a 64, used for state fingerprints (node state, the
/// simulator's exploration hashes). Distinct from [`FastHasher`] on
/// purpose: fingerprints are compared *across* processes and stored in
/// exploration caches, so they use the textbook constants rather than
/// whatever the map hasher of the day is.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Mixes one word in, byte-at-a-time little-endian.
    pub fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(7u64, 3u32)), hash_of(&(7u64, 3u32)));
    }

    #[test]
    fn consecutive_ids_spread() {
        // Fibonacci multiplier: consecutive small ids must not collide in
        // the low bits a power-of-two table actually uses.
        let low: FastSet<u64> = (0u64..1000).map(|i| hash_of(&i) >> 57).collect();
        assert!(low.len() > 64, "top-7-bit buckets poorly spread: {}", low.len());
        let set: FastSet<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(set.len(), 1000, "collisions among consecutive ids");
    }

    #[test]
    fn byte_stream_tail_is_length_salted() {
        // "ab" vs "ab\0" must differ even though the padded word matches.
        assert_ne!(hash_of(&[97u8, 98]), hash_of(&[97u8, 98, 0]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.remove(&2), Some("b"));
        assert!(!m.contains_key(&2));
    }
}
