//! # autosel-core — the autonomous resource-selection protocol
//!
//! This crate implements the primary contribution of *"Autonomous Resource
//! Selection for Decentralized Utility Computing"* (Costa, Napper, Pierre,
//! van Steen — ICDCS 2009): a fully decentralized lookup service in which
//! every compute node represents **itself** in a d-dimensional attribute
//! space — no delegation to registry nodes — and multi-attribute range
//! queries are routed depth-first along links to *neighboring cells*
//! `N(l,k)`, visiting every matching node exactly once.
//!
//! The protocol follows Figures 4–5 of the paper:
//!
//! * [`SelectionNode`] holds the per-node state: the routing table (one link
//!   per neighboring subcell plus the `neighborsZero` set), and the
//!   `pending` / `matching` / `waiting` tables of in-flight queries;
//! * [`Message`] is the QUERY/REPLY wire format, including the `level` and
//!   `dimensions` scope fields that make the traversal loop-free;
//! * [`RoutingTable`] maps gossip views to routing links, and
//!   [`SlotSelector`] is the [`epigossip::Selector`] policy that makes the
//!   semantic gossip layer retain exactly the peers the routing table needs.
//!
//! Everything is **sans-IO**: [`SelectionNode::handle_message`] consumes a
//! message and a timestamp and returns [`Output`]s (messages to transmit,
//! completions, failure suspicions). The discrete-event simulator
//! (`overlay-sim`) and the deployment runtime (`autosel-net`) drive the
//! same state machine byte-for-byte.
//!
//! ## Example: three nodes, oracle-wired, one query
//!
//! ```
//! use attrspace::{Query, Space};
//! use autosel_core::{Output, ProtocolConfig, SelectionNode};
//!
//! let space = Space::uniform(2, 80, 3)?;
//! let mk = |id, vals: [u64; 2]| {
//!     SelectionNode::new(id, &space, space.point(&vals).unwrap(), ProtocolConfig::default())
//! };
//! let mut a = mk(1, [5, 5]);
//! let mut b = mk(2, [70, 70]);
//!
//! // Wire A -> B by hand (in production the gossip layer does this).
//! a.routing_mut().observe(2, b.point().clone());
//!
//! let query = Query::builder(&space).min("a0", 60).build()?;
//! let (qid, outputs) = a.begin_query(query, Some(1), 0);
//! // A does not match, so it forwards towards B's cell.
//! let Output::Send { to, msg } = &outputs[0] else { panic!() };
//! assert_eq!(*to, 2);
//!
//! // Deliver to B; B matches, cannot forward further, replies to A.
//! let replies = b.handle_message(1, msg.clone(), 1);
//! let Output::Send { to, msg } = &replies[0] else { panic!() };
//! assert_eq!(*to, 1);
//! let done = a.handle_message(2, msg.clone(), 2);
//! let Output::Completed { id, matches, .. } = &done[0] else { panic!() };
//! assert_eq!(*id, qid);
//! assert_eq!(matches[0].node, 2);
//! # Ok::<(), attrspace::SpaceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bootstrap;
pub mod fasthash;
mod messages;
mod node;
mod profile;
mod routing;
mod selector;

pub use messages::{DynamicConstraint, Match, Message, QueryId, QueryMsg, ReplyMsg};
pub use node::{ChoicePoint, Output, ProtocolConfig, SelectionNode};
pub use profile::NodeProfile;
pub use routing::{NeighborEntry, RoutingTable};
pub use selector::SlotSelector;
