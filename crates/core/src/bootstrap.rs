//! Oracle wiring of routing tables from global knowledge — the paper's
//! converged-state experimental setup (§6), used by the simulator and tests.

use crate::fasthash::FastMap;
use std::hash::Hash;

use attrspace::{BucketIndex, Level, Space};
use epigossip::NodeId;
use rand::Rng;

use crate::{NeighborEntry, RoutingTable, SelectionNode};

/// Precomputed group indexes for wiring routing tables from global
/// knowledge, as if the gossip layers had fully converged — the paper's
/// experimental setup ("we first randomly populate the space … and give
/// them sufficient time to build their routing tables", §6).
///
/// Built once from the population's `(id, point, coord)` entries; each
/// node's table is then wired by [`wire_table`](Self::wire_table) without
/// touching any other node, so a driver can wire tables in place (the
/// simulator does) instead of moving its state machines into a slice for
/// [`wire_perfect`].
///
/// `neighborsZero` becomes *all* same-`C0` nodes; each `(l,k)` slot gets a
/// node chosen uniformly at random from the occupants of `N(l,k)` (the same
/// independent randomness the gossip selection provides, which is what
/// spreads query load in §6.4).
///
/// Group keys are mixed-granularity prefixes. A node `Y` belongs to
/// `N(l,k)(X)` iff
///
/// ```text
/// Y_j >> (l-1) == X_j >> (l-1)        for j <  k
/// Y_k >> (l-1) == (X_k >> (l-1)) ^ 1  for j == k
/// Y_j >> l     == X_j >> l            for j >  k
/// ```
///
/// When the whole coordinate fits in one machine word (`d · max(l) ≤ 64` —
/// true for every configuration in the paper) the prefixes are packed into
/// a `u64`, so grouping hashes one integer per (node, level, dim) instead
/// of allocating a `Vec<BucketIndex>` key for each. Construction runs in
/// `O(N · d · max(l))` either way, scaling to the paper's 100 000-node
/// populations.
#[derive(Debug)]
pub struct OracleWiring {
    d: usize,
    max_level: Level,
    entries: Vec<NeighborEntry>,
    index: GroupIndex,
}

/// Entry indexes grouped by cell key — direct-indexed arrays when the
/// packed key space is small, hashed `u64` keys when the coordinate fits a
/// word, per-dimension vectors otherwise.
#[derive(Debug)]
enum GroupIndex {
    Dense(DenseGroups),
    Packed(Groups<u64>),
    Wide(Groups<Vec<BucketIndex>>),
}

/// Largest packed-key width (in bits) indexed as dense arrays: 2^16 offsets
/// per table stays a few hundred KB while covering every configuration the
/// paper benchmarks (e.g. 5 dims × 3 levels = 15 bits).
const DENSE_KEY_BITS: usize = 16;

/// One group table in compressed-sparse-row form: the member list of packed
/// key `k` is `members[starts[k]..starts[k + 1]]`. Grouping and lookup are
/// a direct array index — no hashing — which is what makes oracle-wiring a
/// 100 000-node population cheap enough to rerun per sweep point.
#[derive(Debug)]
struct Csr {
    starts: Vec<u32>,
    members: Vec<u32>,
}

impl Csr {
    /// Groups entry indexes `0..keys.len()` by their packed key. Members of
    /// a group keep ascending entry order (the hashed path's insertion
    /// order), so the one-draw-per-slot RNG contract picks identically.
    fn build(n_keys: usize, keys: &[u32]) -> Self {
        let mut starts = vec![0u32; n_keys + 1];
        for &k in keys {
            starts[k as usize + 1] += 1;
        }
        for i in 0..n_keys {
            starts[i + 1] += starts[i];
        }
        let mut cursor = starts.clone();
        let mut members = vec![0u32; keys.len()];
        for (i, &k) in keys.iter().enumerate() {
            let c = &mut cursor[k as usize];
            members[*c as usize] = i as u32;
            *c += 1;
        }
        Csr { starts, members }
    }

    fn get(&self, key: u64) -> &[u32] {
        let k = key as usize;
        &self.members[self.starts[k] as usize..self.starts[k + 1] as usize]
    }
}

/// [`Groups`] with every table in [`Csr`] form.
#[derive(Debug)]
struct DenseGroups {
    zero: Csr,
    slots: Vec<Csr>,
}

impl DenseGroups {
    fn build(entries: &[NeighborEntry], d: usize, max_level: Level) -> Self {
        let n_keys = 1usize << (d * max_level as usize);
        let mut keys: Vec<u32> = Vec::with_capacity(entries.len());
        keys.extend(entries.iter().map(|e| packed_zero(e.coord.indices(), max_level) as u32));
        let zero = Csr::build(n_keys, &keys);
        let mut slots = Vec::with_capacity(d * max_level as usize);
        for level in 1..=max_level {
            for dim in 0..d {
                keys.clear();
                keys.extend(
                    entries
                        .iter()
                        .map(|e| packed_slot(e.coord.indices(), level, dim, max_level) as u32),
                );
                slots.push(Csr::build(n_keys, &keys));
            }
        }
        DenseGroups { zero, slots }
    }
}

#[derive(Debug)]
struct Groups<K> {
    /// `C0` groups: full-coordinate key → entry indexes in that cell.
    zero: FastMap<K, Vec<u32>>,
    /// Per `(level-1)·d + dim`: mixed-granularity prefix → entry indexes.
    slots: Vec<FastMap<K, Vec<u32>>>,
}

impl<K: Hash + Eq> Groups<K> {
    fn build(
        entries: &[NeighborEntry],
        d: usize,
        max_level: Level,
        zero_key: impl Fn(&[BucketIndex]) -> K,
        slot_key: impl Fn(&[BucketIndex], Level, usize) -> K,
    ) -> Self {
        let mut zero: FastMap<K, Vec<u32>> = FastMap::default();
        for (i, e) in entries.iter().enumerate() {
            zero.entry(zero_key(e.coord.indices())).or_default().push(i as u32);
        }
        let mut slots: Vec<FastMap<K, Vec<u32>>> =
            (0..d * max_level as usize).map(|_| FastMap::default()).collect();
        for (i, e) in entries.iter().enumerate() {
            for level in 1..=max_level {
                for dim in 0..d {
                    slots[(level as usize - 1) * d + dim]
                        .entry(slot_key(e.coord.indices(), level, dim))
                        .or_default()
                        .push(i as u32);
                }
            }
        }
        Groups { zero, slots }
    }
}

/// Packs a full coordinate into a word, `max_level` bits per dimension.
fn packed_zero(coord: &[BucketIndex], max_level: Level) -> u64 {
    coord.iter().fold(0u64, |k, &v| (k << max_level) | u64::from(v))
}

/// Packs the `N(level, dim)` membership prefix into a word, keeping each
/// dimension in its own `max_level`-bit field so one field can be flipped.
fn packed_slot(coord: &[BucketIndex], level: Level, dim: usize, max_level: Level) -> u64 {
    coord.iter().enumerate().fold(0u64, |k, (j, &v)| {
        let shift = if j <= dim { level - 1 } else { level };
        (k << max_level) | u64::from(v >> shift)
    })
}

fn wide_slot(coord: &[BucketIndex], level: Level, dim: usize) -> Vec<BucketIndex> {
    coord
        .iter()
        .enumerate()
        .map(|(j, &v)| if j <= dim { v >> (level - 1) } else { v >> level })
        .collect()
}

impl OracleWiring {
    /// Indexes `entries` (the whole population) for wiring against `space`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn new(space: &Space, entries: Vec<NeighborEntry>) -> Self {
        assert!(!entries.is_empty(), "cannot wire an empty population");
        let d = space.dims();
        let max_level = space.max_level();
        let index = if d * max_level as usize <= DENSE_KEY_BITS {
            GroupIndex::Dense(DenseGroups::build(&entries, d, max_level))
        } else if d * max_level as usize <= 64 {
            GroupIndex::Packed(Groups::build(
                &entries,
                d,
                max_level,
                |c| packed_zero(c, max_level),
                |c, l, k| packed_slot(c, l, k, max_level),
            ))
        } else {
            GroupIndex::Wide(Groups::build(
                &entries,
                d,
                max_level,
                <[BucketIndex]>::to_vec,
                wide_slot,
            ))
        };
        OracleWiring { d, max_level, entries, index }
    }

    /// The indexed population entries, in the order given to
    /// [`new`](Self::new) (the order `wire_table` indexes by).
    pub fn entries(&self) -> &[NeighborEntry] {
        &self.entries
    }

    /// Rewires entry `i`'s routing table from global knowledge: all `C0`
    /// mates, plus one uniformly random occupant per non-empty `N(l,k)`.
    ///
    /// Slots are visited level-ascending, dimension-ascending, drawing from
    /// `rng` once per non-empty subcell — callers that fix the entry order
    /// and the RNG replay the exact same wiring.
    ///
    /// Returns the number of links wired (slot links + `C0` links), so
    /// drivers can report the bootstrap as an initial view change without
    /// re-walking the table.
    pub fn wire_table<R: Rng + ?Sized>(
        &self,
        i: usize,
        table: &mut RoutingTable,
        rng: &mut R,
    ) -> usize {
        match &self.index {
            GroupIndex::Dense(g) => self.wire_dense(g, i, table, rng),
            GroupIndex::Packed(g) => {
                let ml = self.max_level;
                self.wire_with(g, i, table, rng, |c| packed_zero(c, ml), |c, l, k| {
                    // Flip our half along `k`: the low bit of its field.
                    let field = (self.d - 1 - k) as u32 * u32::from(ml);
                    packed_slot(c, l, k, ml) ^ (1u64 << field)
                });
            }
            GroupIndex::Wide(g) => {
                self.wire_with(g, i, table, rng, <[BucketIndex]>::to_vec, |c, l, k| {
                    let mut key = wide_slot(c, l, k);
                    key[k] ^= 1;
                    key
                });
            }
        }
        table.link_count()
    }

    /// [`wire_with`](Self::wire_with) over direct-indexed tables: same
    /// slot visit order, same one-draw-per-non-empty-subcell RNG contract.
    fn wire_dense<R: Rng + ?Sized>(
        &self,
        g: &DenseGroups,
        i: usize,
        table: &mut RoutingTable,
        rng: &mut R,
    ) {
        let own = self.entries[i].coord.indices();
        let ml = self.max_level;
        table.clear();
        for &m in g.zero.get(packed_zero(own, ml)) {
            if m as usize != i {
                table.insert_zero(&self.entries[m as usize]);
            }
        }
        for level in 1..=ml {
            for dim in 0..self.d {
                let field = (self.d - 1 - dim) as u32 * u32::from(ml);
                let key = packed_slot(own, level, dim, ml) ^ (1u64 << field);
                let cands = g.slots[(level as usize - 1) * self.d + dim].get(key);
                if !cands.is_empty() {
                    let pick = cands[rng.gen_range(0..cands.len())] as usize;
                    table.set_neighbor(level, dim, &self.entries[pick]);
                }
            }
        }
    }

    fn wire_with<K: Hash + Eq, R: Rng + ?Sized>(
        &self,
        groups: &Groups<K>,
        i: usize,
        table: &mut RoutingTable,
        rng: &mut R,
        zero_key: impl Fn(&[BucketIndex]) -> K,
        flipped_slot_key: impl Fn(&[BucketIndex], Level, usize) -> K,
    ) {
        let own = self.entries[i].coord.indices();
        table.clear();
        if let Some(mates) = groups.zero.get(&zero_key(own)) {
            for &m in mates {
                if m as usize != i {
                    table.insert_zero(&self.entries[m as usize]);
                }
            }
        }
        for level in 1..=self.max_level {
            for dim in 0..self.d {
                let key = flipped_slot_key(own, level, dim);
                if let Some(cands) = groups.slots[(level as usize - 1) * self.d + dim].get(&key) {
                    if !cands.is_empty() {
                        let pick = cands[rng.gen_range(0..cands.len())] as usize;
                        table.set_neighbor(level, dim, &self.entries[pick]);
                    }
                }
            }
        }
    }
}

/// Wires every node's routing table from global knowledge via a shared
/// [`OracleWiring`] index. Nodes are wired in slice order; see
/// [`OracleWiring::wire_table`] for the per-node randomness contract.
pub fn wire_perfect<R: Rng + ?Sized>(nodes: &mut [SelectionNode], rng: &mut R) {
    if nodes.is_empty() {
        return;
    }
    let space = nodes[0].space().clone();
    let entries: Vec<NeighborEntry> = nodes
        .iter()
        .map(|n| NeighborEntry { id: n.id(), point: n.point().clone(), coord: n.coord().clone() })
        .collect();
    let wiring = OracleWiring::new(&space, entries);
    for (i, node) in nodes.iter_mut().enumerate() {
        wiring.wire_table(i, node.routing_mut(), rng);
    }
}

/// Convenience: all node ids whose attribute values satisfy `query` — the
/// ground truth the experiments compare deliveries against.
pub fn ground_truth(nodes: &[SelectionNode], query: &attrspace::Query) -> Vec<NodeId> {
    nodes
        .iter()
        .filter(|n| query.matches(n.point()))
        .map(|n| n.id())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolConfig;
    use attrspace::Space;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(space: &Space, n: u64, seed: u64) -> Vec<SelectionNode> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let vals: Vec<u64> = (0..space.dims()).map(|_| rng.gen_range(0..80)).collect();
                SelectionNode::new(i, space, space.point(&vals).unwrap(), ProtocolConfig::default())
            })
            .collect()
    }

    #[test]
    fn wiring_matches_brute_force_classification() {
        let space = Space::uniform(3, 80, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut nodes = population(&space, 200, 4);
        wire_perfect(&mut nodes, &mut rng);

        // Brute-force check on a sample of nodes: every filled slot's entry
        // really lies in N(l,k), every same-C0 node is a zero neighbor, and
        // slots are empty only when the subcell truly is.
        let coords: Vec<_> = nodes.iter().map(|n| n.coord().clone()).collect();
        for i in (0..nodes.len()).step_by(17) {
            let me = &coords[i];
            for level in 1..=2u8 {
                for dim in 0..3usize {
                    let region = me.neighboring_cell(level, dim);
                    let occupant = nodes[i].routing().neighbor(level, dim);
                    let exists = coords.iter().any(|c| region.contains(c));
                    assert_eq!(occupant.is_some(), exists, "node {i} slot ({level},{dim})");
                    if let Some(id) = occupant {
                        assert!(region.contains(&coords[id as usize]));
                    }
                }
            }
            let mates: Vec<NodeId> = (0..nodes.len() as u64)
                .filter(|&j| j != i as u64 && coords[j as usize].same_cell(me, 0))
                .collect();
            assert_eq!(nodes[i].routing().zero_count(), mates.len());
        }
    }

    /// The packed-key fast path must produce the exact same wiring (same
    /// links, same RNG draws) as the wide fallback. A 22-dimension depth-3
    /// space needs 66 bits and genuinely exercises the wide path.
    #[test]
    fn packed_and_wide_indexes_wire_identically() {
        let narrow = Space::uniform(5, 80, 3).unwrap();
        assert!(narrow.dims() * narrow.max_level() as usize <= 64);
        let wide = Space::uniform(22, 80, 3).unwrap();
        assert!(wide.dims() * wide.max_level() as usize > 64);

        for space in [narrow, wide] {
            let nodes = population(&space, 120, 9);
            let entries: Vec<NeighborEntry> = nodes
                .iter()
                .map(|n| NeighborEntry {
                    id: n.id(),
                    point: n.point().clone(),
                    coord: n.coord().clone(),
                })
                .collect();
            let auto = OracleWiring::new(&space, entries.clone());
            // Force the wide fallback on the same entries for comparison.
            let forced = OracleWiring {
                d: space.dims(),
                max_level: space.max_level(),
                index: GroupIndex::Wide(Groups::build(
                    &entries,
                    space.dims(),
                    space.max_level(),
                    <[BucketIndex]>::to_vec,
                    wide_slot,
                )),
                entries,
            };
            for i in (0..nodes.len()).step_by(13) {
                let mut ta = RoutingTable::new(space.clone(), nodes[i].coord().clone());
                let mut tb = RoutingTable::new(space.clone(), nodes[i].coord().clone());
                let mut ra = StdRng::seed_from_u64(77);
                let mut rb = StdRng::seed_from_u64(77);
                auto.wire_table(i, &mut ta, &mut ra);
                forced.wire_table(i, &mut tb, &mut rb);
                assert_eq!(
                    ra.gen_range(0..u64::MAX),
                    rb.gen_range(0..u64::MAX),
                    "RNG draw counts diverged"
                );
                let links = |t: &RoutingTable| -> Vec<(Level, usize, NodeId)> {
                    t.filled_slots().collect()
                };
                assert_eq!(links(&ta), links(&tb), "node {i}: slot wiring diverged");
                let zeros = |t: &RoutingTable| -> Vec<NodeId> {
                    t.zero_neighbors().map(|(id, _)| id).collect()
                };
                assert_eq!(zeros(&ta), zeros(&tb), "node {i}: C0 wiring diverged");
            }
        }
    }
}
