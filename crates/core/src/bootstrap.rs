//! Oracle wiring of routing tables from global knowledge — the paper's
//! converged-state experimental setup (§6), used by the simulator and tests.

use std::collections::HashMap;

use attrspace::{BucketIndex, Level};
use epigossip::NodeId;
use rand::Rng;

use crate::{NeighborEntry, SelectionNode};

/// Wires every node's routing table from global knowledge, as if the gossip
/// layers had fully converged — the paper's experimental setup ("we first
/// randomly populate the space … and give them sufficient time to build
/// their routing tables", §6).
///
/// `neighborsZero` becomes *all* same-`C0` nodes; each `(l,k)` slot gets a
/// node chosen uniformly at random from the occupants of `N(l,k)` (the same
/// independent randomness the gossip selection provides, which is what
/// spreads query load in §6.4).
///
/// Runs in `O(N · d · max(l))` using mixed-granularity prefix indexes, so it
/// scales to the paper's 100 000-node populations.
pub fn wire_perfect<R: Rng + ?Sized>(nodes: &mut [SelectionNode], rng: &mut R) {
    if nodes.is_empty() {
        return;
    }
    let space = nodes[0].space().clone();
    let d = space.dims();
    let max_level = space.max_level();

    let entries: Vec<NeighborEntry> = nodes
        .iter()
        .map(|n| NeighborEntry { id: n.id(), point: n.point().clone(), coord: n.coord().clone() })
        .collect();

    // C0 groups: full-coordinate key.
    let mut zero_groups: HashMap<Vec<BucketIndex>, Vec<usize>> = HashMap::new();
    for (i, e) in entries.iter().enumerate() {
        zero_groups.entry(e.coord.indices().to_vec()).or_default().push(i);
    }

    // Per (level, dim): nodes keyed by the mixed-granularity prefix that
    // determines membership of somebody's N(level, dim). A node Y belongs to
    // N(l,k)(X) iff
    //   Y_j >> (l-1) == X_j >> (l-1)        for j <  k
    //   Y_k >> (l-1) == (X_k >> (l-1)) ^ 1  for j == k
    //   Y_j >> l     == X_j >> l            for j >  k
    let key = |coord: &[BucketIndex], level: Level, dim: usize| -> Vec<BucketIndex> {
        (0..d)
            .map(|j| {
                if j <= dim {
                    coord[j] >> (level - 1)
                } else {
                    coord[j] >> level
                }
            })
            .collect()
    };
    let mut slot_groups: Vec<HashMap<Vec<BucketIndex>, Vec<usize>>> =
        vec![HashMap::new(); d * max_level as usize];
    for (i, e) in entries.iter().enumerate() {
        for level in 1..=max_level {
            for dim in 0..d {
                let k = key(e.coord.indices(), level, dim);
                slot_groups[(level as usize - 1) * d + dim].entry(k).or_default().push(i);
            }
        }
    }

    for (i, node) in nodes.iter_mut().enumerate() {
        let own = entries[i].coord.indices().to_vec();
        let table = node.routing_mut();
        table.clear();
        if let Some(mates) = zero_groups.get(&own) {
            for &m in mates {
                if m != i {
                    table.insert_zero(entries[m].clone());
                }
            }
        }
        for level in 1..=max_level {
            for dim in 0..d {
                let mut k = key(&own, level, dim);
                k[dim] ^= 1; // flip our half along `dim`
                if let Some(cands) = slot_groups[(level as usize - 1) * d + dim].get(&k) {
                    if !cands.is_empty() {
                        let pick = cands[rng.gen_range(0..cands.len())];
                        table.set_neighbor(level, dim, entries[pick].clone());
                    }
                }
            }
        }
    }
}

/// Convenience: all node ids whose attribute values satisfy `query` — the
/// ground truth the experiments compare deliveries against.
pub fn ground_truth(nodes: &[SelectionNode], query: &attrspace::Query) -> Vec<NodeId> {
    nodes
        .iter()
        .filter(|n| query.matches(n.point()))
        .map(|n| n.id())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolConfig;
    use attrspace::Space;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wiring_matches_brute_force_classification() {
        let space = Space::uniform(3, 80, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut nodes: Vec<SelectionNode> = (0..200)
            .map(|i| {
                let vals: Vec<u64> = (0..3).map(|_| rng.gen_range(0..80)).collect();
                SelectionNode::new(i, &space, space.point(&vals).unwrap(), ProtocolConfig::default())
            })
            .collect();
        wire_perfect(&mut nodes, &mut rng);

        // Brute-force check on a sample of nodes: every filled slot's entry
        // really lies in N(l,k), every same-C0 node is a zero neighbor, and
        // slots are empty only when the subcell truly is.
        let coords: Vec<_> = nodes.iter().map(|n| n.coord().clone()).collect();
        for i in (0..nodes.len()).step_by(17) {
            let me = &coords[i];
            for level in 1..=2u8 {
                for dim in 0..3usize {
                    let region = me.neighboring_cell(level, dim);
                    let occupant = nodes[i].routing().neighbor(level, dim);
                    let exists = coords.iter().any(|c| region.contains(c));
                    assert_eq!(occupant.is_some(), exists, "node {i} slot ({level},{dim})");
                    if let Some(e) = occupant {
                        assert!(region.contains(&e.coord));
                    }
                }
            }
            let mates: Vec<NodeId> = (0..nodes.len() as u64)
                .filter(|&j| j != i as u64 && coords[j as usize].same_cell(me, 0))
                .collect();
            assert_eq!(nodes[i].routing().zero_count(), mates.len());
        }
    }
}
