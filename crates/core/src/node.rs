use crate::fasthash::{FastMap, FastSet};
use std::collections::VecDeque;
use std::sync::Arc;

use attrspace::{CellCoord, Level, Point, Query, Space, SubcellIndex};
use autosel_obs::{Event, ObsHandle, QueryRef};
use epigossip::{NodeId, View};
use rand::Rng;

use crate::messages::all_dims;
use crate::{
    DynamicConstraint, Match, Message, NodeProfile, QueryId, QueryMsg, ReplyMsg, RoutingTable,
};

/// Protocol tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// How long to wait for a REPLY from a neighbor before presuming it dead
    /// and continuing the traversal without its subtree (the paper's `T(q)`).
    pub query_timeout_ms: u64,
    /// Enables the `C0` epidemic relay (§4.1: nodes of a lowest-level cell
    /// "broadcast a message to each of them, for example through an epidemic
    /// protocol"): leaf receivers re-forward the query to same-cell mates
    /// the sender did not know, using the message's `visited_zero` set for
    /// deduplication. Off by default — with converged views and the paper's
    /// sparse cells every mate is already known to the fanning-out node.
    pub c0_relay: bool,
    /// How many concluded queries keep their final REPLY cached for
    /// retransmission. A duplicate QUERY arriving *after* this node already
    /// answered is met with a cached copy of the real reply instead of an
    /// empty dedup-reply, which makes upstream retries idempotent: the
    /// retransmitted copy either fresh-merges (the original was lost) or is
    /// dropped as stale by its attempt id. Evicted FIFO; `0` disables the
    /// cache (duplicates of concluded queries then answer empty).
    pub reply_cache: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig { query_timeout_ms: 5_000, c0_relay: false, reply_cache: 32 }
    }
}

/// An effect produced by the protocol state machine. The driver (simulator
/// or network runtime) interprets these.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Transmit `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message to deliver.
        msg: Message,
    },
    /// A query issued *by this node* finished with these matches.
    Completed {
        /// The locally-issued query.
        id: QueryId,
        /// All matches collected (may exceed `σ` slightly; never misses a
        /// reported match). Empty in count-only mode.
        matches: Vec<Match>,
        /// Total matches found (the whole answer in count-only mode).
        count: u64,
    },
    /// A neighbor failed to answer within the timeout; the driver should
    /// also evict it from the gossip layers.
    NeighborFailed(
        /// The unresponsive peer.
        NodeId,
    ),
}

/// Per-query in-flight state: the paper's `pending`, `matching` and
/// `waiting` tables collapsed into one record (they are always indexed by
/// the same query id).
#[derive(Debug)]
struct PendingQuery {
    /// Shared with every [`QueryMsg`] this node forwards for the query.
    query: Arc<Query>,
    /// Constraints on dynamic attributes, checked locally (footnote 1).
    dynamic: Vec<DynamicConstraint>,
    sigma: Option<u32>,
    /// Exploration frontier: highest level still to scan; `-1` = exhausted.
    level: i8,
    /// Dimensions still explorable at `level` (bitmask).
    dims: u32,
    /// Upstream node to answer, or `None` when this node is the originator.
    reply_to: Option<NodeId>,
    /// Count-only queries aggregate here instead of collecting matches.
    count_only: bool,
    count: u64,
    matching: Vec<Match>,
    matched_ids: FastSet<NodeId>,
    /// The attempt id to echo upstream in the final REPLY — the one carried
    /// by the QUERY that created this record, refreshed if the same
    /// upstream re-delivers with a newer attempt while we are in flight.
    attempt: u32,
    /// Next attempt id to stamp on a forward of this query (starts at 1;
    /// `0` is the origin's self-delivery and never appears on the wire).
    next_attempt: u32,
    /// Peers queried but not yet answered, with their reply deadline and
    /// the attempt id their reply must echo to merge fresh.
    waiting: FastMap<NodeId, (u64, u32)>,
    /// `C0` neighbors already contacted (never re-sent on re-forwarding).
    contacted_zero: FastSet<NodeId>,
    /// `C0` members known (from the message) to have been visited already —
    /// the deduplication set of the optional epidemic relay.
    visited_zero: FastSet<NodeId>,
}

impl PendingQuery {
    fn sigma_met(&self) -> bool {
        self.sigma.is_some_and(|s| self.count >= u64::from(s))
    }

    fn add_match(&mut self, m: Match) -> bool {
        if self.count_only {
            // Exactly-once traversal: disjoint subtrees never double-count,
            // so no id set is needed (duplicated deliveries answer empty).
            self.count += 1;
            return true;
        }
        if self.matched_ids.insert(m.node) {
            self.matching.push(m);
            self.count += 1;
            true
        } else {
            false
        }
    }
}

/// One outstanding non-deterministic decision at a node: a forwarded
/// subtree whose REPLY has not arrived yet. The environment (network,
/// simulator, or a model checker) decides what happens next — the reply is
/// delivered, delayed past `deadline`, or the attempt is superseded.
///
/// This is the protocol's *entire* branching surface: every divergence
/// between two executions of the same scenario is an ordering of these
/// resolutions, which is what makes the `autosel-analyze` explorer's
/// schedule enumeration exhaustive rather than heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChoicePoint {
    /// The query whose traversal is blocked on this decision.
    pub query: QueryId,
    /// The peer owing a REPLY.
    pub peer: NodeId,
    /// Absolute deadline (driver clock, ms) after which `T(q)` fires.
    pub deadline: u64,
    /// The attempt id the reply must echo to merge fresh.
    pub attempt: u32,
}

/// A concluded query's final answer, kept for retransmission to late
/// duplicate QUERY deliveries (see [`ProtocolConfig::reply_cache`]).
#[derive(Debug)]
struct CachedReply {
    /// The upstream the original REPLY went to — the only peer whose
    /// duplicates are answered from the cache (any other asker is a
    /// cross-path delivery whose subtree accounting we must not feed).
    to: NodeId,
    matching: Vec<Match>,
    count: u64,
}

/// A resource-selection node: one compute resource representing itself in
/// the overlay (§4.3, Fig. 5).
///
/// Sans-IO: all methods take the current time and return [`Output`]s; the
/// caller delivers messages and schedules [`poll_timeouts`](Self::poll_timeouts).
#[derive(Debug)]
pub struct SelectionNode {
    id: NodeId,
    space: Space,
    point: Point,
    coord: CellCoord,
    /// Precomputed `N(l,k)` regions of `coord` — `continue_query` scans one
    /// per (level, dimension) pair on every hop, so they are materialized
    /// once per point change instead of per scan. Built lazily on the first
    /// forward: most nodes in a large population never route a query, and
    /// skipping the build keeps population setup linear in cheap work.
    subcells: Option<SubcellIndex>,
    routing: RoutingTable,
    /// Current values of this node's dynamic attributes (footnote 1).
    dynamic: FastMap<u32, attrspace::RawValue>,
    pending: FastMap<QueryId, PendingQuery>,
    /// Recycled shells of concluded [`PendingQuery`] records. A record
    /// bundles five containers (match list, three dedup sets, the waiting
    /// table) that churn once per query per hop; re-using the emptied
    /// shells keeps their capacity warm instead of round-tripping the
    /// allocator on every query. Bounded; see [`Self::recycle_pending`].
    spare: Vec<PendingQuery>,
    /// Every query id ever accepted — duplicates are never re-processed,
    /// keeping the traversal exactly-once even under retries. While the
    /// query is still pending here the duplicate is *suppressed* (the real
    /// REPLY will answer the upstream); after conclusion it is answered
    /// from [`reply_cache`](Self::reply_cache), or empty on a cache miss.
    seen: FastSet<QueryId>,
    /// Final replies of recently concluded queries, FIFO-bounded by
    /// [`ProtocolConfig::reply_cache`].
    reply_cache: FastMap<QueryId, CachedReply>,
    /// FIFO eviction order for [`reply_cache`](Self::reply_cache).
    reply_cache_order: VecDeque<QueryId>,
    config: ProtocolConfig,
    seq: u32,
    duplicate_receipts: u64,
    timeouts_fired: u64,
    /// Test-only fault re-injection: answer duplicates of still-pending
    /// queries with an unconditional empty dedup-reply (the pre-attempt-tag
    /// race). Never set outside analysis harnesses; see
    /// [`inject_empty_dedup_reply_bug`](Self::inject_empty_dedup_reply_bug).
    buggy_empty_dedup_reply: bool,
    /// Observability sink; null by default (one dead branch per emission).
    obs: ObsHandle,
}

/// Bridges a protocol [`QueryId`] to the observability layer's primitive
/// reference (the obs crate sits below this one and knows no protocol
/// types).
fn qref(id: QueryId) -> QueryRef {
    QueryRef::new(id.origin, id.seq)
}

use crate::fasthash::Fnv64 as Fnv;

impl SelectionNode {
    /// Creates a node at `point` with an empty routing table.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong arity for `space` or the space has
    /// more than 32 dimensions (the scope bitmask limit).
    pub fn new(id: NodeId, space: &Space, point: Point, config: ProtocolConfig) -> Self {
        assert!(space.dims() <= 32, "at most 32 dimensions supported");
        let coord = space.cell_coord(&point);
        SelectionNode {
            id,
            space: space.clone(),
            routing: RoutingTable::new(space.clone(), coord.clone()),
            subcells: None,
            point,
            coord,
            dynamic: FastMap::default(),
            pending: FastMap::default(),
            spare: Vec::new(),
            seen: FastSet::default(),
            reply_cache: FastMap::default(),
            reply_cache_order: VecDeque::new(),
            config,
            seq: 0,
            duplicate_receipts: 0,
            timeouts_fired: 0,
            buggy_empty_dedup_reply: false,
            obs: ObsHandle::null(),
        }
    }

    /// Re-introduces the historical dedup-reply race for mutation testing:
    /// a duplicate QUERY received while the original is still in flight is
    /// answered with an **empty** reply echoing the duplicate's attempt id,
    /// instead of being suppressed. Because a fault-duplicated copy carries
    /// the *live* attempt id, the empty reply fresh-merges upstream and
    /// clears the waiting entry before the real subtree REPLY arrives —
    /// silently discarding that subtree's results.
    ///
    /// This exists so the `autosel-analyze` explorer can prove it detects
    /// the race (the PR-4 regression) within its schedule budget. It is
    /// never enabled by any driver; the flag costs nothing on the hot path
    /// (checked only after the duplicate-receipt branch is already taken).
    #[doc(hidden)]
    pub fn inject_empty_dedup_reply_bug(&mut self) {
        self.buggy_empty_dedup_reply = true;
    }

    /// Installs an observability sink. The default is the null handle;
    /// observers are passive (they never alter protocol behaviour), so this
    /// can be called at any point in a node's life.
    pub fn set_observer(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's attribute values.
    pub fn point(&self) -> &Point {
        &self.point
    }

    /// This node's bucket coordinate.
    pub fn coord(&self) -> &CellCoord {
        &self.coord
    }

    /// The attribute space.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// This node's gossip profile (what it advertises about itself).
    pub fn profile(&self) -> NodeProfile {
        NodeProfile::new(&self.space, self.point.clone())
    }

    /// Read access to the routing table.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Mutable access to the routing table (bootstrap / maintenance).
    pub fn routing_mut(&mut self) -> &mut RoutingTable {
        &mut self.routing
    }

    /// Number of duplicate query receipts observed (§6 claims this is always
    /// zero without churn; the simulator asserts it).
    pub fn duplicate_receipts(&self) -> u64 {
        self.duplicate_receipts
    }

    /// Number of queries currently in flight through this node.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of `T(q)` expirations this node has fired (each is one
    /// neighbor presumed dead and skipped). Drivers use this to tell
    /// timeout-driven recovery apart from clean traversals.
    ///
    /// A dimensionless event count (not a duration), monotone over the
    /// node's lifetime: it is **never reset** — not by query completion,
    /// not by [`set_point`](Self::set_point) — and only returns to zero
    /// when the node value itself is rebuilt (e.g. a simulated
    /// crash-restart constructs a fresh `SelectionNode`). Each fired
    /// timeout is also emitted as an [`Event::TimeoutFired`] when an
    /// observer is installed.
    pub fn timeouts_fired(&self) -> u64 {
        self.timeouts_fired
    }

    /// The upstream (`reply_to`) edge of every in-flight query; `None`
    /// marks queries this node originated. An external checker can stitch
    /// these per-query edges together cluster-wide and assert the reply
    /// routing forms a forest (acyclic, rooted at originators).
    ///
    /// A point-in-time snapshot in no particular order: each entry exists
    /// only while its query is pending here and disappears when the query
    /// concludes (replied upstream, completed locally, or timed out) —
    /// there is no history and nothing accumulates.
    pub fn pending_upstreams(&self) -> Vec<(QueryId, Option<NodeId>)> {
        self.pending.iter().map(|(&q, p)| (q, p.reply_to)).collect()
    }

    /// Peers this node is still waiting on for query `id`, with their reply
    /// deadlines. Empty when the query is unknown or fully answered.
    ///
    /// Deadlines are **absolute timestamps in milliseconds on the driver's
    /// clock** — the same clock whose `now` values are passed into
    /// [`handle_message`](Self::handle_message) (virtual time under the
    /// simulator, wall-clock milliseconds under the network runtime) — not
    /// durations remaining. An entry is removed the moment the peer
    /// answers, is declared unreachable, or its deadline expires in
    /// [`poll_timeouts`](Self::poll_timeouts); entries never persist past
    /// their query's conclusion.
    pub fn waiting_on(&self, id: QueryId) -> Vec<(NodeId, u64)> {
        self.pending
            .get(&id)
            .map(|p| p.waiting.iter().map(|(&n, &(d, _))| (n, d)).collect())
            .unwrap_or_default()
    }

    /// Every outstanding non-deterministic decision at this node, across
    /// all in-flight queries, in a canonical (sorted) order: one
    /// [`ChoicePoint`] per `(query, awaited peer)` pair. The set is empty
    /// exactly when the node's behaviour is a pure function of the next
    /// message — i.e. nothing about its future depends on arrival order.
    ///
    /// This is the hook the `autosel-analyze` model checker enumerates
    /// schedules over; drivers may also log it to explain *why* a traversal
    /// is stalled.
    pub fn choice_points(&self) -> Vec<ChoicePoint> {
        let mut out: Vec<ChoicePoint> = self
            .pending
            .iter()
            .flat_map(|(&query, p)| {
                p.waiting
                    .iter()
                    .map(move |(&peer, &(deadline, attempt))| ChoicePoint {
                        query,
                        peer,
                        deadline,
                        attempt,
                    })
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// A 64-bit FNV-1a digest of this node's complete protocol state —
    /// pending records (scope frontier, counts, waiting map with deadlines
    /// and attempt ids), the duplicate-suppression set, the reply cache,
    /// routing links, and the monotone counters. Two nodes with equal
    /// fingerprints behave identically on every future input (modulo hash
    /// collisions), which is what lets the model checker prune revisited
    /// states soundly.
    ///
    /// Everything order-dependent is serialized in a canonical sorted
    /// order, so the digest is independent of map iteration and of the
    /// schedule that produced the state. Match *lists* are hashed as sorted
    /// id sets: their order varies with merge order but affects no protocol
    /// decision and no checked invariant.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.id);
        h.word(u64::from(self.seq));
        h.word(self.duplicate_receipts);
        h.word(self.timeouts_fired);
        for &v in self.point.values() {
            h.word(v);
        }
        let mut dynamic: Vec<(u32, attrspace::RawValue)> =
            self.dynamic.iter().map(|(&k, &v)| (k, v)).collect();
        dynamic.sort_unstable();
        for (k, v) in dynamic {
            h.word(u64::from(k));
            h.word(v);
        }

        let mut qids: Vec<QueryId> = self.pending.keys().copied().collect();
        qids.sort_unstable();
        h.word(qids.len() as u64);
        for qid in qids {
            let p = &self.pending[&qid];
            h.word(qid.origin);
            h.word(u64::from(qid.seq));
            h.word(p.level as u64);
            h.word(u64::from(p.dims));
            h.word(p.sigma.map_or(u64::MAX, u64::from));
            h.word(p.reply_to.map_or(u64::MAX, |n| n));
            h.word(u64::from(p.count_only));
            h.word(p.count);
            h.word(u64::from(p.attempt));
            h.word(u64::from(p.next_attempt));
            let mut waiting: Vec<(NodeId, u64, u32)> =
                p.waiting.iter().map(|(&n, &(d, a))| (n, d, a)).collect();
            waiting.sort_unstable();
            h.word(waiting.len() as u64);
            for (n, d, a) in waiting {
                h.word(n);
                h.word(d);
                h.word(u64::from(a));
            }
            for set in [&p.matched_ids, &p.contacted_zero, &p.visited_zero] {
                let mut ids: Vec<NodeId> = set.iter().copied().collect();
                ids.sort_unstable();
                h.word(ids.len() as u64);
                for n in ids {
                    h.word(n);
                }
            }
        }

        let mut seen: Vec<QueryId> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        h.word(seen.len() as u64);
        for qid in seen {
            h.word(qid.origin);
            h.word(u64::from(qid.seq));
        }

        let mut cached: Vec<QueryId> = self.reply_cache.keys().copied().collect();
        cached.sort_unstable();
        h.word(cached.len() as u64);
        for qid in cached {
            let c = &self.reply_cache[&qid];
            h.word(qid.origin);
            h.word(u64::from(qid.seq));
            h.word(c.to);
            h.word(c.count);
            let mut ids: Vec<NodeId> = c.matching.iter().map(|m| m.node).collect();
            ids.sort_unstable();
            for n in ids {
                h.word(n);
            }
        }

        for (level, dim, id) in self.routing.filled_slots() {
            h.word(u64::from(level));
            h.word(dim as u64);
            h.word(id);
        }
        for (id, _) in self.routing.zero_neighbors() {
            h.word(id);
        }
        h.finish()
    }

    /// Changes this node's attribute values. The routing table is rebuilt
    /// empty (own cell may have moved) and must be repopulated by gossip —
    /// no registry needs updating, which is the point of the paper.
    pub fn set_point(&mut self, point: Point) {
        self.coord = self.space.cell_coord(&point);
        self.subcells = None;
        self.point = point;
        self.routing = RoutingTable::new(self.space.clone(), self.coord.clone());
    }

    /// Sets (or updates) the current value of a dynamic attribute. Dynamic
    /// attributes are never gossiped or routed on; queries carrying a
    /// [`DynamicConstraint`] check them locally at match time (footnote 1).
    pub fn set_dynamic(&mut self, key: u32, value: attrspace::RawValue) {
        self.dynamic.insert(key, value);
    }

    /// Removes a dynamic attribute (constraints on it no longer match).
    pub fn clear_dynamic(&mut self, key: u32) {
        self.dynamic.remove(&key);
    }

    /// The current value of a dynamic attribute, if set.
    pub fn dynamic_value(&self, key: u32) -> Option<attrspace::RawValue> {
        self.dynamic.get(&key).copied()
    }

    /// Whether this node currently satisfies `query` plus the given dynamic
    /// constraints.
    fn matches_fully(&self, query: &Query, dynamic: &[DynamicConstraint]) -> bool {
        query.matches(&self.point)
            && dynamic
                .iter()
                .all(|c| c.satisfied_by(self.dynamic.get(&c.key).copied()))
    }

    /// Rebuilds the routing table from a gossip semantic view. `now` is
    /// only used to timestamp the [`Event::ViewChange`] emission; the
    /// rebuild itself is time-independent.
    pub fn sync_from_view<R: Rng + ?Sized>(
        &mut self,
        view: &View<NodeProfile>,
        now: u64,
        rng: &mut R,
    ) {
        let candidates: Vec<(NodeId, Point)> = view
            .iter()
            .map(|d| (d.id, d.profile.point().clone()))
            .collect();
        let changed = self.routing.rebuild(candidates, rng);
        self.obs.emit(|| Event::ViewChange {
            at: now,
            node: self.id,
            links: self.routing.link_count() as u32,
            zero: (self.routing.total_slots() - self.routing.slot_count()) as u32,
            changed: changed as u32,
        });
    }

    /// Issues a new query from this node (the paper's `create_QUERY`): the
    /// user contacts *any* node and passes the query to it.
    ///
    /// Returns the query id and the initial outputs (forwarded messages, or
    /// an immediate [`Output::Completed`] if this node alone satisfies it).
    pub fn begin_query(
        &mut self,
        query: Query,
        sigma: Option<u32>,
        now: u64,
    ) -> (QueryId, Vec<Output>) {
        self.begin_query_full(query, Vec::new(), sigma, now)
    }

    /// Like [`begin_query`](Self::begin_query) with additional constraints
    /// on dynamic attributes, checked locally by every candidate
    /// (footnote 1 of the paper).
    pub fn begin_query_full(
        &mut self,
        query: Query,
        dynamic: Vec<DynamicConstraint>,
        sigma: Option<u32>,
        now: u64,
    ) -> (QueryId, Vec<Output>) {
        self.begin(query, dynamic, sigma, false, now)
    }

    /// Issues a *count-only* query: the traversal is identical, but replies
    /// aggregate a single integer per subtree instead of carrying match
    /// lists — constant-size replies, exact counts (§2's Astrolabe
    /// comparison: this overlay both counts and enumerates).
    pub fn begin_count_query(
        &mut self,
        query: Query,
        dynamic: Vec<DynamicConstraint>,
        now: u64,
    ) -> (QueryId, Vec<Output>) {
        self.begin(query, dynamic, None, true, now)
    }

    fn begin(
        &mut self,
        query: Query,
        dynamic: Vec<DynamicConstraint>,
        sigma: Option<u32>,
        count_only: bool,
        now: u64,
    ) -> (QueryId, Vec<Output>) {
        let id = QueryId { origin: self.id, seq: self.seq };
        self.seq += 1;
        let msg = QueryMsg {
            id,
            query: Arc::new(query),
            sigma,
            level: self.space.max_level() as i8,
            dims: all_dims(self.space.dims()),
            dynamic,
            count_only,
            visited_zero: Vec::new(),
            attempt: 0,
        };
        let out = self.accept_query(None, msg, now);
        (id, out)
    }

    /// Processes an incoming protocol message.
    pub fn handle_message(&mut self, from: NodeId, msg: Message, now: u64) -> Vec<Output> {
        match msg {
            Message::Query(q) => self.accept_query(Some(from), q, now),
            Message::Reply(r) => self.accept_reply(from, r, now),
        }
    }

    /// The earliest deadline among in-flight queries, for driver scheduling.
    pub fn next_timeout(&self) -> Option<u64> {
        self.pending
            .values()
            .flat_map(|p| p.waiting.values().map(|&(deadline, _)| deadline))
            .min()
    }

    /// Expires overdue neighbors (the paper's `T(q)`): each is reported as
    /// [`Output::NeighborFailed`], dropped from the routing table, and the
    /// affected queries are re-forwarded or concluded.
    pub fn poll_timeouts(&mut self, now: u64) -> Vec<Output> {
        let mut out = Vec::new();
        let qids: Vec<QueryId> = self.pending.keys().copied().collect();
        for qid in qids {
            let Some(p) = self.pending.get_mut(&qid) else { continue };
            let expired: Vec<NodeId> = p
                .waiting
                .iter()
                .filter(|(_, &(deadline, _))| deadline <= now)
                .map(|(&id, _)| id)
                .collect();
            if expired.is_empty() {
                continue;
            }
            for peer in expired {
                p.waiting.remove(&peer);
                self.timeouts_fired += 1;
                self.routing.remove(peer);
                self.obs.emit(|| Event::TimeoutFired {
                    at: now,
                    query: qref(qid),
                    node: self.id,
                    peer,
                });
                out.push(Output::NeighborFailed(peer));
            }
            let p = self.pending.get(&qid).expect("still pending");
            if p.waiting.is_empty() {
                if p.sigma_met() {
                    out.extend(self.conclude(qid, now));
                } else {
                    out.extend(self.continue_query(qid, now));
                }
            }
        }
        out
    }

    /// Transport-level failure feedback: the driver discovered that `peer`
    /// is unreachable (connection refused / send failed). The link is
    /// dropped and every query waiting on `peer` continues immediately with
    /// its remaining dimensions — the subtree behind the broken link is
    /// simply skipped, which is the paper's §6.6 "message is dropped"
    /// behaviour on a real transport (a dead TCP endpoint fails fast).
    pub fn peer_unreachable(&mut self, peer: NodeId, now: u64) -> Vec<Output> {
        self.routing.remove(peer);
        let mut out = Vec::new();
        let qids: Vec<QueryId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.waiting.contains_key(&peer))
            .map(|(&q, _)| q)
            .collect();
        for qid in qids {
            let p = self.pending.get_mut(&qid).expect("just listed");
            p.waiting.remove(&peer);
            // Same signal as a `T(q)` expiry, just discovered sooner: the
            // trace records both as "stopped waiting on `peer`".
            self.obs.emit(|| Event::TimeoutFired {
                at: now,
                query: qref(qid),
                node: self.id,
                peer,
            });
            let p = self.pending.get(&qid).expect("just listed");
            if p.waiting.is_empty() {
                if p.sigma_met() {
                    out.extend(self.conclude(qid, now));
                } else {
                    out.extend(self.continue_query(qid, now));
                }
            }
        }
        out
    }

    /// The `receive_query` procedure of Fig. 5.
    fn accept_query(&mut self, from: Option<NodeId>, msg: QueryMsg, now: u64) -> Vec<Output> {
        if self.seen.contains(&msg.id) {
            // Duplicate delivery (a fault-duplicated copy or an upstream
            // retry): never re-process. How to answer depends on where the
            // original traversal stands — replying empty unconditionally is
            // exactly the race that used to drop subtree results (the empty
            // dedup-reply overtakes the real REPLY and clears the
            // upstream's waiting entry early).
            self.duplicate_receipts += 1;
            if let Some(from) = from {
                self.obs.emit(|| Event::QueryReceived {
                    at: now,
                    query: qref(msg.id),
                    node: self.id,
                    parent: from,
                    level: msg.level,
                    matched: false,
                    duplicate: true,
                });
            }
            let Some(from) = from else { return Vec::new() };
            if self.buggy_empty_dedup_reply && self.pending.contains_key(&msg.id) {
                // Mutation hook (see `inject_empty_dedup_reply_bug`): the
                // historical behaviour answered *every* duplicate empty,
                // even mid-flight — the race the explorer must detect.
                return vec![Output::Send {
                    to: from,
                    msg: Message::Reply(ReplyMsg {
                        id: msg.id,
                        matching: Vec::new(),
                        count: 0,
                        attempt: msg.attempt,
                    }),
                }];
            }
            if let Some(p) = self.pending.get_mut(&msg.id) {
                if p.reply_to == Some(from) {
                    // Still in flight for this same upstream: stay silent —
                    // the real REPLY will answer it. Track the newest
                    // attempt so a genuine retry still correlates.
                    p.attempt = msg.attempt;
                    return Vec::new();
                }
                // In flight, but the duplicate came over a different edge
                // (stale-view cross-path): that sender's subtree gets
                // nothing from us — answer empty immediately.
                return vec![Output::Send {
                    to: from,
                    msg: Message::Reply(ReplyMsg {
                        id: msg.id,
                        matching: Vec::new(),
                        count: 0,
                        attempt: msg.attempt,
                    }),
                }];
            }
            // Concluded: retransmit the cached final reply to the upstream
            // we originally answered (retries become idempotent — the copy
            // fresh-merges iff the original was lost, else its attempt id
            // marks it stale). Anyone else gets an empty reply.
            let reply = match self.reply_cache.get(&msg.id) {
                Some(c) if c.to == from => ReplyMsg {
                    id: msg.id,
                    matching: c.matching.clone(),
                    count: c.count,
                    attempt: msg.attempt,
                },
                _ => ReplyMsg {
                    id: msg.id,
                    matching: Vec::new(),
                    count: 0,
                    attempt: msg.attempt,
                },
            };
            return vec![Output::Send { to: from, msg: Message::Reply(reply) }];
        }
        self.seen.insert(msg.id);

        // Validate untrusted scope fields (C-VALIDATE): an out-of-range
        // level or dimension mask from a buggy or malicious peer must not
        // be able to panic the traversal.
        let level = msg.level.clamp(-1, self.space.max_level() as i8);
        let dims = msg.dims & all_dims(self.space.dims());

        let mut p = if let Some(mut shell) = self.spare.pop() {
            // Containers arrive emptied (recycle_pending) with capacity
            // warm; only the scalars and inputs need (re)setting.
            shell.query = msg.query;
            shell.dynamic = msg.dynamic;
            shell.sigma = msg.sigma;
            shell.level = level;
            shell.dims = dims;
            shell.reply_to = from;
            shell.count_only = msg.count_only;
            shell.count = 0;
            shell.attempt = msg.attempt;
            shell.next_attempt = 1;
            shell.visited_zero.extend(msg.visited_zero);
            shell
        } else {
            PendingQuery {
                query: msg.query,
                dynamic: msg.dynamic,
                sigma: msg.sigma,
                level,
                dims,
                reply_to: from,
                count_only: msg.count_only,
                count: 0,
                matching: Vec::new(),
                matched_ids: FastSet::default(),
                attempt: msg.attempt,
                next_attempt: 1,
                waiting: FastMap::default(),
                contacted_zero: FastSet::default(),
                visited_zero: msg.visited_zero.into_iter().collect(),
            }
        };
        let matched = self.matches_fully(&p.query, &p.dynamic);
        if matched {
            p.add_match(Match { node: self.id, values: self.point.clone() });
        }
        let qid = msg.id;
        let sigma_met = p.sigma_met();
        let (sigma, count_only) = (p.sigma, p.count_only);
        self.pending.insert(qid, p);
        self.obs.emit(|| match from {
            None => Event::QueryIssued {
                at: now,
                query: qref(qid),
                node: self.id,
                sigma,
                count_only,
                matched,
            },
            Some(parent) => Event::QueryReceived {
                at: now,
                query: qref(qid),
                node: self.id,
                parent,
                level,
                matched,
                duplicate: false,
            },
        });
        if sigma_met {
            self.conclude(qid, now)
        } else {
            self.continue_query(qid, now)
        }
    }

    /// The `receive_reply` procedure of Fig. 5.
    fn accept_reply(&mut self, from: NodeId, msg: ReplyMsg, now: u64) -> Vec<Output> {
        let Some(p) = self.pending.get_mut(&msg.id) else {
            // Late reply for a concluded query: results already reported
            // upstream without it; nothing to do.
            self.obs.emit(|| Event::ReplyMerged {
                at: now,
                query: qref(msg.id),
                node: self.id,
                from,
                count: msg.count,
                fresh: false,
                attempt: msg.attempt,
            });
            return Vec::new();
        };
        // Fresh iff we still wait on `from` *for this exact attempt*. A
        // reply echoing a superseded attempt must not clear the waiting
        // entry — the reply to the live attempt is still owed, and removing
        // the entry here is what used to conclude the upstream early.
        let fresh = match p.waiting.get(&from) {
            Some(&(_, attempt)) if attempt == msg.attempt => {
                // Waiting entries only ever hold attempt ids this node
                // stamped, all below `next_attempt` — a fresh merge echoing
                // an id never issued means the waiting map was corrupted.
                debug_assert!(
                    msg.attempt < p.next_attempt,
                    "query {} merged reply echoing unissued attempt {} (next: {})",
                    msg.id,
                    msg.attempt,
                    p.next_attempt
                );
                p.waiting.remove(&from);
                true
            }
            _ => false,
        };
        self.obs.emit(|| Event::ReplyMerged {
            at: now,
            query: qref(msg.id),
            node: self.id,
            from,
            count: msg.count,
            fresh,
            attempt: msg.attempt,
        });
        if p.count_only {
            // Counts carry no node identity, so the attempt-tagged waiting
            // entry is the only witness of "not yet merged": each attempt
            // id is added at most once, no matter how many copies of the
            // reply arrive. Enumerate mode is naturally immune —
            // `matched_ids` dedups.
            if fresh {
                p.count += msg.count;
            }
        } else {
            for m in msg.matching {
                p.add_match(m);
            }
        }
        if !p.waiting.is_empty() {
            return Vec::new();
        }
        if p.sigma_met() || p.level < 0 {
            self.conclude(msg.id, now)
        } else {
            self.continue_query(msg.id, now)
        }
    }

    /// The `forward` procedure of Fig. 5: depth-first, one subtree at a time.
    ///
    /// Scans levels from the query's frontier downwards; at each level scans
    /// the still-allowed dimensions in increasing order and forwards to the
    /// first neighboring subcell that overlaps `Q(q)` and has a known
    /// occupant. The increasing-dimension order is what guarantees the
    /// subtrees explored by the receiver are disjoint from everything this
    /// node will explore later (exactly-once delivery; see
    /// `tests/routing_properties.rs`).
    fn continue_query(&mut self, qid: QueryId, now: u64) -> Vec<Output> {
        let deadline = now.saturating_add(self.config.query_timeout_ms);
        let d = self.space.dims();
        if self.subcells.is_none() {
            self.subcells = Some(self.coord.subcell_index());
        }
        let subcells = self.subcells.as_ref().expect("just built");
        let p = self.pending.get_mut(&qid).expect("pending query");
        let mut out = Vec::new();

        while p.level > 0 {
            let level = p.level as Level;
            for dim in 0..d {
                if p.dims & (1 << dim) == 0 {
                    continue;
                }
                let subcell = subcells.neighboring_cell(level, dim);
                if !p.query.region().intersects(subcell) {
                    continue;
                }
                // The subcell overlaps the query. Forward to our link there,
                // pruning this dimension from both our own frontier and the
                // forwarded scope (prevents backward propagation, Fig.5 l.4).
                p.dims &= !(1 << dim);
                if let Some(link) = self.routing.neighbor(level, dim) {
                    let attempt = p.next_attempt;
                    p.next_attempt += 1;
                    // Attempt monotonicity: every freshly stamped id must
                    // strictly exceed everything still awaited, or a stale
                    // reply could masquerade as the live one.
                    debug_assert!(
                        p.waiting.values().all(|&(_, a)| a < attempt),
                        "query {qid} stamped non-monotone attempt {attempt}"
                    );
                    let fwd = QueryMsg {
                        id: qid,
                        query: p.query.clone(),
                        sigma: p.sigma,
                        level: p.level,
                        dims: p.dims,
                        dynamic: p.dynamic.clone(),
                        count_only: p.count_only,
                        visited_zero: Vec::new(),
                        attempt,
                    };
                    p.waiting.insert(link, (deadline, attempt));
                    let (to, fwd_level) = (link, p.level);
                    self.obs.emit(|| Event::QueryForwarded {
                        at: now,
                        query: qref(qid),
                        from: self.id,
                        to,
                        level: fwd_level,
                        attempt,
                    });
                    out.push(Output::Send { to, msg: Message::Query(fwd) });
                    return out;
                }
                // No known node in that subcell: treat as empty and keep
                // scanning (delivery may suffer only if the view is stale).
            }
            p.level -= 1;
            p.dims = all_dims(d);
        }

        let do_zero_fanout = p.level == 0 || (p.level == -1 && self.config.c0_relay);
        if do_zero_fanout {
            // Leaf level: hand the query to every matching C0 neighbor not
            // yet contacted; they answer directly (level -1). With the C0
            // relay enabled, leaf receivers forward once more to same-cell
            // mates absent from the message's visited set — the epidemic
            // broadcast of §4.1 for densely populated cells.
            let mut targets = Vec::new();
            for (nid, npoint) in self.routing.zero_neighbors() {
                if p.query.matches(npoint)
                    && !p.matched_ids.contains(&nid)
                    && !p.contacted_zero.contains(&nid)
                    && !p.visited_zero.contains(&nid)
                {
                    targets.push(nid);
                }
            }
            let mut visited: Vec<NodeId> = p
                .visited_zero
                .iter()
                .copied()
                .chain(targets.iter().copied())
                .chain([self.id])
                .collect();
            visited.sort_unstable();
            visited.dedup();
            for id in targets {
                let attempt = p.next_attempt;
                p.next_attempt += 1;
                debug_assert!(
                    p.waiting.values().all(|&(_, a)| a < attempt),
                    "query {qid} stamped non-monotone attempt {attempt}"
                );
                let fwd = QueryMsg {
                    id: qid,
                    query: p.query.clone(),
                    sigma: p.sigma,
                    level: -1,
                    dims: 0,
                    dynamic: p.dynamic.clone(),
                    count_only: p.count_only,
                    visited_zero: visited.clone(),
                    attempt,
                };
                p.waiting.insert(id, (deadline, attempt));
                p.contacted_zero.insert(id);
                self.obs.emit(|| Event::QueryForwarded {
                    at: now,
                    query: qref(qid),
                    from: self.id,
                    to: id,
                    level: -1,
                    attempt,
                });
                out.push(Output::Send { to: id, msg: Message::Query(fwd) });
            }
            p.level = -1;
            if !out.is_empty() {
                return out;
            }
        }

        if p.waiting.is_empty() {
            out.extend(self.conclude(qid, now));
        }
        out
    }

    /// Finishes a query at this node: answer upstream, or report completion
    /// when this node originated it.
    fn conclude(&mut self, qid: QueryId, now: u64) -> Vec<Output> {
        let p = self.pending.remove(&qid).expect("pending query");
        debug_assert!(
            p.waiting.is_empty(),
            "query {qid} concluded with {} live subtree(s) still waiting",
            p.waiting.len()
        );
        debug_assert!(
            !self.reply_cache.contains_key(&qid),
            "query {qid} concluded twice: final reply already cached"
        );
        // A conclusion with unexplored scope left (level ≥ 0) can only mean
        // the σ bound cut the traversal short here.
        if p.sigma_met() && p.level >= 0 {
            self.obs.emit(|| Event::SigmaStop {
                at: now,
                query: qref(qid),
                node: self.id,
                count: p.count,
            });
        }
        let mut p = p;
        let matching = std::mem::take(&mut p.matching);
        let (reply_to, count, attempt) = (p.reply_to, p.count, p.attempt);
        self.recycle_pending(p);
        match reply_to {
            Some(upstream) => {
                self.obs.emit(|| Event::ReplySent {
                    at: now,
                    query: qref(qid),
                    node: self.id,
                    to: upstream,
                    count,
                    attempt,
                });
                if self.config.reply_cache > 0 {
                    // Keep the final answer around so duplicate QUERYs
                    // arriving after this point get the real reply again
                    // instead of a results-destroying empty one.
                    while self.reply_cache_order.len() >= self.config.reply_cache {
                        let evict = self.reply_cache_order.pop_front().expect("non-empty");
                        self.reply_cache.remove(&evict);
                    }
                    self.reply_cache.insert(
                        qid,
                        CachedReply { to: upstream, matching: matching.clone(), count },
                    );
                    self.reply_cache_order.push_back(qid);
                }
                vec![Output::Send {
                    to: upstream,
                    msg: Message::Reply(ReplyMsg { id: qid, matching, count, attempt }),
                }]
            }
            None => {
                self.obs.emit(|| Event::QueryCompleted {
                    at: now,
                    query: qref(qid),
                    node: self.id,
                    count,
                });
                vec![Output::Completed { id: qid, matches: matching, count }]
            }
        }
    }

    /// Returns a concluded record's shell to the [`spare`](Self::spare)
    /// pool, emptied, so the next accepted query re-uses its container
    /// capacity. The pool is small and bounded: a node concludes queries
    /// one at a time, so a handful of shells covers any burst, and an
    /// unbounded pool would slowly pin the peak working set forever.
    fn recycle_pending(&mut self, mut p: PendingQuery) {
        const SPARE_CAP: usize = 4;
        if self.spare.len() >= SPARE_CAP {
            return;
        }
        p.matching.clear();
        p.dynamic.clear();
        p.matched_ids.clear();
        p.waiting.clear();
        p.contacted_zero.clear();
        p.visited_zero.clear();
        self.spare.push(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrspace::Query;

    fn space() -> Space {
        Space::uniform(2, 80, 3).expect("valid 2-d space geometry")
    }

    fn node(id: NodeId, vals: [u64; 2]) -> SelectionNode {
        let s = space();
        SelectionNode::new(id, &s, s.point(&vals).expect("coords lie inside the space"), ProtocolConfig::default())
    }

    fn deliver(to: &mut SelectionNode, from: NodeId, out: &[Output], now: u64) -> Vec<Output> {
        let mut produced = Vec::new();
        for o in out {
            if let Output::Send { to: dst, msg } = o {
                assert_eq!(*dst, to.id());
                produced.extend(to.handle_message(from, msg.clone(), now));
            }
        }
        produced
    }

    #[test]
    fn self_match_with_sigma_one_completes_locally() {
        let mut a = node(1, [70, 70]);
        let q = Query::builder(&space()).min("a0", 60).build().expect("well-formed query");
        let (id, out) = a.begin_query(q, Some(1), 0);
        assert_eq!(out.len(), 1);
        let Output::Completed { id: got, matches, .. } = &out[0] else {
            panic!("expected completion, got {out:?}")
        };
        assert_eq!(*got, id);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].node, 1);
        assert_eq!(a.pending_len(), 0);
    }

    #[test]
    fn no_neighbors_no_match_completes_empty() {
        let mut a = node(1, [5, 5]);
        let q = Query::builder(&space()).min("a0", 60).build().expect("well-formed query");
        let (_, out) = a.begin_query(q, None, 0);
        let Output::Completed { matches, .. } = &out[0] else { panic!("{out:?}") };
        assert!(matches.is_empty());
    }

    #[test]
    fn two_hop_query_and_reply() {
        let mut a = node(1, [5, 5]);
        let mut b = node(2, [70, 70]);
        a.routing_mut().observe(2, b.point().clone());
        let q = Query::builder(&space()).min("a0", 60).min("a1", 60).build().expect("well-formed query");
        let (qid, out) = a.begin_query(q, None, 0);
        // A forwards to B (the only link toward the query region).
        assert!(matches!(&out[0], Output::Send { to: 2, msg: Message::Query(_) }));
        let replies = deliver(&mut b, 1, &out, 1);
        // B matches, has no further links, replies.
        let Output::Send { to: 1, msg: Message::Reply(r) } = &replies[0] else {
            panic!("{replies:?}")
        };
        assert_eq!(r.matching.len(), 1);
        let done = deliver(&mut a, 2, &replies, 2);
        let Output::Completed { id, matches, .. } = &done[0] else { panic!("{done:?}") };
        assert_eq!(*id, qid);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].node, 2);
        assert_eq!(a.pending_len(), 0);
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn zero_level_fans_out_to_all_matching_c0_mates() {
        let s = space();
        let mut a = node(1, [5, 5]);
        // Three C0 mates, two of which match the query.
        a.routing_mut().observe(2, s.point(&[6, 6]).expect("coords lie inside the space"));
        a.routing_mut().observe(3, s.point(&[7, 7]).expect("coords lie inside the space"));
        a.routing_mut().observe(4, s.point(&[3, 3]).expect("coords lie inside the space"));
        let q = Query::builder(&s).range("a0", 5, 9).range("a1", 5, 9).build().expect("well-formed query");
        let (_, out) = a.begin_query(q.clone(), None, 0);
        let targets: FastSet<NodeId> = out
            .iter()
            .filter_map(|o| match o {
                Output::Send { to, msg: Message::Query(m) } => {
                    assert_eq!(m.level, -1, "leaf delivery");
                    Some(*to)
                }
                _ => None,
            })
            .collect();
        assert_eq!(targets, [2, 3].into_iter().collect::<FastSet<NodeId>>());

        // Leaves answer immediately with themselves only.
        let mut b = node(2, [6, 6]);
        let leaf_out = deliver(
            &mut b,
            1,
            &out.iter()
                .filter(|o| matches!(o, Output::Send { to: 2, .. }))
                .cloned()
                .collect::<Vec<_>>(),
            1,
        );
        let Output::Send { to: 1, msg: Message::Reply(r) } = &leaf_out[0] else {
            panic!("{leaf_out:?}")
        };
        assert_eq!(r.matching.len(), 1);
        assert_eq!(r.matching[0].node, 2);
        assert_eq!(b.pending_len(), 0, "leaf keeps no state");
    }

    fn leaf_query(id: QueryId, attempt: u32) -> QueryMsg {
        QueryMsg {
            id,
            query: Query::builder(&space()).build().expect("well-formed query").into(),
            sigma: None,
            level: -1,
            dims: 0,
            dynamic: Vec::new(),
            count_only: false,
            visited_zero: Vec::new(),
            attempt,
        }
    }

    /// A duplicate QUERY arriving *after* the node already answered is met
    /// with a cached copy of the real reply (echoing the duplicate's
    /// attempt id), so an upstream whose original REPLY was lost recovers
    /// the actual results from a retry — never a results-destroying empty.
    #[test]
    fn duplicate_query_retransmits_cached_reply() {
        let mut a = node(1, [5, 5]);
        let msg = leaf_query(QueryId { origin: 9, seq: 0 }, 3);
        let first = a.handle_message(9, Message::Query(msg.clone()), 0);
        let Output::Send { to: 9, msg: Message::Reply(r) } = &first[0] else { panic!("{first:?}") };
        assert_eq!(r.matching.len(), 1);
        assert_eq!(r.attempt, 3, "reply echoes the query's attempt id");

        let second = a.handle_message(9, Message::Query(msg.clone()), 1);
        let Output::Send { to: 9, msg: Message::Reply(r) } = &second[0] else { panic!("{second:?}") };
        assert_eq!(r.matching.len(), 1, "duplicate answered from the reply cache");
        assert_eq!(r.count, 1);
        assert_eq!(r.attempt, 3);
        assert_eq!(a.duplicate_receipts(), 1);

        // A copy arriving over a *different* edge is a cross-path delivery:
        // that sender gets nothing from this subtree — empty, not cached.
        let third = a.handle_message(8, Message::Query(msg), 2);
        let Output::Send { to: 8, msg: Message::Reply(r) } = &third[0] else { panic!("{third:?}") };
        assert!(r.matching.is_empty(), "cross-path duplicate answered empty");
        assert_eq!(a.duplicate_receipts(), 2);
    }

    /// With the cache disabled (`reply_cache: 0`) a post-conclusion
    /// duplicate falls back to the empty dedup-reply.
    #[test]
    fn reply_cache_zero_disables_retransmission() {
        let s = space();
        let cfg = ProtocolConfig { reply_cache: 0, ..ProtocolConfig::default() };
        let mut a = SelectionNode::new(1, &s, s.point(&[5, 5]).expect("coords lie inside the space"), cfg);
        let msg = leaf_query(QueryId { origin: 9, seq: 0 }, 1);
        let _ = a.handle_message(9, Message::Query(msg.clone()), 0);
        let second = a.handle_message(9, Message::Query(msg), 1);
        let Output::Send { msg: Message::Reply(r), .. } = &second[0] else { panic!() };
        assert!(r.matching.is_empty(), "no cache, duplicate answered empty");
    }

    /// The cache is FIFO-bounded: concluding more upstream queries than
    /// `reply_cache` evicts the oldest entry, whose duplicates then answer
    /// empty again.
    #[test]
    fn reply_cache_evicts_fifo_at_its_bound() {
        let s = space();
        let cfg = ProtocolConfig { reply_cache: 2, ..ProtocolConfig::default() };
        let mut a = SelectionNode::new(1, &s, s.point(&[5, 5]).expect("coords lie inside the space"), cfg);
        for seq in 0..3 {
            let msg = leaf_query(QueryId { origin: 9, seq }, 1);
            let _ = a.handle_message(9, Message::Query(msg), u64::from(seq));
        }
        // seq 0 was evicted (bound 2), seqs 1 and 2 are still cached.
        let dup0 = a.handle_message(9, Message::Query(leaf_query(QueryId { origin: 9, seq: 0 }, 1)), 10);
        let Output::Send { msg: Message::Reply(r), .. } = &dup0[0] else { panic!() };
        assert!(r.matching.is_empty(), "evicted entry answers empty");
        let dup2 = a.handle_message(9, Message::Query(leaf_query(QueryId { origin: 9, seq: 2 }, 1)), 11);
        let Output::Send { msg: Message::Reply(r), .. } = &dup2[0] else { panic!() };
        assert_eq!(r.matching.len(), 1, "recent entry still cached");
    }

    /// The root of the PR-1 caveat: a duplicate QUERY arriving while the
    /// receiver's subtree is still in flight must be *suppressed*, not
    /// answered empty — the empty dedup-reply is exactly what used to race
    /// ahead of the real REPLY and make the upstream conclude early.
    #[test]
    fn duplicate_while_pending_is_suppressed() {
        let s = space();
        let mut b = node(2, [5, 5]);
        // B will forward into the query region, so the query stays pending.
        b.routing_mut().observe(3, s.point(&[70, 70]).expect("coords lie inside the space"));
        let msg = QueryMsg {
            id: QueryId { origin: 1, seq: 0 },
            query: Query::builder(&s).min("a0", 60).build().expect("well-formed query").into(),
            sigma: None,
            level: 3,
            dims: all_dims(2),
            dynamic: Vec::new(),
            count_only: false,
            visited_zero: Vec::new(),
            attempt: 7,
        };
        let first = b.handle_message(1, Message::Query(msg.clone()), 0);
        assert!(
            matches!(&first[0], Output::Send { to: 3, msg: Message::Query(_) }),
            "query forwarded into its subtree: {first:?}"
        );
        assert_eq!(b.pending_len(), 1);
        let second = b.handle_message(1, Message::Query(msg), 1);
        assert!(second.is_empty(), "duplicate while pending must stay silent: {second:?}");
        assert_eq!(b.duplicate_receipts(), 1);

        // The real subtree reply still flows upstream afterwards, echoing
        // the upstream's attempt id.
        let sub = b.handle_message(
            3,
            Message::Reply(ReplyMsg { id: QueryId { origin: 1, seq: 0 }, matching: Vec::new(), count: 0, attempt: 1 }),
            2,
        );
        let Some(Output::Send { to: 1, msg: Message::Reply(r) }) = sub.last() else {
            panic!("{sub:?}")
        };
        assert_eq!(r.attempt, 7);
    }

    #[test]
    fn timeout_reports_failure_and_concludes() {
        let mut a = node(1, [5, 5]);
        let mut dead = node(2, [70, 70]);
        a.routing_mut().observe(2, dead.point().clone());
        let q = Query::builder(&space()).min("a0", 60).build().expect("well-formed query");
        let (qid, out) = a.begin_query(q, None, 0);
        assert!(matches!(&out[0], Output::Send { to: 2, .. }));
        let _ = &mut dead; // never answers

        assert_eq!(a.next_timeout(), Some(ProtocolConfig::default().query_timeout_ms));
        let out = a.poll_timeouts(ProtocolConfig::default().query_timeout_ms);
        assert!(out.contains(&Output::NeighborFailed(2)));
        let Some(Output::Completed { id, matches, .. }) = out.last() else { panic!("{out:?}") };
        assert_eq!(*id, qid);
        assert!(matches.is_empty());
        assert!(a.routing().neighbor(3, 0).is_none(), "dead link dropped");
    }

    #[test]
    fn late_reply_after_timeout_is_ignored() {
        let mut a = node(1, [5, 5]);
        let b = node(2, [70, 70]);
        a.routing_mut().observe(2, b.point().clone());
        let q = Query::builder(&space()).min("a0", 60).build().expect("well-formed query");
        let (qid, _) = a.begin_query(q, None, 0);
        let _ = a.poll_timeouts(u64::MAX);
        let out = a.handle_message(
            2,
            Message::Reply(ReplyMsg {
                id: qid,
                matching: vec![Match { node: 2, values: b.point().clone() }],
                count: 1,
                attempt: 1,
            }),
            99,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn sigma_zero_completes_immediately() {
        // Per Fig. 5 the node adds itself to `matching` *before* the σ
        // check, so σ=0 still reports the local self-match — but nothing is
        // ever forwarded.
        let mut a = node(1, [70, 70]);
        a.routing_mut().observe(2, space().point(&[5, 5]).expect("coords lie inside the space"));
        let q = Query::builder(&space()).build().expect("well-formed query");
        let (_, out) = a.begin_query(q, Some(0), 0);
        assert_eq!(out.len(), 1, "no forwarding under met σ");
        let Output::Completed { matches, .. } = &out[0] else { panic!("{out:?}") };
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].node, 1);
    }

    #[test]
    fn set_point_moves_cell_and_clears_routing() {
        let mut a = node(1, [5, 5]);
        a.routing_mut().observe(2, space().point(&[6, 6]).expect("coords lie inside the space"));
        assert_eq!(a.routing().link_count(), 1);
        a.set_point(space().point(&[75, 75]).expect("coords lie inside the space"));
        assert_eq!(a.coord().indices(), &[7, 7]);
        assert_eq!(a.routing().link_count(), 0);
    }

    #[test]
    fn reply_merging_dedupes_matches() {
        let mut a = node(1, [5, 5]);
        let s = space();
        let b_point = s.point(&[70, 5]).expect("coords lie inside the space");
        let c_point = s.point(&[5, 70]).expect("coords lie inside the space");
        a.routing_mut().observe(2, b_point.clone());
        a.routing_mut().observe(3, c_point.clone());
        // Query spanning both neighbors' cells (but not A's).
        let q = Query::builder(&s)
            .range("a0", 60, 79)
            .build()
            .expect("well-formed query");
        let (qid, out1) = a.begin_query(q, None, 0);
        // First subtree: B replies claiming both B and (spuriously) B again.
        let Output::Send { to: first, .. } = &out1[0] else { panic!() };
        let dup = Match { node: 2, values: b_point.clone() };
        let out2 = a.handle_message(
            *first,
            Message::Reply(ReplyMsg { id: qid, matching: vec![dup.clone(), dup], count: 2, attempt: 1 }),
            1,
        );
        // Traversal continues or concludes; once concluded, count node 2 once.
        let finished: Vec<&Output> = out2
            .iter()
            .chain(
                [].iter(), // placeholder to keep types simple
            )
            .collect();
        let mut all = finished;
        let extra;
        if a.pending_len() > 0 {
            // Another branch outstanding: time it out to conclude.
            extra = a.poll_timeouts(u64::MAX);
            all.extend(extra.iter());
        }
        let completed = all.iter().find_map(|o| match o {
            Output::Completed { matches, .. } => Some(matches),
            _ => None,
        });
        let matches = completed.expect("query concluded");
        assert_eq!(matches.iter().filter(|m| m.node == 2).count(), 1);
    }

    /// Counts carry no node identity, so the only witness that a subtree
    /// was already merged is the waiting set: a duplicated REPLY delivery
    /// must be merged exactly once, not once per copy. The two neighbors
    /// sit in *different* subcells of the query region, so the traversal
    /// is still waiting on the second when the duplicate of the first's
    /// reply arrives.
    #[test]
    fn duplicated_reply_counts_once_in_count_mode() {
        let s = space();
        let mut a = node(1, [5, 5]);
        a.routing_mut().observe(2, s.point(&[70, 70]).expect("coords lie inside the space")); // N(3,0)
        a.routing_mut().observe(3, s.point(&[5, 70]).expect("coords lie inside the space")); // N(3,1)
        let q = Query::builder(&s).min("a1", 60).build().expect("well-formed query");
        let (qid, out) = a.begin_count_query(q, Vec::new(), 0);
        let Output::Send { to: first, .. } = &out[0] else { panic!("{out:?}") };

        let reply = Message::Reply(ReplyMsg { id: qid, matching: Vec::new(), count: 5, attempt: 1 });
        let mut outs = a.handle_message(*first, reply.clone(), 1);
        assert_eq!(a.pending_len(), 1, "second subcell still outstanding");
        // The same reply delivered again (a duplication fault).
        outs.extend(a.handle_message(*first, reply, 2));
        // Time out the remaining branch so the query concludes.
        outs.extend(a.poll_timeouts(u64::MAX));
        let total = outs.iter().find_map(|o| match o {
            Output::Completed { count, .. } => Some(*count),
            _ => None,
        });
        assert_eq!(total, Some(5), "duplicated reply merged more than once");
    }

    /// Count-mode end to end under QUERY duplication: the downstream node
    /// answers the duplicate with a cached *retransmission* of its real
    /// count reply, and the upstream — still waiting on a second subtree —
    /// must add that count at most once per attempt id, no matter how many
    /// copies (original + retransmissions) arrive.
    #[test]
    fn retransmitted_count_reply_merges_once_per_attempt() {
        let s = space();
        let mut a = node(1, [5, 5]);
        a.routing_mut().observe(2, s.point(&[70, 70]).expect("coords lie inside the space")); // N(3,0)
        a.routing_mut().observe(3, s.point(&[5, 70]).expect("coords lie inside the space")); // N(3,1)
        let q = Query::builder(&s).min("a1", 60).build().expect("well-formed query");
        let (qid, out) = a.begin_count_query(q, Vec::new(), 0);
        let Output::Send { to: first, msg: Message::Query(fwd) } = &out[0] else {
            panic!("{out:?}")
        };

        // The downstream leaf B processes the forward, then a duplicated
        // copy of the same forward: the second answer is the cached
        // retransmission of the first, byte-identical.
        let mut b = SelectionNode::new(*first, &s, s.point(&[70, 70]).expect("coords lie inside the space"), ProtocolConfig::default());
        let r1 = b.handle_message(1, Message::Query(fwd.clone()), 1);
        let r2 = b.handle_message(1, Message::Query(fwd.clone()), 2);
        let Output::Send { msg: Message::Reply(reply1), .. } = &r1[0] else { panic!("{r1:?}") };
        let Output::Send { msg: Message::Reply(reply2), .. } = &r2[0] else { panic!("{r2:?}") };
        assert_eq!(reply1, reply2, "retransmission replays the real reply");
        assert_eq!(reply1.count, 1, "B matched itself");

        // Both copies reach A while it still waits on the second subtree.
        let mut outs = a.handle_message(*first, Message::Reply(reply1.clone()), 3);
        outs.extend(a.handle_message(*first, Message::Reply(reply2.clone()), 4));
        assert_eq!(a.pending_len(), 1, "second subcell still outstanding");
        outs.extend(a.poll_timeouts(u64::MAX));
        let total = outs.iter().find_map(|o| match o {
            Output::Completed { count, .. } => Some(*count),
            _ => None,
        });
        assert_eq!(*outs
            .iter()
            .filter_map(|o| match o {
                Output::Completed { id, .. } => Some(id),
                _ => None,
            })
            .next()
            .expect("concluded"), qid);
        assert_eq!(total, Some(1), "retransmitted count added more than once per attempt");
    }

    /// The §4.1 epidemic relay: leaf receivers re-forward to same-`C0`
    /// mates the sender did not know. Four nodes share one `C0` cell but
    /// each knows only its ring successor (A→B→C→D→A), so full coverage
    /// *requires* relaying — and D's link back to A is exactly the edge
    /// that would re-deliver the query if the message's `visited_zero` set
    /// did not suppress it.
    #[test]
    fn c0_relay_covers_the_cell_without_duplicate_deliveries() {
        use std::collections::VecDeque;

        let s = Space::uniform(1, 80, 1).expect("valid 1-d space geometry");
        let run = |c0_relay: bool| -> (Vec<NodeId>, FastMap<NodeId, u32>, u64) {
            let cfg = ProtocolConfig { c0_relay, ..ProtocolConfig::default() };
            let mut nodes: FastMap<NodeId, SelectionNode> = (0..4)
                .map(|id| {
                    (id, SelectionNode::new(id, &s, s.point(&[id + 1]).expect("coords lie inside the space"), cfg.clone()))
                })
                .collect();
            for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
                let p = nodes[&b].point().clone();
                nodes.get_mut(&a).expect("node wired into the ring").routing_mut().observe(b, p);
            }
            let q = Query::builder(&s).range("a0", 0, 39).build().expect("well-formed query");
            let (_, outs) = nodes.get_mut(&0).expect("node wired into the ring").begin_query(q, None, 0);

            let mut receipts: FastMap<NodeId, u32> = FastMap::default();
            let mut inbox: VecDeque<(NodeId, NodeId, Message)> = VecDeque::new();
            let mut completed: Option<Vec<Match>> = None;
            let absorb = |from: NodeId,
                          outs: Vec<Output>,
                          inbox: &mut VecDeque<(NodeId, NodeId, Message)>,
                          completed: &mut Option<Vec<Match>>| {
                for o in outs {
                    match o {
                        Output::Send { to, msg } => inbox.push_back((from, to, msg)),
                        Output::Completed { matches, .. } => *completed = Some(matches),
                        Output::NeighborFailed(_) => panic!("all nodes alive"),
                    }
                }
            };
            absorb(0, outs, &mut inbox, &mut completed);
            let mut now = 1;
            while let Some((from, to, msg)) = inbox.pop_front() {
                if matches!(msg, Message::Query(_)) {
                    *receipts.entry(to).or_insert(0) += 1;
                }
                let outs = nodes.get_mut(&to).expect("node wired into the ring").handle_message(from, msg, now);
                now += 1;
                absorb(to, outs, &mut inbox, &mut completed);
            }
            let mut got: Vec<NodeId> =
                completed.expect("concluded").iter().map(|m| m.node).collect();
            got.sort_unstable();
            let dups = nodes.values().map(|n| n.duplicate_receipts()).sum();
            for n in nodes.values() {
                assert_eq!(n.pending_len(), 0, "no residual state");
            }
            (got, receipts, dups)
        };

        // Without the relay, A's leaf fan-out stops at its only known mate.
        let (reached_off, _, _) = run(false);
        assert_eq!(reached_off, vec![0, 1]);

        // With it, the query percolates the whole cell…
        let (reached_on, receipts, dups) = run(true);
        assert_eq!(reached_on, vec![0, 1, 2, 3]);
        // …and `visited_zero` suppresses the ring-closing edge D→A: every
        // node received the query exactly once, none twice.
        for (&node, &count) in &receipts {
            assert_eq!(count, 1, "node {node} received {count} deliveries");
        }
        assert!(!receipts.contains_key(&0), "nothing re-delivered to the origin");
        assert_eq!(dups, 0, "the dedup set left nothing for the seen-set to catch");
    }
}
