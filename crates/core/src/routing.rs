use std::fmt;

use attrspace::{CellCoord, Level, Neighborhood, Point, Space};
use epigossip::NodeId;
use rand::Rng;

/// A routing-table entry: a peer plus the attribute values it advertised.
///
/// This is the *currency* of bootstrap and observation — the table itself
/// does not store entries. Slots keep only the chosen peer's id (the
/// routing decision needs nothing else), and the `neighborsZero` set keeps
/// `(id, point)` pairs (the fanout matches against points); coordinates
/// are never stored, since a slot peer's coordinate is recomputable and a
/// `C0` mate's coordinate *is* this node's own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborEntry {
    /// The peer's id.
    pub id: NodeId,
    /// The peer's advertised attribute values.
    pub point: Point,
    /// The peer's bucket coordinate.
    pub coord: CellCoord,
}

/// Sentinel for an empty `(l,k)` slot; node ids are dense from zero and
/// never reach it.
const EMPTY: NodeId = NodeId::MAX;

/// The per-node routing state of §4.1: one selected neighbor `n(l,k)` per
/// neighboring subcell `N(l,k)` (empty slots mean no known node in that
/// subcell) plus the `neighborsZero` set of all known same-`C0` nodes.
///
/// The number of slots is `d × max(l)` — linear in the number of dimensions,
/// which is the property that lets the protocol scale to high-dimensional
/// attribute spaces where CAN/Voronoi-style partitioning explodes.
///
/// Storage is struct-of-arrays and id-centric: slots are a bare
/// `Vec<NodeId>` (8 bytes each instead of a ~48-byte `Option<NeighborEntry>`)
/// and the zero set is a sorted id column with a parallel point column —
/// at a million nodes the routing layer's footprint is dominated by what
/// queries actually read, nothing else.
pub struct RoutingTable {
    space: Space,
    own: CellCoord,
    /// Slot `(level-1) * d + dim` holds the chosen neighbor's id in
    /// `N(level,dim)`, or [`EMPTY`].
    slots: Vec<NodeId>,
    /// Ids of all known nodes of this node's own `C0` cell, sorted
    /// ascending (the determinism order the old `BTreeMap` provided).
    zero_ids: Vec<NodeId>,
    /// Advertised points of the `C0` mates, parallel to `zero_ids`.
    zero_points: Vec<Point>,
}

impl fmt::Debug for RoutingTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoutingTable")
            .field("own", &self.own)
            .field("links", &self.link_count())
            .field("zero", &self.zero_ids.len())
            .finish_non_exhaustive()
    }
}

impl RoutingTable {
    /// Creates an empty table for a node at `own` in `space`.
    pub fn new(space: Space, own: CellCoord) -> Self {
        let slots = vec![EMPTY; space.dims() * space.max_level() as usize];
        RoutingTable { space, own, slots, zero_ids: Vec::new(), zero_points: Vec::new() }
    }

    fn slot_index(&self, level: Level, dim: usize) -> usize {
        debug_assert!(level >= 1 && level <= self.space.max_level());
        debug_assert!(dim < self.space.dims());
        (level as usize - 1) * self.space.dims() + dim
    }

    /// The space this table routes in.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// This node's own coordinate.
    pub fn own_coord(&self) -> &CellCoord {
        &self.own
    }

    /// The chosen neighbor `n(l,k)`, if any node is known in `N(l,k)`.
    pub fn neighbor(&self, level: Level, dim: usize) -> Option<NodeId> {
        let id = self.slots[self.slot_index(level, dim)];
        (id != EMPTY).then_some(id)
    }

    /// The `neighborsZero` set: all known nodes of this node's `C0` cell
    /// with their advertised points, ascending by id.
    pub fn zero_neighbors(&self) -> impl Iterator<Item = (NodeId, &Point)> {
        self.zero_ids.iter().copied().zip(self.zero_points.iter())
    }

    /// Number of same-`C0` links.
    pub fn zero_count(&self) -> usize {
        self.zero_ids.len()
    }

    /// Number of non-empty `(l,k)` slots.
    pub fn slot_count(&self) -> usize {
        self.slots.iter().filter(|&&s| s != EMPTY).count()
    }

    /// Total `(l,k)` slots, filled or not (`d × max(l)`).
    pub fn total_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total links maintained (Fig. 10's metric: slot links + `C0` links).
    pub fn link_count(&self) -> usize {
        self.slot_count() + self.zero_ids.len()
    }

    /// Records a `C0` mate, keeping the id column sorted; a re-observation
    /// refreshes the stored point (last write wins, as the old map did).
    fn upsert_zero(&mut self, id: NodeId, point: Point) {
        match self.zero_ids.binary_search(&id) {
            Ok(i) => self.zero_points[i] = point,
            Err(i) => {
                self.zero_ids.insert(i, id);
                self.zero_points.insert(i, point);
            }
        }
    }

    /// Classifies and records a peer: same-`C0` peers join `neighborsZero`;
    /// others fill their `(l,k)` slot if it is empty. Existing slot holders
    /// are kept (stability); use [`rebuild`](Self::rebuild) for randomized
    /// re-selection.
    pub fn observe(&mut self, id: NodeId, point: Point) {
        let coord = self.space.cell_coord(&point);
        match self.own.classify(&coord) {
            Neighborhood::Zero => self.upsert_zero(id, point),
            Neighborhood::Cell { level, dim } => {
                let idx = self.slot_index(level, dim);
                if self.slots[idx] == EMPTY || self.slots[idx] == id {
                    self.slots[idx] = id;
                }
            }
        }
    }

    /// Empties the whole table.
    pub fn clear(&mut self) {
        self.zero_ids.clear();
        self.zero_points.clear();
        self.slots.fill(EMPTY);
    }

    /// Directly sets the link for slot `(level, dim)` (oracle bootstrap).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the entry does not lie in `N(level, dim)` of this
    /// node.
    pub fn set_neighbor(&mut self, level: Level, dim: usize, entry: &NeighborEntry) {
        debug_assert!(
            self.own.neighboring_cell(level, dim).contains(&entry.coord),
            "entry outside N({level},{dim})"
        );
        let idx = self.slot_index(level, dim);
        self.slots[idx] = entry.id;
    }

    /// Directly inserts a `neighborsZero` member (oracle bootstrap).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the entry is not in this node's `C0` cell.
    pub fn insert_zero(&mut self, entry: &NeighborEntry) {
        debug_assert!(entry.coord.same_cell(&self.own, 0), "entry outside C0");
        self.upsert_zero(entry.id, entry.point.clone());
    }

    /// Removes a peer everywhere (failure suspicion).
    pub fn remove(&mut self, id: NodeId) {
        if let Ok(i) = self.zero_ids.binary_search(&id) {
            self.zero_ids.remove(i);
            self.zero_points.remove(i);
        }
        for s in &mut self.slots {
            if *s == id {
                *s = EMPTY;
            }
        }
    }

    /// Rebuilds the whole table from a candidate set (typically the gossip
    /// semantic view): `neighborsZero` becomes all same-`C0` candidates, and
    /// each `(l,k)` slot keeps its current occupant when still offered,
    /// otherwise picks a *uniformly random* candidate from that subcell —
    /// the randomness that spreads query load across dense cells (§6.4).
    ///
    /// Returns the number of `(l,k)` slots whose occupant changed (filled,
    /// emptied, or replaced) — the table-churn signal the observability
    /// layer tracks alongside gossip view turnover.
    pub fn rebuild<R: Rng + ?Sized>(
        &mut self,
        candidates: impl IntoIterator<Item = (NodeId, Point)>,
        rng: &mut R,
    ) -> usize {
        let mut per_slot: Vec<Vec<NodeId>> = vec![Vec::new(); self.slots.len()];
        self.zero_ids.clear();
        self.zero_points.clear();
        for (id, point) in candidates {
            let coord = self.space.cell_coord(&point);
            match self.own.classify(&coord) {
                Neighborhood::Zero => self.upsert_zero(id, point),
                Neighborhood::Cell { level, dim } => {
                    per_slot[self.slot_index(level, dim)].push(id);
                }
            }
        }
        let mut changed = 0;
        for (slot, cands) in self.slots.iter_mut().zip(per_slot) {
            if cands.is_empty() {
                if *slot != EMPTY {
                    *slot = EMPTY;
                    changed += 1;
                }
                continue;
            }
            let keep = *slot != EMPTY && cands.contains(slot);
            if !keep {
                *slot = cands[rng.gen_range(0..cands.len())];
                changed += 1;
            }
        }
        changed
    }

    /// Iterates over the filled `(level, dim, id)` slots.
    pub fn filled_slots(&self) -> impl Iterator<Item = (Level, usize, NodeId)> + '_ {
        let d = self.space.dims();
        self.slots
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != EMPTY)
            .map(move |(i, &s)| ((i / d + 1) as Level, i % d, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> Space {
        Space::uniform(2, 80, 3).expect("valid 2-d space geometry")
    }

    fn table_at(vals: [u64; 2]) -> RoutingTable {
        let s = space();
        let own = s.cell_coord(&s.point(&vals).expect("coords lie inside the space"));
        RoutingTable::new(s, own)
    }

    #[test]
    fn observe_routes_to_correct_slot() {
        // Own coord (1,1) in an 8×8 grid.
        let mut t = table_at([15, 15]);
        // Same C0 bucket.
        t.observe(2, space().point(&[12, 11]).expect("coords lie inside the space"));
        assert_eq!(t.zero_count(), 1);
        // Opposite half along dimension 0 → N(3,0).
        t.observe(3, space().point(&[75, 15]).expect("coords lie inside the space"));
        assert_eq!(t.neighbor(3, 0).expect("slot filled by observe"), 3);
        // Same C1, other bucket along dim 1 → N(1,1).
        t.observe(4, space().point(&[15, 5]).expect("coords lie inside the space"));
        assert_eq!(t.neighbor(1, 1).expect("slot filled by observe"), 4);
        assert_eq!(t.link_count(), 3);
    }

    #[test]
    fn observe_keeps_existing_slot_holder() {
        let mut t = table_at([15, 15]);
        t.observe(3, space().point(&[75, 15]).expect("coords lie inside the space"));
        t.observe(5, space().point(&[70, 10]).expect("coords lie inside the space")); // same subcell N(3,0)
        assert_eq!(t.neighbor(3, 0).expect("slot filled by observe"), 3, "first link kept");
    }

    #[test]
    fn observe_refreshes_zero_point_in_place() {
        let s = space();
        let mut t = table_at([15, 15]);
        t.observe(2, s.point(&[12, 11]).expect("coords lie inside the space"));
        let fresh = s.point(&[13, 12]).expect("coords lie inside the space");
        t.observe(2, fresh.clone());
        assert_eq!(t.zero_count(), 1, "re-observation is an update, not a duplicate");
        let (id, p) = t.zero_neighbors().next().expect("one zero mate");
        assert_eq!(id, 2);
        assert_eq!(p, &fresh, "stored point refreshed by the later observation");
    }

    #[test]
    fn remove_clears_everywhere() {
        let mut t = table_at([15, 15]);
        t.observe(2, space().point(&[12, 11]).expect("coords lie inside the space"));
        t.observe(3, space().point(&[75, 15]).expect("coords lie inside the space"));
        t.remove(2);
        t.remove(3);
        assert_eq!(t.link_count(), 0);
        assert!(t.neighbor(3, 0).is_none());
    }

    #[test]
    fn rebuild_prefers_stability_and_fills_randomly() {
        let s = space();
        let mut t = table_at([15, 15]);
        t.observe(3, s.point(&[75, 15]).expect("coords lie inside the space"));
        let mut rng = StdRng::seed_from_u64(9);
        // Candidates: current holder 3 still present + extra in same subcell.
        t.rebuild(
            vec![
                (3, s.point(&[75, 15]).expect("coords lie inside the space")),
                (5, s.point(&[70, 10]).expect("coords lie inside the space")),
                (6, s.point(&[12, 11]).expect("coords lie inside the space")), // C0 mate
            ],
            &mut rng,
        );
        assert_eq!(t.neighbor(3, 0).expect("slot filled by observe"), 3, "stability: holder kept");
        assert_eq!(t.zero_count(), 1);
        // Holder vanishes from candidates → random replacement.
        t.rebuild(vec![(5, s.point(&[70, 10]).expect("coords lie inside the space"))], &mut rng);
        assert_eq!(t.neighbor(3, 0).expect("slot filled by observe"), 5);
        assert_eq!(t.zero_count(), 0, "zero set rebuilt from scratch");
    }

    #[test]
    fn filled_slots_reports_level_dim() {
        let s = space();
        let mut t = table_at([15, 15]);
        t.observe(3, s.point(&[75, 15]).expect("coords lie inside the space")); // N(3,0)
        t.observe(4, s.point(&[15, 5]).expect("coords lie inside the space")); // N(1,1)
        let mut got: Vec<(Level, usize, NodeId)> = t.filled_slots().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 1, 4), (3, 0, 3)]);
    }
}
