use std::collections::BTreeMap;
use std::fmt;

use attrspace::{CellCoord, Level, Neighborhood, Point, Space};
use epigossip::NodeId;
use rand::Rng;

/// A routing-table entry: a peer plus the attribute values it advertised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborEntry {
    /// The peer's id.
    pub id: NodeId,
    /// The peer's advertised attribute values.
    pub point: Point,
    /// The peer's bucket coordinate.
    pub coord: CellCoord,
}

/// The per-node routing state of §4.1: one selected neighbor `n(l,k)` per
/// neighboring subcell `N(l,k)` (empty slots mean no known node in that
/// subcell) plus the `neighborsZero` set of all known same-`C0` nodes.
///
/// The number of slots is `d × max(l)` — linear in the number of dimensions,
/// which is the property that lets the protocol scale to high-dimensional
/// attribute spaces where CAN/Voronoi-style partitioning explodes.
pub struct RoutingTable {
    space: Space,
    own: CellCoord,
    /// Slot `(level-1) * d + dim` holds the chosen neighbor in `N(level,dim)`.
    slots: Vec<Option<NeighborEntry>>,
    /// All known nodes of this node's own `C0` cell, ordered for determinism.
    zero: BTreeMap<NodeId, NeighborEntry>,
}

impl fmt::Debug for RoutingTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoutingTable")
            .field("own", &self.own)
            .field("links", &self.link_count())
            .field("zero", &self.zero.len())
            .finish_non_exhaustive()
    }
}

impl RoutingTable {
    /// Creates an empty table for a node at `own` in `space`.
    pub fn new(space: Space, own: CellCoord) -> Self {
        let slots = vec![None; space.dims() * space.max_level() as usize];
        RoutingTable { space, own, slots, zero: BTreeMap::new() }
    }

    fn slot_index(&self, level: Level, dim: usize) -> usize {
        debug_assert!(level >= 1 && level <= self.space.max_level());
        debug_assert!(dim < self.space.dims());
        (level as usize - 1) * self.space.dims() + dim
    }

    /// The space this table routes in.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// This node's own coordinate.
    pub fn own_coord(&self) -> &CellCoord {
        &self.own
    }

    /// The chosen neighbor `n(l,k)`, if any node is known in `N(l,k)`.
    pub fn neighbor(&self, level: Level, dim: usize) -> Option<&NeighborEntry> {
        self.slots[self.slot_index(level, dim)].as_ref()
    }

    /// The `neighborsZero` set: all known nodes of this node's `C0` cell.
    pub fn zero_neighbors(&self) -> impl Iterator<Item = &NeighborEntry> {
        self.zero.values()
    }

    /// Number of same-`C0` links.
    pub fn zero_count(&self) -> usize {
        self.zero.len()
    }

    /// Number of non-empty `(l,k)` slots.
    pub fn slot_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Total `(l,k)` slots, filled or not (`d × max(l)`).
    pub fn total_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total links maintained (Fig. 10's metric: slot links + `C0` links).
    pub fn link_count(&self) -> usize {
        self.slot_count() + self.zero.len()
    }

    /// Classifies and records a peer: same-`C0` peers join `neighborsZero`;
    /// others fill their `(l,k)` slot if it is empty. Existing slot holders
    /// are kept (stability); use [`rebuild`](Self::rebuild) for randomized
    /// re-selection.
    pub fn observe(&mut self, id: NodeId, point: Point) {
        let coord = self.space.cell_coord(&point);
        let entry = NeighborEntry { id, point, coord };
        match self.own.classify(&entry.coord) {
            Neighborhood::Zero => {
                self.zero.insert(id, entry);
            }
            Neighborhood::Cell { level, dim } => {
                let idx = self.slot_index(level, dim);
                match &self.slots[idx] {
                    Some(existing) if existing.id != id => {}
                    _ => self.slots[idx] = Some(entry),
                }
            }
        }
    }

    /// Empties the whole table.
    pub fn clear(&mut self) {
        self.zero.clear();
        for s in &mut self.slots {
            *s = None;
        }
    }

    /// Directly sets the link for slot `(level, dim)` (oracle bootstrap).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the entry does not lie in `N(level, dim)` of this
    /// node.
    pub fn set_neighbor(&mut self, level: Level, dim: usize, entry: NeighborEntry) {
        debug_assert!(
            self.own.neighboring_cell(level, dim).contains(&entry.coord),
            "entry outside N({level},{dim})"
        );
        let idx = self.slot_index(level, dim);
        self.slots[idx] = Some(entry);
    }

    /// Directly inserts a `neighborsZero` member (oracle bootstrap).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the entry is not in this node's `C0` cell.
    pub fn insert_zero(&mut self, entry: NeighborEntry) {
        debug_assert!(entry.coord.same_cell(&self.own, 0), "entry outside C0");
        self.zero.insert(entry.id, entry);
    }

    /// Removes a peer everywhere (failure suspicion).
    pub fn remove(&mut self, id: NodeId) {
        self.zero.remove(&id);
        for s in &mut self.slots {
            if s.as_ref().is_some_and(|e| e.id == id) {
                *s = None;
            }
        }
    }

    /// Rebuilds the whole table from a candidate set (typically the gossip
    /// semantic view): `neighborsZero` becomes all same-`C0` candidates, and
    /// each `(l,k)` slot keeps its current occupant when still offered,
    /// otherwise picks a *uniformly random* candidate from that subcell —
    /// the randomness that spreads query load across dense cells (§6.4).
    ///
    /// Returns the number of `(l,k)` slots whose occupant changed (filled,
    /// emptied, or replaced) — the table-churn signal the observability
    /// layer tracks alongside gossip view turnover.
    pub fn rebuild<R: Rng + ?Sized>(
        &mut self,
        candidates: impl IntoIterator<Item = (NodeId, Point)>,
        rng: &mut R,
    ) -> usize {
        let mut per_slot: Vec<Vec<NeighborEntry>> = vec![Vec::new(); self.slots.len()];
        let mut zero = BTreeMap::new();
        for (id, point) in candidates {
            let coord = self.space.cell_coord(&point);
            let entry = NeighborEntry { id, point, coord };
            match self.own.classify(&entry.coord) {
                Neighborhood::Zero => {
                    zero.insert(id, entry);
                }
                Neighborhood::Cell { level, dim } => {
                    per_slot[self.slot_index(level, dim)].push(entry);
                }
            }
        }
        self.zero = zero;
        let mut changed = 0;
        for (slot, cands) in self.slots.iter_mut().zip(per_slot) {
            if cands.is_empty() {
                if slot.take().is_some() {
                    changed += 1;
                }
                continue;
            }
            let keep = slot
                .as_ref()
                .is_some_and(|cur| cands.iter().any(|c| c.id == cur.id));
            if !keep {
                *slot = Some(cands[rng.gen_range(0..cands.len())].clone());
                changed += 1;
            }
        }
        changed
    }

    /// Iterates over the filled `(level, dim, entry)` slots.
    pub fn filled_slots(&self) -> impl Iterator<Item = (Level, usize, &NeighborEntry)> {
        let d = self.space.dims();
        self.slots.iter().enumerate().filter_map(move |(i, s)| {
            s.as_ref().map(|e| ((i / d + 1) as Level, i % d, e))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> Space {
        Space::uniform(2, 80, 3).expect("valid 2-d space geometry")
    }

    fn table_at(vals: [u64; 2]) -> RoutingTable {
        let s = space();
        let own = s.cell_coord(&s.point(&vals).expect("coords lie inside the space"));
        RoutingTable::new(s, own)
    }

    #[test]
    fn observe_routes_to_correct_slot() {
        // Own coord (1,1) in an 8×8 grid.
        let mut t = table_at([15, 15]);
        // Same C0 bucket.
        t.observe(2, space().point(&[12, 11]).expect("coords lie inside the space"));
        assert_eq!(t.zero_count(), 1);
        // Opposite half along dimension 0 → N(3,0).
        t.observe(3, space().point(&[75, 15]).expect("coords lie inside the space"));
        assert_eq!(t.neighbor(3, 0).expect("slot filled by observe").id, 3);
        // Same C1, other bucket along dim 1 → N(1,1).
        t.observe(4, space().point(&[15, 5]).expect("coords lie inside the space"));
        assert_eq!(t.neighbor(1, 1).expect("slot filled by observe").id, 4);
        assert_eq!(t.link_count(), 3);
    }

    #[test]
    fn observe_keeps_existing_slot_holder() {
        let mut t = table_at([15, 15]);
        t.observe(3, space().point(&[75, 15]).expect("coords lie inside the space"));
        t.observe(5, space().point(&[70, 10]).expect("coords lie inside the space")); // same subcell N(3,0)
        assert_eq!(t.neighbor(3, 0).expect("slot filled by observe").id, 3, "first link kept");
    }

    #[test]
    fn remove_clears_everywhere() {
        let mut t = table_at([15, 15]);
        t.observe(2, space().point(&[12, 11]).expect("coords lie inside the space"));
        t.observe(3, space().point(&[75, 15]).expect("coords lie inside the space"));
        t.remove(2);
        t.remove(3);
        assert_eq!(t.link_count(), 0);
        assert!(t.neighbor(3, 0).is_none());
    }

    #[test]
    fn rebuild_prefers_stability_and_fills_randomly() {
        let s = space();
        let mut t = table_at([15, 15]);
        t.observe(3, s.point(&[75, 15]).expect("coords lie inside the space"));
        let mut rng = StdRng::seed_from_u64(9);
        // Candidates: current holder 3 still present + extra in same subcell.
        t.rebuild(
            vec![
                (3, s.point(&[75, 15]).expect("coords lie inside the space")),
                (5, s.point(&[70, 10]).expect("coords lie inside the space")),
                (6, s.point(&[12, 11]).expect("coords lie inside the space")), // C0 mate
            ],
            &mut rng,
        );
        assert_eq!(t.neighbor(3, 0).expect("slot filled by observe").id, 3, "stability: holder kept");
        assert_eq!(t.zero_count(), 1);
        // Holder vanishes from candidates → random replacement.
        t.rebuild(vec![(5, s.point(&[70, 10]).expect("coords lie inside the space"))], &mut rng);
        assert_eq!(t.neighbor(3, 0).expect("slot filled by observe").id, 5);
        assert_eq!(t.zero_count(), 0, "zero set rebuilt from scratch");
    }

    #[test]
    fn filled_slots_reports_level_dim() {
        let s = space();
        let mut t = table_at([15, 15]);
        t.observe(3, s.point(&[75, 15]).expect("coords lie inside the space")); // N(3,0)
        t.observe(4, s.point(&[15, 5]).expect("coords lie inside the space")); // N(1,1)
        let mut got: Vec<(Level, usize, NodeId)> =
            t.filled_slots().map(|(l, k, e)| (l, k, e.id)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 1, 4), (3, 0, 3)]);
    }
}
