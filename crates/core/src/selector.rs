use attrspace::{Level, Neighborhood};
use epigossip::{Descriptor, Selector};

use crate::fasthash::FastMap;
use crate::NodeProfile;

/// The [`Selector`] policy that drives the semantic gossip layer for
/// resource selection (§5): instead of a scalar proximity metric, peers are
/// ranked by *which routing slot they can fill*.
///
/// Priorities, in order:
/// 1. every known same-`C0` peer (the protocol's correctness at level 0
///    depends on knowing all of them), up to [`zero_cap`](Self::zero_cap);
/// 2. one peer per neighboring subcell `(l,k)` (round-robin across slots, so
///    coverage is broad before it is deep);
/// 3. additional per-slot spares up to [`per_slot`](Self::per_slot) — these
///    let the routing table replace a failed link instantly;
/// 4. youngest leftovers, which keep gossip exchanges informative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSelector {
    /// Maximum same-`C0` peers retained (priority 1).
    pub zero_cap: usize,
    /// Candidates kept per `(l,k)` slot (priorities 2–3).
    pub per_slot: usize,
}

impl Default for SlotSelector {
    fn default() -> Self {
        SlotSelector { zero_cap: 8, per_slot: 2 }
    }
}

impl Selector<NodeProfile> for SlotSelector {
    fn select(
        &self,
        own: &NodeProfile,
        candidates: Vec<Descriptor<NodeProfile>>,
        capacity: usize,
    ) -> Vec<Descriptor<NodeProfile>> {
        let mut zero: Vec<Descriptor<NodeProfile>> = Vec::new();
        let mut slots: FastMap<(Level, usize), Vec<Descriptor<NodeProfile>>> = FastMap::default();
        for d in candidates {
            match own.coord().classify(d.profile.coord()) {
                Neighborhood::Zero => zero.push(d),
                Neighborhood::Cell { level, dim } => {
                    slots.entry((level, dim)).or_default().push(d);
                }
            }
        }
        // Youngest first everywhere: fresher descriptors are likelier alive.
        zero.sort_by_key(|d| (d.age, d.id));
        for v in slots.values_mut() {
            v.sort_by_key(|d| (d.age, d.id));
        }
        // Deterministic slot order for reproducibility.
        let mut slot_keys: Vec<(Level, usize)> = slots.keys().copied().collect();
        slot_keys.sort_unstable();

        let mut kept: Vec<Descriptor<NodeProfile>> = Vec::with_capacity(capacity);
        let mut leftovers: Vec<Descriptor<NodeProfile>> = Vec::new();

        let zero_take = self.zero_cap.min(capacity).min(zero.len());
        let mut zero_iter = zero.into_iter();
        for _ in 0..zero_take {
            kept.push(zero_iter.next().expect("bounded by len"));
        }
        leftovers.extend(zero_iter);

        // Round-robin across slots: rank 0 for every slot, then rank 1, …
        for rank in 0..self.per_slot {
            for key in &slot_keys {
                let v = slots.get_mut(key).expect("known key");
                if rank < v.len() && kept.len() < capacity {
                    kept.push(v[rank].clone());
                }
            }
        }
        for key in &slot_keys {
            let v = slots.remove(key).expect("known key");
            leftovers.extend(v.into_iter().skip(self.per_slot));
        }

        leftovers.sort_by_key(|d| (d.age, d.id));
        for d in leftovers {
            if kept.len() >= capacity {
                break;
            }
            kept.push(d);
        }
        kept.truncate(capacity);
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrspace::Space;
    use epigossip::NodeId;

    fn profile(space: &Space, vals: &[u64]) -> NodeProfile {
        NodeProfile::new(space, space.point(vals).expect("coords lie inside the space"))
    }

    fn desc(id: NodeId, space: &Space, vals: &[u64], age: u32) -> Descriptor<NodeProfile> {
        Descriptor { id, profile: profile(space, vals), age }
    }

    #[test]
    fn zero_mates_have_top_priority() {
        let s = Space::uniform(2, 80, 3).expect("valid 2-d space geometry");
        let own = profile(&s, &[5, 5]);
        let sel = SlotSelector { zero_cap: 4, per_slot: 1 };
        let mut cands = vec![
            desc(10, &s, &[6, 6], 0),  // C0 mate
            desc(11, &s, &[7, 3], 1),  // C0 mate
            desc(20, &s, &[75, 5], 0), // N(3,0)
            desc(21, &s, &[5, 75], 0), // N(3,1)
        ];
        // Tiny capacity: C0 mates win, then slots round-robin.
        let kept = sel.select(&own, cands.clone(), 3);
        let ids: Vec<NodeId> = kept.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![10, 11, 20]);

        // per_slot spares respected with more capacity.
        cands.push(desc(22, &s, &[70, 9], 3)); // also N(3,0), older spare
        let sel = SlotSelector { zero_cap: 4, per_slot: 2 };
        let kept = sel.select(&own, cands, 10);
        let ids: Vec<NodeId> = kept.iter().map(|d| d.id).collect();
        // zero mates, then rank-0 of each slot (sorted keys: (3,0) before
        // (3,1)), then rank-1 spares.
        assert_eq!(ids, vec![10, 11, 20, 21, 22]);
    }

    #[test]
    fn broad_before_deep() {
        let s = Space::uniform(2, 80, 3).expect("valid 2-d space geometry");
        let own = profile(&s, &[5, 5]);
        let sel = SlotSelector { zero_cap: 0, per_slot: 3 };
        let cands = vec![
            desc(1, &s, &[75, 5], 0),
            desc(2, &s, &[70, 9], 1),
            desc(3, &s, &[79, 2], 2),
            desc(4, &s, &[5, 75], 5), // different slot, old
        ];
        let kept = sel.select(&own, cands, 2);
        let ids: Vec<NodeId> = kept.iter().map(|d| d.id).collect();
        // One per slot before any spare, despite node 4's age.
        assert_eq!(ids, vec![1, 4]);
    }

    #[test]
    fn zero_cap_bounds_c0_crowd() {
        let s = Space::uniform(2, 80, 3).expect("valid 2-d space geometry");
        let own = profile(&s, &[5, 5]);
        let sel = SlotSelector { zero_cap: 2, per_slot: 1 };
        let cands: Vec<_> = (0..6).map(|i| desc(i, &s, &[5 + i % 5, 5], i as u32)).collect();
        let kept = sel.select(&own, cands, 6);
        // All six are C0 mates, but only zero_cap get priority; the rest are
        // leftovers and still fill remaining capacity, youngest first.
        assert_eq!(kept.len(), 6);
        assert_eq!(kept[0].id, 0);
        assert_eq!(kept[1].id, 1);
    }
}
