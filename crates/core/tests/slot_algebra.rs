//! Property tests of the [`RoutingTable`] "slot algebra" (§4.1): for *any*
//! observation history over *any* space shape,
//!
//! * at most one chosen neighbor `n(l,k)` exists per neighboring subcell
//!   `N(l,k)` — the `d × max(l)` slot bound that keeps per-node state
//!   linear in the number of dimensions;
//! * every filled slot's occupant actually lies in the `N(l,k)` it was
//!   filed under;
//! * the `neighborsZero` set never contains a node outside the owner's own
//!   `C0` cell (nor the owner itself filed as its own neighbor's peer id —
//!   ids are free, but the coordinate constraint must hold).
//!
//! These hold by construction of `observe`/`rebuild`/`set_neighbor`; the
//! point of the suite is that no *sequence* of observations, removals and
//! rebuilds can break them.

use attrspace::{Neighborhood, Space};
use autosel_core::RoutingTable;
use epigossip::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts the full slot algebra on a table. Slots store only ids now, so
/// the "occupant really lies in N(l,k)" check consults `universe` — every
/// `(id, point)` pair the table has ever been offered: some offering of
/// the holder's id must classify into the slot it occupies.
fn assert_slot_algebra(t: &RoutingTable, universe: &[(NodeId, attrspace::Point)]) {
    let space = t.space();
    let own = t.own_coord();
    let bound = space.dims() * space.max_level() as usize;

    assert!(t.slot_count() <= bound, "slot bound d*max(l) = {bound} exceeded");
    assert_eq!(t.link_count(), t.slot_count() + t.zero_count());

    // Each filled slot is occupied by a node genuinely offered for N(l,k),
    // and no (l,k) appears twice (filled_slots enumerates distinct indices,
    // so duplicates would show as a count mismatch).
    let mut seen = std::collections::HashSet::new();
    for (level, dim, id) in t.filled_slots() {
        assert!(seen.insert((level, dim)), "two occupants for N({level},{dim})");
        assert!(
            universe.iter().any(|(uid, p)| *uid == id
                && own.classify(&space.cell_coord(p)) == Neighborhood::Cell { level, dim }),
            "slot ({level},{dim}) holds node {id}, never offered for that subcell"
        );
    }
    assert_eq!(seen.len(), t.slot_count());

    // The zero set stays within the owner's own C0 cell — checkable from
    // the stored points directly.
    for (id, point) in t.zero_neighbors() {
        assert!(
            space.cell_coord(point).same_cell(own, 0),
            "neighborsZero contains {id} at {point:?}, outside own C0 {own:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Observing arbitrary peers in arbitrary order preserves the algebra,
    /// and removals never leave a stale reference behind.
    #[test]
    fn observe_and_remove_preserve_slot_algebra(
        d in 1usize..5,
        max_level in 1u8..4,
        own_vals in prop::collection::vec(0u64..80, 4),
        peers in prop::collection::vec((0u64..1000, prop::collection::vec(0u64..80, 4)), 0..60),
        remove_every in 1usize..5,
    ) {
        let space = Space::uniform(d, 80, max_level).unwrap();
        let own_point = space.point(&own_vals[..d]).unwrap();
        let own = space.cell_coord(&own_point);
        let mut t = RoutingTable::new(space.clone(), own);

        let mut offered: Vec<(NodeId, attrspace::Point)> = Vec::new();
        for (i, (id, vals)) in peers.iter().enumerate() {
            let p = space.point(&vals[..d]).unwrap();
            offered.push((*id as NodeId, p.clone()));
            t.observe(*id as NodeId, p);
            assert_slot_algebra(&t, &offered);
            if i % remove_every == 0 {
                t.remove(*id as NodeId);
                assert_slot_algebra(&t, &offered);
                prop_assert!(
                    t.filled_slots().all(|(_, _, sid)| sid != *id as NodeId),
                    "removed id still holds a slot"
                );
                prop_assert!(t.zero_neighbors().all(|(zid, _)| zid != *id as NodeId));
            }
        }
    }

    /// `rebuild` from an arbitrary candidate set lands every candidate in
    /// the right place (or drops it), keeps current holders when still
    /// offered, and leaves the algebra intact; `clear` empties everything.
    #[test]
    fn rebuild_preserves_slot_algebra_and_stability(
        d in 1usize..4,
        max_level in 1u8..4,
        own_vals in prop::collection::vec(0u64..80, 3),
        first in prop::collection::vec((0u64..500, prop::collection::vec(0u64..80, 3)), 0..40),
        second in prop::collection::vec((0u64..500, prop::collection::vec(0u64..80, 3)), 0..40),
        seed in 0u64..1000,
    ) {
        let space = Space::uniform(d, 80, max_level).unwrap();
        let own_point = space.point(&own_vals[..d]).unwrap();
        let own = space.cell_coord(&own_point);
        let mut t = RoutingTable::new(space.clone(), own);
        let mut rng = StdRng::seed_from_u64(seed);

        let to_entries = |set: &[(u64, Vec<u64>)]| -> Vec<(NodeId, attrspace::Point)> {
            set.iter()
                .map(|(id, vals)| (*id as NodeId, space.point(&vals[..d]).unwrap()))
                .collect()
        };

        t.rebuild(to_entries(&first), &mut rng);
        assert_slot_algebra(&t, &to_entries(&first));
        // Every same-C0 candidate must be in the zero set (no candidate is
        // silently dropped from its own cell) with last-write-wins points.
        let own_coord = t.own_coord().clone();
        let expected_zero: std::collections::HashSet<NodeId> = to_entries(&first)
            .into_iter()
            .filter(|(_, p)| space.cell_coord(p).same_cell(&own_coord, 0))
            .map(|(id, _)| id)
            .collect();
        let got_zero: std::collections::HashSet<NodeId> =
            t.zero_neighbors().map(|(id, _)| id).collect();
        prop_assert_eq!(got_zero, expected_zero);

        // Stability: a holder still offered in the second candidate set
        // keeps its slot.
        let held: Vec<(u8, usize, NodeId)> = t.filled_slots().collect();
        t.rebuild(to_entries(&second), &mut rng);
        assert_slot_algebra(&t, &to_entries(&second));
        for (l, k, id) in held {
            if second.iter().any(|(sid, _)| *sid as NodeId == id) {
                // The old holder is among the new candidates; it can only
                // keep the slot if it still classifies there (same id may
                // reappear at a different point).
                if let Some(cur) = t.neighbor(l, k) {
                    let offered_same_place = to_entries(&second).iter().any(|(sid, p)| {
                        *sid == id
                            && t.own_coord().classify(&space.cell_coord(p))
                                == Neighborhood::Cell { level: l, dim: k }
                    });
                    if offered_same_place {
                        prop_assert_eq!(cur, id, "stable holder evicted from N({},{})", l, k);
                    }
                }
            }
        }

        t.clear();
        prop_assert_eq!(t.link_count(), 0);
        assert_slot_algebra(&t, &[]);
    }
}
