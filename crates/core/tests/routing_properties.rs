//! End-to-end properties of the query-routing protocol on oracle-wired
//! populations: the §6 claims that *every* matching node is reached ("100%
//! delivery"), that *no node ever receives the same query twice*, and that
//! σ-bounded queries stop early but never under-deliver.

use std::collections::VecDeque;

use attrspace::{Query, Range, Space};
use autosel_core::bootstrap::{ground_truth, wire_perfect};
use autosel_core::{Match, Message, Output, ProtocolConfig, QueryId, SelectionNode};
use epigossip::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synchronous driver: runs one query from `origin` to completion, counting
/// query receipts per node. Panics on dropped messages (all nodes alive).
struct RunResult {
    matches: Vec<Match>,
    /// Per node: how often it received the QUERY message.
    receipts: Vec<u32>,
    /// Total protocol messages (queries + replies).
    messages: u64,
}

fn run_query(
    nodes: &mut [SelectionNode],
    origin: usize,
    query: Query,
    sigma: Option<u32>,
) -> RunResult {
    let mut receipts = vec![0u32; nodes.len()];
    let mut messages = 0u64;
    let mut inbox: VecDeque<(NodeId, NodeId, Message)> = VecDeque::new();
    let mut completed: Option<(QueryId, Vec<Match>)> = None;

    let (qid, outs) = nodes[origin].begin_query(query, sigma, 0);
    let push = |from: NodeId,
                    outs: Vec<Output>,
                    inbox: &mut VecDeque<(NodeId, NodeId, Message)>,
                    completed: &mut Option<(QueryId, Vec<Match>)>| {
        for o in outs {
            match o {
                Output::Send { to, msg } => inbox.push_back((from, to, msg)),
                Output::Completed { id, matches, .. } => *completed = Some((id, matches)),
                Output::NeighborFailed(_) => panic!("no failures in static run"),
            }
        }
    };
    push(origin as NodeId, outs, &mut inbox, &mut completed);

    let mut now = 1;
    while let Some((from, to, msg)) = inbox.pop_front() {
        messages += 1;
        if let Message::Query(_) = &msg {
            receipts[to as usize] += 1;
        }
        let outs = nodes[to as usize].handle_message(from, msg, now);
        now += 1;
        push(to, outs, &mut inbox, &mut completed);
    }

    let (id, matches) = completed.expect("query must complete");
    assert_eq!(id, qid);
    RunResult { matches, receipts, messages }
}

fn population(space: &Space, n: usize, seed: u64) -> (Vec<SelectionNode>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<SelectionNode> = (0..n)
        .map(|i| {
            let vals: Vec<u64> = (0..space.dims()).map(|_| rng.gen_range(0..80)).collect();
            SelectionNode::new(
                i as NodeId,
                space,
                space.point(&vals).unwrap(),
                ProtocolConfig::default(),
            )
        })
        .collect();
    wire_perfect(&mut nodes, &mut rng);
    (nodes, rng)
}

#[test]
fn unbounded_query_reaches_exactly_the_matching_set() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let (mut nodes, _) = population(&space, 500, 7);
    let query = Query::builder(&space)
        .min("a0", 40)
        .range("a1", 10, 59)
        .build()
        .unwrap();
    let mut truth = ground_truth(&nodes, &query);
    truth.sort_unstable();

    for origin in [0usize, 123, 499] {
        let r = run_query(&mut nodes, origin, query.clone(), None);
        let mut got: Vec<NodeId> = r.matches.iter().map(|m| m.node).collect();
        got.sort_unstable();
        assert_eq!(got, truth, "100% delivery from origin {origin}");
        for (i, &c) in r.receipts.iter().enumerate() {
            assert!(c <= 1, "node {i} received the query {c} times");
        }
        for &m in &truth {
            if m as usize != origin {
                assert_eq!(r.receipts[m as usize], 1, "matching node {m} missed");
            }
        }
        assert_eq!(nodes.iter().map(|n| n.duplicate_receipts()).sum::<u64>(), 0);
        for n in nodes.iter() {
            assert_eq!(n.pending_len(), 0, "no residual per-query state");
        }
    }
}

#[test]
fn sigma_bounds_early_stop_without_underdelivery() {
    let space = Space::uniform(5, 80, 3).unwrap();
    let (mut nodes, _) = population(&space, 800, 13);
    let query = Query::builder(&space).min("a0", 20).build().unwrap();
    let total = ground_truth(&nodes, &query).len();
    assert!(total > 100, "workload sanity: selective but populous");

    let r_unbounded = run_query(&mut nodes, 5, query.clone(), None);
    let r_sigma = run_query(&mut nodes, 5, query.clone(), Some(10));
    assert!(r_sigma.matches.len() >= 10, "σ satisfied");
    assert!(
        r_sigma.matches.len() < total,
        "σ stopped before exhausting all {total} matches"
    );
    assert!(
        r_sigma.messages < r_unbounded.messages / 2,
        "σ run used {} messages vs {} unbounded",
        r_sigma.messages,
        r_unbounded.messages
    );
    assert!(r_sigma.matches.iter().all(|m| query.matches(&m.values)));
}

#[test]
fn query_from_every_node_of_a_small_population() {
    // The paper issues each query from every node (§6): delivery must be
    // independent of the origin.
    let space = Space::uniform(2, 80, 3).unwrap();
    let (mut nodes, _) = population(&space, 120, 21);
    let query = Query::builder(&space).range("a0", 30, 69).build().unwrap();
    let mut truth = ground_truth(&nodes, &query);
    truth.sort_unstable();
    for origin in 0..nodes.len() {
        let r = run_query(&mut nodes, origin, query.clone(), None);
        let mut got: Vec<NodeId> = r.matches.iter().map(|m| m.node).collect();
        got.sort_unstable();
        assert_eq!(got, truth, "origin {origin}");
    }
}

#[test]
fn empty_result_queries_terminate() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let (mut nodes, _) = population(&space, 300, 3);
    // Match nothing: the top bucket is [70,∞) and we demand an impossible
    // combination by excluding every existing point in dimension 0.
    let occupied: Vec<u64> = nodes.iter().map(|n| n.point().values()[0]).collect();
    let free = (0..80u64).find(|v| !occupied.contains(v));
    if let Some(v) = free {
        let query = Query::builder(&space).exact("a0", v).build().unwrap();
        let r = run_query(&mut nodes, 0, query, None);
        assert!(r.matches.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once delivery of the full matching set for random populations,
    /// random (possibly unaligned) queries, dimensions 1–4, depth 2–3.
    #[test]
    fn delivery_is_exact_for_random_configs(
        seed in 0u64..1000,
        n in 20usize..150,
        d in 1usize..5,
        max_level in 2u8..4,
        ranges in prop::collection::vec((0u64..90, 0u64..90), 4),
        origin_sel in 0usize..1000,
    ) {
        let space = Space::uniform(d, 80, max_level).unwrap();
        let (mut nodes, _) = population(&space, n, seed);
        let ranges: Vec<Range> = ranges
            .into_iter()
            .take(d)
            .map(|(a, b)| Range { lo: a.min(b), hi: a.max(b) })
            .collect();
        let query = Query::from_ranges(&space, ranges).unwrap();
        let mut truth = ground_truth(&nodes, &query);
        truth.sort_unstable();

        let origin = origin_sel % n;
        let r = run_query(&mut nodes, origin, query, None);
        let mut got: Vec<NodeId> = r.matches.iter().map(|m| m.node).collect();
        got.sort_unstable();
        prop_assert_eq!(got, truth);
        for &c in &r.receipts {
            prop_assert!(c <= 1, "duplicate receipt");
        }
        prop_assert_eq!(nodes.iter().map(|x| x.duplicate_receipts()).sum::<u64>(), 0);
    }

    /// σ-bounded queries return at least min(σ, total) matches, all valid.
    #[test]
    fn sigma_never_underdelivers(
        seed in 0u64..1000,
        n in 30usize..120,
        sigma in 1u32..40,
    ) {
        let space = Space::uniform(3, 80, 3).unwrap();
        let (mut nodes, _) = population(&space, n, seed);
        let query = Query::builder(&space).min("a0", 10).build().unwrap();
        let total = ground_truth(&nodes, &query).len() as u32;
        let r = run_query(&mut nodes, 0, query.clone(), Some(sigma));
        prop_assert!(r.matches.len() as u32 >= sigma.min(total));
        for m in &r.matches {
            prop_assert!(query.matches(&m.values));
        }
    }
}
