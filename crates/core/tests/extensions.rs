//! Tests for the paper's extension points: dynamic attributes checked
//! locally at match time (footnote 1) and the `C0` epidemic relay for
//! densely populated lowest-level cells (§4.1).

use std::collections::{HashSet, VecDeque};

use attrspace::{Query, Range, Space};
use autosel_core::bootstrap::wire_perfect;
use autosel_core::{
    DynamicConstraint, Match, Message, Output, ProtocolConfig, SelectionNode,
};
use epigossip::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimal synchronous driver (subset of `routing_properties.rs`).
fn drive(nodes: &mut [SelectionNode], origin: usize, outs: Vec<Output>) -> (Vec<Match>, Vec<u32>) {
    let mut receipts = vec![0u32; nodes.len()];
    let mut inbox: VecDeque<(NodeId, NodeId, Message)> = VecDeque::new();
    let mut completed = None;
    let mut push = |from: NodeId, outs: Vec<Output>, inbox: &mut VecDeque<(NodeId, NodeId, Message)>| {
        for o in outs {
            match o {
                Output::Send { to, msg } => inbox.push_back((from, to, msg)),
                Output::Completed { matches, .. } => completed = Some(matches),
                Output::NeighborFailed(_) => {}
            }
        }
    };
    push(origin as NodeId, outs, &mut inbox);
    let mut now = 1;
    while let Some((from, to, msg)) = inbox.pop_front() {
        if matches!(msg, Message::Query(_)) {
            receipts[to as usize] += 1;
        }
        let outs = nodes[to as usize].handle_message(from, msg, now);
        now += 1;
        push(to, outs, &mut inbox);
    }
    (completed.expect("completed"), receipts)
}

fn population(space: &Space, n: usize, seed: u64, config: ProtocolConfig) -> Vec<SelectionNode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<SelectionNode> = (0..n)
        .map(|i| {
            let vals: Vec<u64> = (0..space.dims()).map(|_| rng.gen_range(0..80)).collect();
            SelectionNode::new(i as NodeId, space, space.point(&vals).unwrap(), config.clone())
        })
        .collect();
    wire_perfect(&mut nodes, &mut rng);
    nodes
}

#[test]
fn dynamic_constraints_filter_at_match_time() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut nodes = population(&space, 300, 5, ProtocolConfig::default());

    // Give every node a "free disk" dynamic value derived from its id;
    // only even-id nodes have ≥ 100.
    const FREE_DISK: u32 = 7;
    for n in nodes.iter_mut() {
        let v = if n.id() % 2 == 0 { 150 } else { 10 };
        n.set_dynamic(FREE_DISK, v);
    }

    let query = Query::builder(&space).min("a0", 40).build().unwrap();
    let static_truth: HashSet<NodeId> = nodes
        .iter()
        .filter(|n| query.matches(n.point()))
        .map(|n| n.id())
        .collect();
    let dynamic = vec![DynamicConstraint { key: FREE_DISK, range: Range { lo: 100, hi: u64::MAX } }];

    let (_, outs) = nodes[3].begin_query_full(query.clone(), dynamic, None, 0);
    let (matches, receipts) = drive(&mut nodes, 3, outs);

    let got: HashSet<NodeId> = matches.iter().map(|m| m.node).collect();
    let expected: HashSet<NodeId> =
        static_truth.iter().copied().filter(|id| id % 2 == 0).collect();
    assert_eq!(got, expected, "only dynamically-eligible nodes reported");
    // Routing is unchanged: every *statically* matching node is still
    // visited (the dynamic check happens locally, not in the overlay).
    for &id in &static_truth {
        if id != 3 {
            assert_eq!(receipts[id as usize], 1, "node {id} not visited");
        }
    }
}

#[test]
fn dynamic_values_can_change_between_queries() {
    let space = Space::uniform(2, 80, 2).unwrap();
    let cfg = ProtocolConfig::default();
    let mut a = SelectionNode::new(1, &space, space.point(&[10, 10]).unwrap(), cfg.clone());
    let mut b = SelectionNode::new(2, &space, space.point(&[70, 70]).unwrap(), cfg);
    a.routing_mut().observe(2, b.point().clone());
    b.set_dynamic(1, 5);

    let query = Query::builder(&space).min("a0", 60).build().unwrap();
    let dynamic = vec![DynamicConstraint { key: 1, range: Range { lo: 10, hi: 100 } }];

    // First query: b's load is 5 → constraint unsatisfied.
    let (_, outs) = a.begin_query_full(query.clone(), dynamic.clone(), None, 0);
    let Output::Send { msg, .. } = &outs[0] else { panic!("{outs:?}") };
    let replies = b.handle_message(1, msg.clone(), 1);
    let Output::Send { msg: reply, .. } = &replies[0] else { panic!() };
    let done = a.handle_message(2, reply.clone(), 2);
    let Output::Completed { matches, .. } = &done[0] else { panic!("{done:?}") };
    assert!(matches.is_empty(), "dynamically ineligible");

    // Value changes — no registry to update, next query sees it instantly.
    b.set_dynamic(1, 42);
    let (_, outs) = a.begin_query_full(query, dynamic, None, 10);
    let Output::Send { msg, .. } = &outs[0] else { panic!() };
    let replies = b.handle_message(1, msg.clone(), 11);
    let Output::Send { msg: reply, .. } = &replies[0] else { panic!() };
    let done = a.handle_message(2, reply.clone(), 12);
    let Output::Completed { matches, .. } = &done[0] else { panic!() };
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].node, 2);
}

#[test]
fn missing_dynamic_value_never_matches() {
    let space = Space::uniform(2, 80, 2).unwrap();
    let mut a = SelectionNode::new(1, &space, space.point(&[70, 70]).unwrap(), ProtocolConfig::default());
    let query = Query::builder(&space).build().unwrap();
    let dynamic = vec![DynamicConstraint { key: 9, range: Range::FULL }];
    let (_, outs) = a.begin_query_full(query, dynamic, None, 0);
    let Output::Completed { matches, .. } = &outs[0] else { panic!("{outs:?}") };
    assert!(matches.is_empty(), "no value set for key 9");
}

/// Builds a dense single-`C0` population where each node only knows a few
/// mates (a chain), so plain zero-fanout cannot cover the cell but the
/// epidemic relay can.
fn dense_cell_chain(relay: bool) -> Vec<SelectionNode> {
    let space = Space::uniform(2, 80, 2).unwrap();
    let cfg = ProtocolConfig { c0_relay: relay, ..ProtocolConfig::default() };
    let n = 12;
    let mut nodes: Vec<SelectionNode> = (0..n)
        .map(|i| {
            // All in the same C0 bucket (values 0..19 → bucket 0 at L=2).
            SelectionNode::new(i, &space, space.point(&[5 + i % 10, 7]).unwrap(), cfg.clone())
        })
        .collect();
    // Chain knowledge: node i knows only i-1 and i+1.
    let points: Vec<_> = nodes.iter().map(|x| x.point().clone()).collect();
    for i in 0..n as usize {
        if i > 0 {
            nodes[i].routing_mut().observe((i - 1) as NodeId, points[i - 1].clone());
        }
        if i + 1 < n as usize {
            nodes[i].routing_mut().observe((i + 1) as NodeId, points[i + 1].clone());
        }
    }
    nodes
}

#[test]
fn c0_relay_covers_mates_beyond_direct_knowledge() {
    let space = Space::uniform(2, 80, 2).unwrap();
    let query = Query::builder(&space).max("a0", 79).build().unwrap();

    // Without the relay: origin 0 only reaches its direct mate(s).
    let mut plain = dense_cell_chain(false);
    let (_, outs) = plain[0].begin_query(query.clone(), None, 0);
    let (matches, _) = drive(&mut plain, 0, outs);
    assert!(
        matches.len() <= 2,
        "plain fanout is bounded by direct knowledge, got {}",
        matches.len()
    );

    // With the relay: the query spreads down the chain epidemic-style.
    let mut relayed = dense_cell_chain(true);
    let (_, outs) = relayed[0].begin_query(query.clone(), None, 0);
    let (matches, receipts) = drive(&mut relayed, 0, outs);
    assert_eq!(matches.len(), 12, "relay reaches the whole cell");
    // The visited_zero set keeps the epidemic nearly duplicate-free in a
    // chain topology: every node receives the query exactly once.
    for (i, &r) in receipts.iter().enumerate().skip(1) {
        assert_eq!(r, 1, "node {i} receipts");
    }
}

#[test]
fn c0_relay_with_sigma_overshoots_but_terminates() {
    // Fig. 5's zero-level loop contacts matching mates without consulting σ
    // (σ prunes only the level > 0 exploration), so a relayed chain returns
    // the whole cell — a documented overshoot, never an under-delivery or a
    // hang.
    let space = Space::uniform(2, 80, 2).unwrap();
    let query = Query::builder(&space).max("a0", 79).build().unwrap();
    let mut relayed = dense_cell_chain(true);
    let (_, outs) = relayed[0].begin_query(query, Some(4), 0);
    let (matches, _) = drive(&mut relayed, 0, outs);
    assert!(matches.len() >= 4, "σ satisfied via relay");
    assert_eq!(matches.len(), 12);
    for n in relayed.iter() {
        assert_eq!(n.pending_len(), 0, "no dangling state after the epidemic");
    }
}

#[test]
fn hostile_scope_fields_cannot_panic_a_node() {
    // A buggy or malicious peer sends out-of-range level/dims: the receiver
    // clamps them and answers normally instead of panicking (C-VALIDATE).
    use autosel_core::{Message, QueryId, QueryMsg};
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut nodes = population(&space, 50, 9, ProtocolConfig::default());
    let query = Query::builder(&space).min("a0", 40).build().unwrap();
    for (i, (level, dims)) in [(i8::MAX, u32::MAX), (i8::MIN, 0), (3, u32::MAX), (-1, 7)]
        .into_iter()
        .enumerate()
    {
        let msg = QueryMsg {
            id: QueryId { origin: 999, seq: i as u32 },
            query: query.clone().into(),
            sigma: Some(5),
            level,
            dims,
            dynamic: Vec::new(),
            count_only: false,
            visited_zero: Vec::new(),
            attempt: 1,
        };
        let outs = nodes[0].handle_message(999, Message::Query(msg), 0);
        assert!(!outs.is_empty(), "node answered or forwarded");
    }
}

#[test]
fn count_queries_agree_with_enumeration_at_constant_reply_size() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut nodes = population(&space, 400, 12, ProtocolConfig::default());
    let query = Query::builder(&space).min("a0", 30).range("a2", 10, 59).build().unwrap();

    // Enumerate.
    let (_, outs) = nodes[0].begin_query(query.clone(), None, 0);
    let (matches, _) = drive(&mut nodes, 0, outs);

    // Count-only: same traversal, aggregate-only replies.
    let mut count_result = None;
    let (_, outs) = nodes[0].begin_count_query(query.clone(), Vec::new(), 100);
    let mut inbox: VecDeque<(NodeId, NodeId, Message)> = VecDeque::new();
    let mut reply_matches = 0usize;
    for o in outs {
        if let Output::Send { to, msg } = o {
            inbox.push_back((0, to, msg));
        } else if let Output::Completed { count, .. } = o {
            count_result = Some(count);
        }
    }
    let mut now = 101;
    while let Some((from, to, msg)) = inbox.pop_front() {
        if let Message::Reply(r) = &msg {
            reply_matches += r.matching.len();
        }
        for o in nodes[to as usize].handle_message(from, msg, now) {
            match o {
                Output::Send { to: dst, msg } => inbox.push_back((to, dst, msg)),
                Output::Completed { count, .. } => count_result = Some(count),
                Output::NeighborFailed(_) => {}
            }
        }
        now += 1;
    }
    assert_eq!(count_result, Some(matches.len() as u64), "exact count");
    assert_eq!(reply_matches, 0, "count-only replies carry no match lists");
}
