//! Exactly-once accounting property: whatever the network does to one
//! forward's traffic — duplicating the QUERY (a retry redelivers it),
//! duplicating the REPLY, or reordering deliveries arbitrarily — the
//! upstream merges each subtree's contribution exactly once. Attempt ids
//! correlate every REPLY with the specific forward it answers, and the
//! bounded reply cache answers post-conclusion duplicates with the real
//! result instead of an empty stub, so neither the count total nor the
//! enumerated match set can drift.

use std::collections::HashMap;

use attrspace::{Query, Space};
use autosel_core::{
    Match, Message, Output, ProtocolConfig, QueryMsg, ReplyMsg, SelectionNode,
};
use epigossip::NodeId;
use proptest::prelude::*;

fn space() -> Space {
    Space::uniform(2, 80, 3).unwrap()
}

fn node(id: NodeId, vals: [u64; 2]) -> SelectionNode {
    let s = space();
    let point = s.point(&vals).unwrap();
    SelectionNode::new(id, &s, point, ProtocolConfig::default())
}

/// Sorts one batch of outputs into the in-flight mailboxes. Forwards can
/// only come from the origin; replies only from a downstream leaf, so the
/// sender is `from` for replies and implied for forwards.
fn absorb(
    from: NodeId,
    outs: Vec<Output>,
    pending_fwd: &mut Vec<(NodeId, QueryMsg)>,
    pending_rep: &mut Vec<(NodeId, ReplyMsg)>,
    completed: &mut Option<(Vec<Match>, u64)>,
) {
    for o in outs {
        match o {
            Output::Send { to, msg: Message::Query(q) } => pending_fwd.push((to, q)),
            Output::Send { to: _, msg: Message::Reply(r) } => pending_rep.push((from, r)),
            Output::Completed { matches, count, .. } => *completed = Some((matches, count)),
            Output::NeighborFailed(_) => {}
        }
    }
}

proptest! {
    /// Origin 1 forwards one query to two leaf subtrees (nodes 2 and 3, in
    /// distinct routing slots). The op tape then delivers, redelivers and
    /// reorders that traffic arbitrarily; afterwards everything still
    /// outstanding is drained. The query must complete with *exactly* the
    /// three matching nodes accounted — count mode (no identities to dedup
    /// by, the attempt tag is the only witness) and enumerate mode both.
    #[test]
    fn any_interleaving_of_duplicate_reorder_retry_merges_each_subtree_once(
        ops in prop::collection::vec((0u8..4, any::<u8>()), 0..48),
        count_mode in any::<bool>(),
    ) {
        let s = space();
        let mut a = node(1, [10, 10]);
        a.routing_mut().observe(2, s.point(&[70, 10]).unwrap());
        a.routing_mut().observe(3, s.point(&[10, 70]).unwrap());
        prop_assert_eq!(a.routing().link_count(), 2, "leaves must occupy distinct slots");

        let mut downstream: HashMap<NodeId, SelectionNode> = HashMap::new();
        downstream.insert(2, node(2, [70, 10]));
        downstream.insert(3, node(3, [10, 70]));

        // Matches all three nodes: exactness means the answer is 3, not
        // "at most 3" or "whatever survived the race".
        let query = Query::builder(&s).build().unwrap();
        let (qid, outs) = if count_mode {
            a.begin_count_query(query, Vec::new(), 0)
        } else {
            a.begin_query(query, None, 0)
        };

        let mut pending_fwd: Vec<(NodeId, QueryMsg)> = Vec::new();
        let mut pending_rep: Vec<(NodeId, ReplyMsg)> = Vec::new();
        let mut sent_fwd: Vec<(NodeId, QueryMsg)> = Vec::new();
        let mut sent_rep: Vec<(NodeId, ReplyMsg)> = Vec::new();
        let mut completed: Option<(Vec<Match>, u64)> = None;
        // The traversal is depth-first: the origin forwards into one
        // subtree now and into the next only after that reply merges (the
        // later forwards surface through `absorb` as replies drain).
        absorb(1, outs, &mut pending_fwd, &mut pending_rep, &mut completed);
        prop_assert_eq!(pending_fwd.len(), 1, "origin opens exactly one subtree first");

        for &(op, pick) in &ops {
            match op {
                // Deliver one pending forward to its leaf (first delivery).
                0 => {
                    if pending_fwd.is_empty() {
                        continue;
                    }
                    let (to, q) = pending_fwd.remove(pick as usize % pending_fwd.len());
                    sent_fwd.push((to, q.clone()));
                    let n = downstream.get_mut(&to).expect("forward targets a leaf");
                    let outs = n.handle_message(1, Message::Query(q), 0);
                    absorb(to, outs, &mut pending_fwd, &mut pending_rep, &mut completed);
                }
                // Retry/duplication of a forward: redeliver a QUERY copy
                // the leaf has already seen.
                1 => {
                    if sent_fwd.is_empty() {
                        continue;
                    }
                    let (to, q) = sent_fwd[pick as usize % sent_fwd.len()].clone();
                    let n = downstream.get_mut(&to).expect("forward targets a leaf");
                    let outs = n.handle_message(1, Message::Query(q), 0);
                    absorb(to, outs, &mut pending_fwd, &mut pending_rep, &mut completed);
                }
                // Deliver one pending reply to the origin — the index is
                // arbitrary, so replies arrive in any order.
                2 => {
                    if pending_rep.is_empty() {
                        continue;
                    }
                    let (from, r) = pending_rep.remove(pick as usize % pending_rep.len());
                    sent_rep.push((from, r.clone()));
                    let outs = a.handle_message(from, Message::Reply(r), 0);
                    absorb(1, outs, &mut pending_fwd, &mut pending_rep, &mut completed);
                }
                // Duplication of a reply: redeliver a REPLY copy the origin
                // has already merged.
                _ => {
                    if sent_rep.is_empty() {
                        continue;
                    }
                    let (from, r) = sent_rep[pick as usize % sent_rep.len()].clone();
                    let outs = a.handle_message(from, Message::Reply(r), 0);
                    absorb(1, outs, &mut pending_fwd, &mut pending_rep, &mut completed);
                }
            }
        }

        // Drain: whatever the tape left in flight is now delivered, so the
        // query always completes and the exactness assertion always runs.
        while !pending_fwd.is_empty() || !pending_rep.is_empty() {
            if let Some((to, q)) = pending_fwd.pop() {
                let n = downstream.get_mut(&to).expect("forward targets a leaf");
                let outs = n.handle_message(1, Message::Query(q.clone()), 0);
                sent_fwd.push((to, q));
                absorb(to, outs, &mut pending_fwd, &mut pending_rep, &mut completed);
            } else if let Some((from, r)) = pending_rep.pop() {
                let outs = a.handle_message(from, Message::Reply(r.clone()), 0);
                sent_rep.push((from, r));
                absorb(1, outs, &mut pending_fwd, &mut pending_rep, &mut completed);
            }
        }

        let (matches, count) = completed.expect("query completes once traffic drains");
        let _ = qid;
        if count_mode {
            prop_assert_eq!(count, 3, "each subtree (and the origin) counted exactly once");
            prop_assert!(matches.is_empty(), "count mode carries no match list");
        } else {
            let mut ids: Vec<NodeId> = matches.iter().map(|m| m.node).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, vec![1, 2, 3], "every node reported exactly once");
        }
        prop_assert_eq!(a.pending_len(), 0, "no leaked per-query state at the origin");
    }
}
