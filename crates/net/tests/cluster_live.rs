//! Live-runtime integration: real peer threads gossip an overlay into
//! existence, answer multi-attribute queries, and survive ungraceful kills —
//! the behaviours the paper demonstrated on DAS and PlanetLab.

use std::sync::Arc;
use std::time::Duration;

use attrspace::{Point, Query, Space};
use autosel_net::{NetCluster, NetConfig, Transport};
use autosel_obs::{FlightRecorder, ObsHandle, Registry, TraceTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Polls `pred` every 50 ms until it holds or `deadline` elapses; returns
/// whether it ever held. Replaces the fixed warm-up sleeps that guessed at
/// convergence speed and flaked on loaded single-CPU boxes: the condition is
/// on observable cluster state, the deadline only bounds a hang.
fn wait_until(mut pred: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = std::time::Instant::now();
    loop {
        if pred() {
            return true;
        }
        if start.elapsed() >= deadline {
            return false;
        }
        // This IS the polling helper the rule points everyone at;
        // the sleep is bounded by the caller's deadline.
        // lint:allow(thread-sleep-in-tests)
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Polls the cluster with `query` until delivery crosses `bar` or `tries`
/// rounds elapse — debug builds on loaded CI boxes converge slowly, so the
/// tests adapt instead of guessing a fixed warm-up sleep. Between rounds it
/// waits (bounded) for the overlay's mean link count to grow rather than
/// sleeping blind: on a fast box the next attempt fires as soon as routing
/// actually changed.
fn wait_for_delivery(cluster: &mut NetCluster, query: &Query, bar: f64, tries: u32) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..tries {
        let links_before = cluster.mean_links();
        let _ = wait_until(|| cluster.mean_links() > links_before, Duration::from_millis(700));
        let origin = cluster.random_node();
        if let Some(outcome) = cluster.query(origin, query.clone(), None, Duration::from_secs(30))
        {
            best = best.max(outcome.delivery());
            if best >= bar {
                return best;
            }
        }
    }
    best
}

fn points(space: &Space, n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let vals: Vec<u64> = (0..space.dims()).map(|_| rng.gen_range(0..80)).collect();
            space.point(&vals).unwrap()
        })
        .collect()
}

fn fast_config() -> NetConfig {
    NetConfig {
        gossip: epigossip::GossipConfig { period_ms: 30, ..Default::default() },
        // The per-neighbor timeout must cover a whole depth-first *subtree*
        // (many sequential hops), not one RTT — too tight a value amputates
        // subtrees and silently loses matches.
        protocol: autosel_core::ProtocolConfig { query_timeout_ms: 10_000, ..Default::default() },
        poll_interval_ms: 10,
        injected_latency_ms: Some((1, 3)),
        bootstrap_degree: 3,
        ..NetConfig::default()
    }
}

#[test]
fn mem_cluster_converges_and_answers_queries() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let cfg = fast_config();
    let pts = points(&space, 80, 1);
    let mut cluster = NetCluster::spawn(
        space.clone(),
        pts,
        cfg.clone(),
        Transport::mem(cfg.injected_latency_ms),
        7,
    )
    .unwrap();

    let query = Query::builder(&space).min("a0", 40).build().unwrap();
    let best = wait_for_delivery(&mut cluster, &query, 0.9, 15);
    assert!(best > 0.9, "live overlay reached only {best:.2}");
    cluster.shutdown();
}

#[test]
fn sigma_queries_return_promptly_on_live_cluster() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let cfg = fast_config();
    let pts = points(&space, 60, 2);
    let mut cluster =
        NetCluster::spawn(space.clone(), pts, cfg.clone(), Transport::mem(cfg.injected_latency_ms), 3)
            .unwrap();
    assert!(
        wait_until(|| cluster.mean_links() >= 1.0, Duration::from_secs(30)),
        "overlay never formed routing links"
    );

    // The overlay keeps converging while we poll: retry until a σ=5 query
    // actually finds 5 matches (bounded), instead of guessing a warm-up.
    let query = Query::builder(&space).min("a0", 10).build().unwrap();
    let mut outcome = None;
    for _ in 0..15 {
        let origin = cluster.random_node();
        if let Some(o) = cluster.query(origin, query.clone(), Some(5), Duration::from_secs(20)) {
            let enough = o.matches.len() >= 5;
            outcome = Some(o);
            if enough {
                break;
            }
        }
        // Live-runtime retry loop: the cluster runs on real sockets,
        // so backing off between σ retries needs real time; bounded
        // by the tries counter. lint:allow(thread-sleep-in-tests)
        std::thread::sleep(Duration::from_millis(100));
    }
    let outcome = outcome.expect("σ query completes");
    assert!(outcome.matches.len() >= 5);
    assert!(outcome.matches.iter().all(|m| query.matches(&m.values)));
    cluster.shutdown();
}

#[test]
fn overlay_survives_partial_kill_and_recovers() {
    let space = Space::uniform(2, 80, 3).unwrap();
    let cfg = fast_config();
    let pts = points(&space, 80, 3);
    let mut cluster =
        NetCluster::spawn(space.clone(), pts, cfg.clone(), Transport::mem(cfg.injected_latency_ms), 11)
            .unwrap();
    // Converge before the kill so the survivors have links to recover
    // through; bounded wait on the link gauge, not a guessed sleep.
    assert!(
        wait_until(|| cluster.mean_links() >= 1.0, Duration::from_secs(30)),
        "overlay never formed routing links"
    );

    let victims = cluster.kill_fraction(0.3);
    assert!(!victims.is_empty());

    // Recovery: gossip evicts the dead and re-links.
    let query = Query::builder(&space).build().unwrap(); // match everyone alive
    let best = wait_for_delivery(&mut cluster, &query, 0.85, 15);
    assert!(best > 0.85, "after 30% kill, best delivery {best:.2}");
    cluster.shutdown();
}

#[test]
fn tcp_cluster_end_to_end() {
    let space = Space::uniform(2, 80, 2).unwrap();
    let cfg = NetConfig {
        gossip: epigossip::GossipConfig { period_ms: 40, ..Default::default() },
        injected_latency_ms: None,
        ..fast_config()
    };
    let pts = points(&space, 16, 4);
    let mut cluster =
        NetCluster::spawn(space.clone(), pts, cfg, Transport::tcp(space.clone()), 5).unwrap();
    let query = Query::builder(&space).min("a0", 20).build().unwrap();
    let best = wait_for_delivery(&mut cluster, &query, 0.75, 12);
    assert!(best > 0.75, "tcp delivery {best:.2}");
    let traffic = cluster.traffic();
    assert!(traffic.values().all(|&(s, r)| s > 0 || r > 0), "all peers active");
    cluster.shutdown();
}

/// The full cluster arc — spawn, converge, query, kill a node, recover —
/// over real TCP sockets, the transport the paper's PlanetLab deployment
/// ran on. Also pins the persistent data plane's shape: many frames ride
/// few connections (no connect-per-message), and nothing overflowed the
/// bounded link queues at this load.
#[test]
fn tcp_cluster_survives_kill_and_recovers() {
    let space = Space::uniform(2, 80, 2).unwrap();
    let cfg = NetConfig {
        gossip: epigossip::GossipConfig { period_ms: 40, ..Default::default() },
        injected_latency_ms: None,
        ..fast_config()
    };
    let pts = points(&space, 12, 19);
    let mut cluster =
        NetCluster::spawn(space.clone(), pts, cfg, Transport::tcp(space.clone()), 23).unwrap();
    assert!(
        wait_until(|| cluster.mean_links() >= 1.0, Duration::from_secs(30)),
        "tcp overlay never formed routing links"
    );

    let query = Query::builder(&space).build().unwrap(); // match everyone alive
    let best = wait_for_delivery(&mut cluster, &query, 0.8, 12);
    assert!(best > 0.8, "tcp delivery before kill {best:.2}");

    let victims = cluster.kill_fraction(0.2);
    assert!(!victims.is_empty());

    // Recovery: fail-fast `Failed` events + gossip eviction re-route
    // around the dead sockets, exactly as on the mem transport.
    let best = wait_for_delivery(&mut cluster, &query, 0.8, 12);
    assert!(best > 0.8, "tcp delivery after kill {best:.2}");

    let stats = cluster.transport().tcp_stats().expect("tcp transport");
    assert!(stats.tx_frames > 0, "no frames sent: {stats:?}");
    assert!(stats.conn_established >= 1, "no connections: {stats:?}");
    // The tentpole invariant at cluster scale: connections are persistent,
    // so the whole run establishes far fewer connections than it sends
    // frames (the old transport had conn_established == tx_frames).
    assert!(
        stats.conn_established * 2 <= stats.tx_frames,
        "connect-per-message regression: {stats:?}"
    );
    cluster.shutdown();
}

/// Wall-clock tracing on the live runtime: the same observer that watches
/// the simulator reconstructs a live cluster's queries into rooted trees,
/// and the gossip gauges tick with real rounds.
#[test]
fn observed_cluster_traces_queries_and_gossip() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let cfg = fast_config();
    let pts = points(&space, 40, 8);
    let tree = Arc::new(TraceTree::new());
    let reg = Arc::new(Registry::new());
    let mut fan = autosel_obs::Fanout::new();
    fan.push(tree.clone());
    fan.push(reg.clone());
    let mut cluster = NetCluster::spawn_observed(
        space.clone(),
        pts,
        cfg.clone(),
        Transport::mem(cfg.injected_latency_ms),
        13,
        ObsHandle::of(fan),
    )
    .unwrap();

    let query = Query::builder(&space).min("a0", 40).build().unwrap();
    let best = wait_for_delivery(&mut cluster, &query, 0.9, 15);
    assert!(best > 0.5, "observed overlay reached only {best:.2}");
    cluster.shutdown();

    assert!(reg.counter("event.gossip_round") > 0, "live gossip rounds unobserved");
    assert!(reg.counter("event.query_issued") > 0, "live queries unobserved");
    let queries = tree.queries();
    assert!(!queries.is_empty(), "no query traces recorded");
    for q in &queries {
        let qt = tree.query(*q).expect("trace recorded");
        assert_eq!(qt.root, q.origin, "each live query has one rooted tree at its origin");
    }
    // Threads interleave freely, yet causality must still resolve: every
    // recorded hop hangs off a recorded parent.
    assert_eq!(tree.problems(), Vec::<String>::new());
}

/// Soak-style health bounds on a *live* cluster: the per-peer gossip gauges
/// aggregate into the same layer reading the simulator's `gossip_health()`
/// produces, so the same bounds apply — every peer gossips into a non-empty
/// view, descriptor ages stay bounded by a few periods, and the bounded
/// inboxes never drop under idle-plus-query load.
#[test]
fn live_gossip_health_within_soak_bounds() {
    let space = Space::uniform(2, 80, 3).unwrap();
    let cfg = fast_config();
    let pts = points(&space, 40, 21);
    let cluster = NetCluster::spawn(
        space.clone(),
        pts,
        cfg.clone(),
        Transport::mem(cfg.injected_latency_ms),
        17,
    )
    .unwrap();

    // Converged = every peer's random view is non-empty (mean ≥ 1 link per
    // layer would still pass with stragglers; require links ≥ nodes).
    assert!(
        wait_until(
            || {
                let (random, semantic) = cluster.gossip_health();
                random.links >= random.nodes && semantic.links >= semantic.nodes
            },
            Duration::from_secs(30),
        ),
        "gossip views never populated: {:?}",
        cluster.gossip_health()
    );

    let (random, semantic) = cluster.gossip_health();
    assert_eq!(random.nodes, 40);
    assert_eq!(semantic.nodes, 40);
    assert!(random.turnover > 0, "random layer admitted no descriptors");
    // Freshness: mean descriptor age stays within a handful of gossip
    // rounds once the overlay is warm (ages are in rounds ×1000; the bound
    // is deliberately loose for loaded single-CPU CI boxes).
    assert!(
        random.mean_age_x1000() < 64_000,
        "stale random views: {:?}",
        random
    );

    // The bounded inboxes held: nothing dropped at idle+query load.
    let stats = cluster.inbox_stats();
    let dropped: u64 = stats.values().map(|s| s.dropped).sum();
    assert_eq!(dropped, 0, "bounded inboxes dropped under light load");
    cluster.shutdown();
}

/// Opt-in bounded stress loop chasing the PR-9 cluster_live caveat (one
/// unreproduced failure in a single full-workspace run on the 1-CPU
/// container). Each iteration runs the full cluster arc — spawn, converge,
/// query, kill a fraction, recover, shutdown — over both transports with a
/// fresh seed. Debug builds run it under the tracked-lock tripwire, so a
/// lock-order inversion or a deadlock inside the data plane panics with
/// both acquisition chains named instead of hanging; on any failure the
/// flight recorder's last events are dumped to a JSONL file whose path is
/// in the panic message, ready for `tracedump`-style inspection.
///
/// ```text
/// AUTOSEL_STRESS_ITERS=25 cargo test -p autosel-net --test cluster_live -- --ignored stress
/// ```
#[test]
#[ignore = "bounded stress loop; opt-in via --ignored (AUTOSEL_STRESS_ITERS, default 6)"]
fn stress_cluster_arcs_under_tracked_locks() {
    let iters: u64 = std::env::var("AUTOSEL_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);

    // One arc: converge, query, kill, recover. The delivery bars are the
    // liveness floor (a stalled data plane scores 0.0), not a performance
    // claim — the interesting failures are hangs, inversion panics and
    // queries that never complete.
    fn arc_once(seed: u64, tcp: bool, flight: &Arc<FlightRecorder>) {
        let space = Space::uniform(2, 80, 3).unwrap();
        let mut cfg = fast_config();
        let transport = if tcp {
            cfg.injected_latency_ms = None;
            cfg.gossip.period_ms = 40;
            Transport::tcp(space.clone())
        } else {
            Transport::mem(cfg.injected_latency_ms)
        };
        let n = if tcp { 12 } else { 30 };
        let mut cluster = NetCluster::spawn_observed(
            space.clone(),
            points(&space, n, seed),
            cfg,
            transport,
            seed,
            ObsHandle::new(Arc::clone(flight) as Arc<dyn autosel_obs::Observer>),
        )
        .unwrap();
        assert!(
            wait_until(|| cluster.mean_links() >= 1.0, Duration::from_secs(30)),
            "overlay never formed routing links (seed {seed}, tcp {tcp})"
        );
        let query = Query::builder(&space).build().unwrap();
        let best = wait_for_delivery(&mut cluster, &query, 0.5, 8);
        assert!(best > 0.0, "no query ever delivered (seed {seed}, tcp {tcp})");
        let victims = cluster.kill_fraction(0.25);
        assert!(!victims.is_empty());
        let best = wait_for_delivery(&mut cluster, &query, 0.5, 8);
        assert!(best > 0.0, "post-kill data plane stalled (seed {seed}, tcp {tcp})");
        cluster.shutdown();
    }

    for i in 0..iters {
        let flight = Arc::new(FlightRecorder::new(4096));
        let seed = 0xC0FF_EE00 + i;
        for tcp in [false, true] {
            let f = Arc::clone(&flight);
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                arc_once(seed, tcp, &f);
            }));
            if let Err(panic) = run {
                let path = std::env::temp_dir()
                    .join(format!("cluster_live_stress_{seed:x}_{}.jsonl", if tcp { "tcp" } else { "mem" }));
                if let Ok(mut out) = std::fs::File::create(&path) {
                    let _ = flight.dump_jsonl(&mut out);
                }
                eprintln!(
                    "stress iteration {i} ({}) failed; flight recorder dumped to {}",
                    if tcp { "tcp" } else { "mem" },
                    path.display()
                );
                std::panic::resume_unwind(panic);
            }
        }
        eprintln!("stress iteration {}/{iters} clean", i + 1);
    }
}

#[test]
fn count_queries_on_live_cluster() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let cfg = fast_config();
    let pts = points(&space, 60, 6);
    let truth = pts.iter().filter(|p| p.values()[0] >= 40).count() as u64;
    let mut cluster =
        NetCluster::spawn(space.clone(), pts, cfg.clone(), Transport::mem(cfg.injected_latency_ms), 9)
            .unwrap();
    let query = Query::builder(&space).min("a0", 40).build().unwrap();
    // Converge first (reuse the adaptive helper), then count.
    let _ = wait_for_delivery(&mut cluster, &query, 0.95, 15);
    let origin = cluster.random_node();
    let count = cluster
        .count(origin, query, Duration::from_secs(30))
        .expect("count completes");
    assert!(
        count >= truth * 9 / 10 && count <= truth,
        "count {count} vs truth {truth}"
    );
    cluster.shutdown();
}
