//! Codec properties: every well-formed message round-trips bit-exactly, and
//! *no* byte sequence can panic the decoder (inputs come from the network).

use attrspace::{Query, Range, Space};
use autosel_core::{
    DynamicConstraint, Match, Message, NodeProfile, QueryId, QueryMsg, ReplyMsg,
};
use autosel_net::wire::{decode, encode};
use autosel_net::NetMessage;
use bytes::Bytes;
use epigossip::{Descriptor, GossipMessage, Layer};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn arb_range() -> impl Strategy<Value = Range> {
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| Range { lo: a.min(b), hi: a.max(b) })
}

fn arb_point(d: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), d)
}

fn arb_query_msg(space: Space) -> impl Strategy<Value = QueryMsg> {
    let d = space.dims();
    (
        any::<u64>(),
        any::<u32>(),
        prop::option::of(any::<u32>()),
        -1i8..=3,
        any::<u32>(),
        prop::collection::vec(arb_range(), d),
        prop::collection::vec((any::<u32>(), arb_range()), 0..4),
        prop::collection::vec(any::<u64>(), 0..8),
    )
        .prop_map(move |(origin, seq, sigma, level, dims, ranges, dynamic, visited)| QueryMsg {
            id: QueryId { origin, seq },
            query: Query::from_ranges(&space, ranges).expect("lo<=hi by construction").into(),
            sigma,
            level,
            dims,
            dynamic: dynamic
                .into_iter()
                .map(|(key, range)| DynamicConstraint { key, range })
                .collect(),
            count_only: origin % 2 == 0,
            visited_zero: visited,
            attempt: seq ^ dims,
        })
}

fn arb_reply_msg(space: Space) -> impl Strategy<Value = ReplyMsg> {
    let d = space.dims();
    (
        any::<u64>(),
        any::<u32>(),
        prop::collection::vec((any::<u64>(), arb_point(d)), 0..6),
    )
        .prop_map(move |(origin, seq, matching)| {
            let matching: Vec<Match> = matching
                .into_iter()
                .map(|(node, vals)| Match { node, values: space.point(&vals).expect("arity") })
                .collect();
            ReplyMsg {
                id: QueryId { origin, seq },
                count: matching.len() as u64,
                matching,
                attempt: seq.rotate_left(7),
            }
        })
}

fn arb_gossip(space: Space) -> impl Strategy<Value = GossipMessage<NodeProfile>> {
    let d = space.dims();
    let s2 = space.clone();
    let descriptor = (any::<u64>(), any::<u32>(), arb_point(d)).prop_map(move |(id, age, vals)| {
        Descriptor { id, age, profile: NodeProfile::new(&s2, s2.point(&vals).expect("arity")) }
    });
    let batch = prop::collection::vec(descriptor, 0..5);
    let layer = prop_oneof![Just(Layer::Random), Just(Layer::Semantic)];
    let s3 = space;
    (layer, arb_point(d), batch, any::<bool>()).prop_map(move |(layer, vals, batch, req)| {
        if req {
            GossipMessage::Request {
                layer,
                from_profile: NodeProfile::new(&s3, s3.point(&vals).expect("arity")),
                batch,
            }
        } else {
            GossipMessage::Response { layer, batch }
        }
    })
}

proptest! {
    #[test]
    fn query_messages_roundtrip(d in 1usize..8, msg_seed in any::<u64>()) {
        let space = Space::uniform(d, 80, 3).unwrap();
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = msg_seed; // population diversity comes from the outer cases
        let msg = arb_query_msg(space.clone())
            .new_tree(&mut runner)
            .unwrap()
            .current();
        let net = NetMessage::Protocol(Message::Query(msg));
        prop_assert_eq!(decode(&space, encode(&net)).unwrap(), net);
    }

    #[test]
    fn reply_messages_roundtrip(d in 1usize..8) {
        let space = Space::uniform(d, 80, 3).unwrap();
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let msg = arb_reply_msg(space.clone())
            .new_tree(&mut runner)
            .unwrap()
            .current();
        let net = NetMessage::Protocol(Message::Reply(msg));
        prop_assert_eq!(decode(&space, encode(&net)).unwrap(), net);
    }

    #[test]
    fn gossip_messages_roundtrip(d in 1usize..8) {
        let space = Space::uniform(d, 80, 3).unwrap();
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let msg = arb_gossip(space.clone())
            .new_tree(&mut runner)
            .unwrap()
            .current();
        let net = NetMessage::Gossip(msg);
        prop_assert_eq!(decode(&space, encode(&net)).unwrap(), net);
    }

    /// Fuzz: arbitrary bytes never panic the decoder — they produce a
    /// message or an error.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let space = Space::uniform(5, 80, 3).unwrap();
        let _ = decode(&space, Bytes::from(bytes));
    }

    /// Fuzz: truncating a valid message at any point yields an error, not a
    /// bogus message or a panic.
    #[test]
    fn truncation_is_detected(cut in 0usize..200) {
        let space = Space::uniform(5, 80, 3).unwrap();
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let msg = arb_query_msg(space.clone()).new_tree(&mut runner).unwrap().current();
        let full = encode(&NetMessage::Protocol(Message::Query(msg)));
        if cut < full.len() {
            let sliced = full.slice(0..cut);
            prop_assert!(decode(&space, sliced).is_err());
        }
    }

    /// Fuzz: flipping one byte of a valid message never panics.
    #[test]
    fn bitflips_never_panic(pos in 0usize..200, flip in 1u8..255) {
        let space = Space::uniform(4, 80, 3).unwrap();
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let msg = arb_query_msg(space.clone()).new_tree(&mut runner).unwrap().current();
        let full = encode(&NetMessage::Protocol(Message::Query(msg)));
        let mut bytes = full.to_vec();
        if pos < bytes.len() {
            bytes[pos] ^= flip;
        }
        let _ = decode(&space, Bytes::from(bytes));
    }
}
