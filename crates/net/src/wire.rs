//! Length-prefixed binary codec for protocol and gossip messages.
//!
//! Hand-rolled on [`bytes`]: the message shapes are small and fixed given
//! the attribute space, so a serde format dependency would buy nothing
//! (DESIGN.md §5). All integers are little-endian.

use std::error::Error;
use std::fmt;

use attrspace::{Query, Range, Space, SpaceError};
use autosel_core::{DynamicConstraint, Match, Message, NodeProfile, QueryId, QueryMsg, ReplyMsg};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use epigossip::{Descriptor, GossipMessage, Layer};

use crate::peer::NetMessage;

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown message tag.
    BadTag(
        /// The offending tag byte.
        u8,
    ),
    /// The payload disagrees with the attribute space.
    BadSpace(
        /// The underlying space error.
        SpaceError,
    ),
    /// Bytes left over after a complete message.
    Trailing(
        /// Number of unread bytes.
        usize,
    ),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadSpace(e) => write!(f, "payload incompatible with space: {e}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::BadSpace(e) => Some(e),
            _ => None,
        }
    }
}

const TAG_QUERY: u8 = 0;
const TAG_REPLY: u8 = 1;
const TAG_GOSSIP_REQ: u8 = 2;
const TAG_GOSSIP_RESP: u8 = 3;

/// Serializes a message.
pub fn encode(msg: &NetMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(128);
    match msg {
        NetMessage::Protocol(Message::Query(q)) => {
            buf.put_u8(TAG_QUERY);
            put_query_id(&mut buf, q.id);
            buf.put_u32_le(q.attempt);
            match q.sigma {
                Some(s) => {
                    buf.put_u8(1);
                    buf.put_u32_le(s);
                }
                None => buf.put_u8(0),
            }
            buf.put_i8(q.level);
            buf.put_u32_le(q.dims);
            buf.put_u16_le(q.query.ranges().len() as u16);
            for r in q.query.ranges() {
                buf.put_u64_le(r.lo);
                buf.put_u64_le(r.hi);
            }
            buf.put_u16_le(q.dynamic.len() as u16);
            for c in &q.dynamic {
                buf.put_u32_le(c.key);
                buf.put_u64_le(c.range.lo);
                buf.put_u64_le(c.range.hi);
            }
            buf.put_u32_le(q.visited_zero.len() as u32);
            for &v in &q.visited_zero {
                buf.put_u64_le(v);
            }
            buf.put_u8(u8::from(q.count_only));
        }
        NetMessage::Protocol(Message::Reply(r)) => {
            buf.put_u8(TAG_REPLY);
            put_query_id(&mut buf, r.id);
            buf.put_u32_le(r.attempt);
            buf.put_u64_le(r.count);
            buf.put_u32_le(r.matching.len() as u32);
            for m in &r.matching {
                buf.put_u64_le(m.node);
                put_values(&mut buf, m.values.values());
            }
        }
        NetMessage::Gossip(GossipMessage::Request { layer, from_profile, batch }) => {
            buf.put_u8(TAG_GOSSIP_REQ);
            buf.put_u8(layer_tag(*layer));
            put_values(&mut buf, from_profile.point().values());
            put_batch(&mut buf, batch);
        }
        NetMessage::Gossip(GossipMessage::Response { layer, batch }) => {
            buf.put_u8(TAG_GOSSIP_RESP);
            buf.put_u8(layer_tag(*layer));
            put_batch(&mut buf, batch);
        }
    }
    buf.freeze()
}

/// Deserializes a message; `space` supplies dimensionality and bucketing.
///
/// # Errors
///
/// Any [`WireError`] on malformed input. Inputs are untrusted: no panic on
/// arbitrary bytes (fuzzed in `tests/wire_roundtrip.rs`).
pub fn decode(space: &Space, mut buf: Bytes) -> Result<NetMessage, WireError> {
    let tag = take_u8(&mut buf)?;
    let msg = match tag {
        TAG_QUERY => {
            let id = take_query_id(&mut buf)?;
            let attempt = take_u32(&mut buf)?;
            let sigma = match take_u8(&mut buf)? {
                0 => None,
                _ => Some(take_u32(&mut buf)?),
            };
            let level = take_u8(&mut buf)? as i8;
            let dims = take_u32(&mut buf)?;
            let n = take_u16(&mut buf)? as usize;
            let mut ranges = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                ranges.push(Range { lo: take_u64(&mut buf)?, hi: take_u64(&mut buf)? });
            }
            let query = Query::from_ranges(space, ranges).map_err(WireError::BadSpace)?;
            let nd = take_u16(&mut buf)? as usize;
            let mut dynamic = Vec::with_capacity(nd.min(64));
            for _ in 0..nd {
                dynamic.push(DynamicConstraint {
                    key: take_u32(&mut buf)?,
                    range: Range { lo: take_u64(&mut buf)?, hi: take_u64(&mut buf)? },
                });
            }
            let nv = take_u32(&mut buf)? as usize;
            let mut visited_zero = Vec::with_capacity(nv.min(4096));
            for _ in 0..nv {
                visited_zero.push(take_u64(&mut buf)?);
            }
            let count_only = take_u8(&mut buf)? != 0;
            NetMessage::Protocol(Message::Query(QueryMsg {
                id,
                query: query.into(),
                sigma,
                level,
                dims,
                dynamic,
                count_only,
                visited_zero,
                attempt,
            }))
        }
        TAG_REPLY => {
            let id = take_query_id(&mut buf)?;
            let attempt = take_u32(&mut buf)?;
            let count = take_u64(&mut buf)?;
            let n = take_u32(&mut buf)? as usize;
            let mut matching = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let node = take_u64(&mut buf)?;
                let values = take_point(space, &mut buf)?;
                matching.push(Match { node, values });
            }
            NetMessage::Protocol(Message::Reply(ReplyMsg { id, matching, count, attempt }))
        }
        TAG_GOSSIP_REQ => {
            let layer = take_layer(&mut buf)?;
            let point = take_point(space, &mut buf)?;
            let from_profile = NodeProfile::new(space, point);
            let batch = take_batch(space, &mut buf)?;
            NetMessage::Gossip(GossipMessage::Request { layer, from_profile, batch })
        }
        TAG_GOSSIP_RESP => {
            let layer = take_layer(&mut buf)?;
            let batch = take_batch(space, &mut buf)?;
            NetMessage::Gossip(GossipMessage::Response { layer, batch })
        }
        t => return Err(WireError::BadTag(t)),
    };
    if buf.has_remaining() {
        return Err(WireError::Trailing(buf.remaining()));
    }
    Ok(msg)
}

fn layer_tag(layer: Layer) -> u8 {
    match layer {
        Layer::Random => 0,
        Layer::Semantic => 1,
    }
}

fn put_query_id(buf: &mut BytesMut, id: QueryId) {
    buf.put_u64_le(id.origin);
    buf.put_u32_le(id.seq);
}

fn put_values(buf: &mut BytesMut, values: &[u64]) {
    buf.put_u16_le(values.len() as u16);
    for &v in values {
        buf.put_u64_le(v);
    }
}

fn put_batch(buf: &mut BytesMut, batch: &[Descriptor<NodeProfile>]) {
    buf.put_u16_le(batch.len() as u16);
    for d in batch {
        buf.put_u64_le(d.id);
        buf.put_u32_le(d.age);
        put_values(buf, d.profile.point().values());
    }
}

fn take_u8(buf: &mut Bytes) -> Result<u8, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u8())
}

fn take_u16(buf: &mut Bytes) -> Result<u16, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u16_le())
}

fn take_u32(buf: &mut Bytes) -> Result<u32, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn take_u64(buf: &mut Bytes) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn take_query_id(buf: &mut Bytes) -> Result<QueryId, WireError> {
    Ok(QueryId { origin: take_u64(buf)?, seq: take_u32(buf)? })
}

fn take_layer(buf: &mut Bytes) -> Result<Layer, WireError> {
    match take_u8(buf)? {
        0 => Ok(Layer::Random),
        1 => Ok(Layer::Semantic),
        t => Err(WireError::BadTag(t)),
    }
}

fn take_point(space: &Space, buf: &mut Bytes) -> Result<attrspace::Point, WireError> {
    let n = take_u16(buf)? as usize;
    if n != space.dims() {
        return Err(WireError::BadSpace(SpaceError::WrongArity {
            got: n,
            expected: space.dims(),
        }));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(take_u64(buf)?);
    }
    space.point(&values).map_err(WireError::BadSpace)
}

fn take_batch(
    space: &Space,
    buf: &mut Bytes,
) -> Result<Vec<Descriptor<NodeProfile>>, WireError> {
    let n = take_u16(buf)? as usize;
    let mut batch = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let id = take_u64(buf)?;
        let age = take_u32(buf)?;
        let point = take_point(space, buf)?;
        batch.push(Descriptor { id, age, profile: NodeProfile::new(space, point) });
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Space {
        Space::uniform(3, 80, 3).unwrap()
    }

    #[test]
    fn query_roundtrip() {
        let s = space();
        let q = QueryMsg {
            id: QueryId { origin: 7, seq: 3 },
            query: Query::builder(&s).min("a0", 40).range("a2", 5, 10).build().unwrap().into(),
            sigma: Some(50),
            level: 2,
            dims: 0b101,
            dynamic: vec![DynamicConstraint { key: 9, range: Range { lo: 5, hi: 10 } }],
            count_only: true,
            visited_zero: vec![3, 8],
            attempt: 6,
        };
        let msg = NetMessage::Protocol(Message::Query(q.clone()));
        let back = decode(&s, encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn reply_roundtrip() {
        let s = space();
        let msg = NetMessage::Protocol(Message::Reply(ReplyMsg {
            id: QueryId { origin: 1, seq: 0 },
            matching: vec![
                Match { node: 5, values: s.point(&[1, 2, 3]).unwrap() },
                Match { node: 9, values: s.point(&[70, 0, 80]).unwrap() },
            ],
            count: 2,
            attempt: 4,
        }));
        assert_eq!(decode(&s, encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn gossip_roundtrip() {
        let s = space();
        let p = |v: &[u64]| NodeProfile::new(&s, s.point(v).unwrap());
        for msg in [
            NetMessage::Gossip(GossipMessage::Request {
                layer: Layer::Random,
                from_profile: p(&[1, 2, 3]),
                batch: vec![Descriptor { id: 4, age: 9, profile: p(&[4, 5, 6]) }],
            }),
            NetMessage::Gossip(GossipMessage::Response {
                layer: Layer::Semantic,
                batch: vec![],
            }),
        ] {
            assert_eq!(decode(&s, encode(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn rejects_malformed() {
        let s = space();
        assert_eq!(decode(&s, Bytes::new()).unwrap_err(), WireError::Truncated);
        assert_eq!(
            decode(&s, Bytes::from_static(&[99])).unwrap_err(),
            WireError::BadTag(99)
        );
        // Arity mismatch: a query with 2 ranges in a 3-d space.
        let two = Space::uniform(2, 80, 3).unwrap();
        let msg = NetMessage::Protocol(Message::Query(QueryMsg {
            id: QueryId { origin: 0, seq: 0 },
            query: Query::builder(&two).build().unwrap().into(),
            sigma: None,
            level: 3,
            dims: 0b11,
            dynamic: Vec::new(),
            count_only: false,
            visited_zero: Vec::new(),
            attempt: 1,
        }));
        assert!(matches!(
            decode(&s, encode(&msg)).unwrap_err(),
            WireError::BadSpace(_)
        ));
        // Trailing garbage.
        let good = encode(&NetMessage::Gossip(GossipMessage::Response {
            layer: Layer::Random,
            batch: vec![],
        }));
        let mut bad = BytesMut::from(&good[..]);
        bad.put_u8(0);
        assert_eq!(decode(&s, bad.freeze()).unwrap_err(), WireError::Trailing(1));
    }
}
