use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use attrspace::{Point, Query, Space};
use autosel_core::Match;
use autosel_obs::{Event, ObsHandle};
use epigossip::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::peer::{Command, PeerCounters, PeerEvent, PeerTask};
use crate::{NetConfig, Transport};

struct PeerHandle {
    events: mpsc::Sender<PeerEvent>,
    counters: Arc<PeerCounters>,
    point: Point,
    thread: Option<JoinHandle<()>>,
}

/// The result of a cluster-issued query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Matches reported to the originator.
    pub matches: Vec<Match>,
    /// Nodes matching the query at issue time (alive then).
    pub truth: usize,
}

impl QueryOutcome {
    /// Fraction of then-matching nodes reported (≤ the paper's delivery:
    /// a reached node whose reply was lost is not counted).
    pub fn delivery(&self) -> f64 {
        if self.truth == 0 {
            1.0
        } else {
            self.matches.len() as f64 / self.truth as f64
        }
    }
}

/// A live population of overlay nodes, one thread per node.
///
/// Emulates the paper's DAS (in-memory transport) and PlanetLab
/// ([`Transport::tcp`]) deployments. Every peer is an independent thread;
/// the cluster handle can issue queries at any node, kill nodes
/// ungracefully, and read per-node traffic counters.
pub struct NetCluster {
    space: Space,
    transport: Transport,
    peers: HashMap<NodeId, PeerHandle>,
    rng: StdRng,
    /// Observability sink handed to every peer; null unless spawned via
    /// [`spawn_observed`](Self::spawn_observed). Events carry wall-clock
    /// milliseconds since cluster start.
    obs: ObsHandle,
    /// Cluster start instant — the zero point of event timestamps.
    started: Instant,
}

impl std::fmt::Debug for NetCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetCluster")
            .field("peers", &self.peers.len())
            .finish_non_exhaustive()
    }
}

impl NetCluster {
    /// Spawns `points.len()` peers on the given transport. Each is
    /// introduced to `config.bootstrap_degree` random earlier peers, so the
    /// overlay must *gossip itself* into a routed state (give it a few
    /// periods before expecting full delivery).
    ///
    /// # Errors
    ///
    /// I/O errors from TCP listener binding.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `points` is empty.
    pub fn spawn(
        space: Space,
        points: Vec<Point>,
        config: NetConfig,
        transport: Transport,
        seed: u64,
    ) -> std::io::Result<Self> {
        Self::spawn_observed(space, points, config, transport, seed, ObsHandle::null())
    }

    /// Like [`spawn`](Self::spawn) but with an observability sink installed
    /// on every peer before its first message. Event timestamps are
    /// wall-clock milliseconds since this call — the same clock the peers'
    /// timeout logic runs on, so a trace from a deployment lines up with a
    /// trace from the simulator structurally (only the `at` values differ).
    ///
    /// # Errors
    ///
    /// I/O errors from TCP listener binding.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `points` is empty.
    pub fn spawn_observed(
        space: Space,
        points: Vec<Point>,
        config: NetConfig,
        transport: Transport,
        seed: u64,
        obs: ObsHandle,
    ) -> std::io::Result<Self> {
        config.validate();
        assert!(!points.is_empty(), "cluster needs at least one node");
        let started = Instant::now();
        let rng = StdRng::seed_from_u64(seed);
        let mut cluster =
            NetCluster { space, transport, peers: HashMap::new(), rng, obs, started };
        for (i, point) in points.into_iter().enumerate() {
            cluster.spawn_peer(i as NodeId, point, &config, started)?;
        }
        // Bootstrap introductions (ids are known to the spawner only).
        let ids: Vec<NodeId> = {
            let mut ids: Vec<NodeId> = cluster.peers.keys().copied().collect();
            ids.sort_unstable();
            ids
        };
        for &id in &ids {
            for _ in 0..config.bootstrap_degree {
                let other = ids[cluster.rng.gen_range(0..ids.len())];
                if other != id {
                    let point = cluster.peers[&other].point.clone();
                    let _ = cluster.peers[&id]
                        .events
                        .send(PeerEvent::Command(Command::Introduce(other, point)));
                }
            }
        }
        Ok(cluster)
    }

    fn spawn_peer(
        &mut self,
        id: NodeId,
        point: Point,
        config: &NetConfig,
        started: Instant,
    ) -> std::io::Result<()> {
        let (events_tx, events_rx) = mpsc::channel();
        self.transport.register(id, events_tx.clone())?;
        let counters = Arc::new(PeerCounters::default());
        let task = PeerTask::new(
            id,
            &self.space,
            point.clone(),
            config.clone(),
            self.transport.clone(),
            events_rx,
            events_tx.clone(),
            Arc::clone(&counters),
            started,
            self.obs.clone(),
        );
        let thread = std::thread::Builder::new()
            .name(format!("autosel-net-peer-{id}"))
            .spawn(move || task.run())?;
        self.peers.insert(
            id,
            PeerHandle { events: events_tx, counters, point, thread: Some(thread) },
        );
        Ok(())
    }

    /// Alive node ids, in ascending order.
    pub fn ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.peers.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether all nodes are gone.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// A uniformly random alive node.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is empty.
    pub fn random_node(&mut self) -> NodeId {
        let ids = self.ids();
        assert!(!ids.is_empty(), "empty cluster");
        ids[self.rng.gen_range(0..ids.len())]
    }

    /// Issues `query` at `origin` and waits for completion (bounded by
    /// `timeout`). Returns `None` on timeout or if the origin died.
    pub fn query(
        &mut self,
        origin: NodeId,
        query: Query,
        sigma: Option<u32>,
        timeout: Duration,
    ) -> Option<QueryOutcome> {
        let truth = self
            .peers
            .values()
            .filter(|p| query.matches(&p.point))
            .count();
        let (tx, rx) = mpsc::channel();
        self.peers
            .get(&origin)?
            .events
            .send(PeerEvent::Command(Command::BeginQuery { query, sigma, reply: tx }))
            .ok()?;
        let (_, matches) = rx.recv_timeout(timeout).ok()?;
        Some(QueryOutcome { matches, truth })
    }

    /// Runs a *count-only* query at `origin`: the answer is a single exact
    /// integer aggregated along the traversal tree (constant-size replies).
    /// Returns `None` on timeout or a dead origin.
    pub fn count(&mut self, origin: NodeId, query: Query, timeout: Duration) -> Option<u64> {
        let (tx, rx) = mpsc::channel();
        self.peers
            .get(&origin)?
            .events
            .send(PeerEvent::Command(Command::BeginCount { query, reply: tx }))
            .ok()?;
        rx.recv_timeout(timeout).ok()
    }

    /// Kills `id` ungracefully: its thread stops, its inbox unroutes, no
    /// goodbye is gossiped.
    pub fn kill(&mut self, id: NodeId) {
        if let Some(p) = self.peers.remove(&id) {
            let _ = p.events.send(PeerEvent::Command(Command::Shutdown));
            self.transport.deregister(id);
            drop(p.thread); // detach; the thread exits on the shutdown command
            self.obs.emit(|| Event::NodeCrashed {
                at: self.started.elapsed().as_millis() as u64,
                node: id,
            });
        }
    }

    /// Kills a uniformly random fraction `f` of nodes; returns the victims.
    pub fn kill_fraction(&mut self, f: f64) -> Vec<NodeId> {
        let mut ids = self.ids();
        let n = ((ids.len() as f64) * f.clamp(0.0, 1.0)).round() as usize;
        let mut victims = Vec::with_capacity(n);
        for _ in 0..n {
            let i = self.rng.gen_range(0..ids.len());
            let id = ids.swap_remove(i);
            self.kill(id);
            victims.push(id);
        }
        victims
    }

    /// Per-node `(sent, received)` message counters.
    pub fn traffic(&self) -> HashMap<NodeId, (u64, u64)> {
        self.peers
            .iter()
            .map(|(&id, p)| {
                (
                    id,
                    (
                        p.counters.sent.load(std::sync::atomic::Ordering::Relaxed),
                        p.counters.received.load(std::sync::atomic::Ordering::Relaxed),
                    ),
                )
            })
            .collect()
    }

    /// Per-node routing-table link counts, as last published by each peer
    /// after a view sync. Zero until a node's first gossip round.
    pub fn link_counts(&self) -> HashMap<NodeId, u64> {
        self.peers
            .iter()
            .map(|(&id, p)| (id, p.counters.links.load(std::sync::atomic::Ordering::Relaxed)))
            .collect()
    }

    /// Mean routing-table link count across alive peers (0.0 when empty) —
    /// the overlay's convergence gauge. Tests poll this with a bounded
    /// deadline instead of sleeping a fixed warm-up, so they adapt to
    /// loaded single-CPU machines instead of flaking on them.
    pub fn mean_links(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .peers
            .values()
            .map(|p| p.counters.links.load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        total as f64 / self.peers.len() as f64
    }

    /// The attribute values of `id`, if alive.
    pub fn point_of(&self, id: NodeId) -> Option<&Point> {
        self.peers.get(&id).map(|p| &p.point)
    }

    /// Stops every peer and waits for their threads to finish.
    pub fn shutdown(mut self) {
        let ids = self.ids();
        let mut threads = Vec::new();
        for id in ids {
            if let Some(mut p) = self.peers.remove(&id) {
                let _ = p.events.send(PeerEvent::Command(Command::Shutdown));
                self.transport.deregister(id);
                if let Some(t) = p.thread.take() {
                    threads.push(t);
                }
            }
        }
        for t in threads {
            let _ = t.join();
        }
    }
}
