use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use attrspace::{Point, Query, Space};
use autosel_core::{Match, QueryId};
use autosel_obs::{Event, ObsHandle};
use epigossip::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::peer::{Command, InboxSender, PeerCounters, PeerEvent, PeerTask};
use crate::{NetConfig, Transport};

struct PeerHandle {
    events: InboxSender,
    counters: Arc<PeerCounters>,
    point: Point,
    thread: Option<JoinHandle<()>>,
}

/// The result of a cluster-issued query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Matches reported to the originator.
    pub matches: Vec<Match>,
    /// Nodes matching the query at issue time (alive then).
    pub truth: usize,
}

impl QueryOutcome {
    /// Fraction of then-matching nodes reported (≤ the paper's delivery:
    /// a reached node whose reply was lost is not counted).
    pub fn delivery(&self) -> f64 {
        if self.truth == 0 {
            1.0
        } else {
            self.matches.len() as f64 / self.truth as f64
        }
    }
}

/// A query in flight, issued by [`NetCluster::begin_query`]. Holds the
/// completion channel; poll with [`try_outcome`](Self::try_outcome) (load
/// generators juggling many tickets) or block with [`wait`](Self::wait).
#[derive(Debug)]
pub struct QueryTicket {
    rx: mpsc::Receiver<(QueryId, Vec<Match>)>,
    truth: usize,
}

impl QueryTicket {
    /// Nodes matching the query at issue time.
    pub fn truth(&self) -> usize {
        self.truth
    }

    /// The outcome if the query has completed, `None` while still in
    /// flight. Ready at most once; later polls return `None` again.
    pub fn try_outcome(&self) -> Option<QueryOutcome> {
        let (_, matches) = self.rx.try_recv().ok()?;
        Some(QueryOutcome { matches, truth: self.truth })
    }

    /// Blocks until completion or `timeout`.
    pub fn wait(self, timeout: Duration) -> Option<QueryOutcome> {
        let (_, matches) = self.rx.recv_timeout(timeout).ok()?;
        Some(QueryOutcome { matches, truth: self.truth })
    }
}

/// Aggregate view health of one gossip layer across a live cluster, read
/// from the peers' published gauges — the wall-clock mirror of the
/// simulator's `gossip_health()` reading (same fields, same fixed-point
/// scaling), so soak-style health bounds apply to deployments too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipHealth {
    /// Peers that have published at least one gossip round.
    pub nodes: u64,
    /// Total view entries across those peers.
    pub links: u64,
    /// Sum over peers of per-view mean descriptor age, in thousandths.
    pub age_sum_x1000: u64,
    /// Total view turnover (entries ever admitted).
    pub turnover: u64,
}

impl GossipHealth {
    /// Mean view size in thousandths (0 when no peer has gossiped).
    pub fn mean_view_size_x1000(&self) -> u64 {
        (self.links * 1000).checked_div(self.nodes).unwrap_or(0)
    }

    /// Mean of the per-peer mean descriptor ages, in thousandths.
    pub fn mean_age_x1000(&self) -> u64 {
        self.age_sum_x1000.checked_div(self.nodes).unwrap_or(0)
    }
}

/// One peer's inbox gauge: current queue depth and deliveries dropped by
/// the bounded inbox since spawn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InboxStats {
    /// Events queued right now (clamped at zero; enqueue/dequeue races
    /// make the instantaneous reading approximate by ±1).
    pub depth: u64,
    /// Deliveries dropped because the inbox was full.
    pub dropped: u64,
}

/// A live population of overlay nodes, one thread per node.
///
/// Emulates the paper's DAS (in-memory transport) and PlanetLab
/// ([`Transport::tcp`]) deployments. Every peer is an independent thread;
/// the cluster handle can issue queries at any node, kill nodes
/// ungracefully, and read per-node traffic counters.
pub struct NetCluster {
    space: Space,
    transport: Transport,
    peers: HashMap<NodeId, PeerHandle>,
    rng: StdRng,
    /// Observability sink handed to every peer; null unless spawned via
    /// [`spawn_observed`](Self::spawn_observed). Events carry wall-clock
    /// milliseconds since cluster start.
    obs: ObsHandle,
    /// Cluster start instant — the zero point of event timestamps.
    started: Instant,
}

impl std::fmt::Debug for NetCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetCluster")
            .field("peers", &self.peers.len())
            .finish_non_exhaustive()
    }
}

impl NetCluster {
    /// Spawns `points.len()` peers on the given transport. Each is
    /// introduced to `config.bootstrap_degree` random earlier peers, so the
    /// overlay must *gossip itself* into a routed state (give it a few
    /// periods before expecting full delivery).
    ///
    /// # Errors
    ///
    /// I/O errors from TCP listener binding.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `points` is empty.
    pub fn spawn(
        space: Space,
        points: Vec<Point>,
        config: NetConfig,
        transport: Transport,
        seed: u64,
    ) -> std::io::Result<Self> {
        Self::spawn_observed(space, points, config, transport, seed, ObsHandle::null())
    }

    /// Like [`spawn`](Self::spawn) but with an observability sink installed
    /// on every peer before its first message. Event timestamps are
    /// wall-clock milliseconds since this call — the same clock the peers'
    /// timeout logic runs on, so a trace from a deployment lines up with a
    /// trace from the simulator structurally (only the `at` values differ).
    ///
    /// # Errors
    ///
    /// I/O errors from TCP listener binding.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `points` is empty.
    pub fn spawn_observed(
        space: Space,
        points: Vec<Point>,
        config: NetConfig,
        transport: Transport,
        seed: u64,
        obs: ObsHandle,
    ) -> std::io::Result<Self> {
        config.validate();
        assert!(!points.is_empty(), "cluster needs at least one node");
        let started = Instant::now();
        let rng = StdRng::seed_from_u64(seed);
        let mut cluster =
            NetCluster { space, transport, peers: HashMap::new(), rng, obs, started };
        for (i, point) in points.into_iter().enumerate() {
            cluster.spawn_peer(i as NodeId, point, &config, started)?;
        }
        // Bootstrap introductions (ids are known to the spawner only).
        let ids: Vec<NodeId> = {
            let mut ids: Vec<NodeId> = cluster.peers.keys().copied().collect();
            ids.sort_unstable();
            ids
        };
        for &id in &ids {
            for _ in 0..config.bootstrap_degree {
                let other = ids[cluster.rng.gen_range(0..ids.len())];
                if other != id {
                    let point = cluster.peers[&other].point.clone();
                    let _ = cluster.peers[&id]
                        .events
                        .send_blocking(PeerEvent::Command(Command::Introduce(other, point)));
                }
            }
        }
        Ok(cluster)
    }

    fn spawn_peer(
        &mut self,
        id: NodeId,
        point: Point,
        config: &NetConfig,
        started: Instant,
    ) -> std::io::Result<()> {
        let (tx, events_rx) = mpsc::sync_channel(config.inbox_capacity);
        let counters = Arc::new(PeerCounters::default());
        let events_tx = InboxSender::new(tx, Arc::clone(&counters));
        self.transport.register(id, events_tx.clone())?;
        let task = PeerTask::new(
            id,
            &self.space,
            point.clone(),
            config.clone(),
            self.transport.clone(),
            events_rx,
            events_tx.clone(),
            Arc::clone(&counters),
            started,
            self.obs.clone(),
        );
        let thread = std::thread::Builder::new()
            .name(format!("autosel-net-peer-{id}"))
            .spawn(move || task.run())?;
        self.peers.insert(
            id,
            PeerHandle { events: events_tx, counters, point, thread: Some(thread) },
        );
        Ok(())
    }

    /// Alive node ids, in ascending order.
    pub fn ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.peers.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether all nodes are gone.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// A uniformly random alive node.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is empty.
    pub fn random_node(&mut self) -> NodeId {
        let ids = self.ids();
        assert!(!ids.is_empty(), "empty cluster");
        ids[self.rng.gen_range(0..ids.len())]
    }

    /// Issues `query` at `origin` without waiting: returns a
    /// [`QueryTicket`] whose channel the origin completes into. The
    /// non-blocking form load generators need — thousands of queries can
    /// be in flight from one issuing thread. Returns `None` if the origin
    /// is dead.
    pub fn begin_query(
        &mut self,
        origin: NodeId,
        query: Query,
        sigma: Option<u32>,
    ) -> Option<QueryTicket> {
        let truth = self
            .peers
            .values()
            .filter(|p| query.matches(&p.point))
            .count();
        // Rendezvous bound of 1: each query completes exactly once.
        let (tx, rx) = mpsc::sync_channel(1);
        self.peers
            .get(&origin)?
            .events
            .send_blocking(PeerEvent::Command(Command::BeginQuery { query, sigma, reply: tx }))
            .ok()?;
        Some(QueryTicket { rx, truth })
    }

    /// Issues `query` at `origin` and waits for completion (bounded by
    /// `timeout`). Returns `None` on timeout or if the origin died.
    pub fn query(
        &mut self,
        origin: NodeId,
        query: Query,
        sigma: Option<u32>,
        timeout: Duration,
    ) -> Option<QueryOutcome> {
        self.begin_query(origin, query, sigma)?.wait(timeout)
    }

    /// Runs a *count-only* query at `origin`: the answer is a single exact
    /// integer aggregated along the traversal tree (constant-size replies).
    /// Returns `None` on timeout or a dead origin.
    pub fn count(&mut self, origin: NodeId, query: Query, timeout: Duration) -> Option<u64> {
        let (tx, rx) = mpsc::sync_channel(1);
        self.peers
            .get(&origin)?
            .events
            .send_blocking(PeerEvent::Command(Command::BeginCount { query, reply: tx }))
            .ok()?;
        rx.recv_timeout(timeout).ok()
    }

    /// Kills `id` ungracefully: its thread stops, its inbox unroutes, no
    /// goodbye is gossiped.
    pub fn kill(&mut self, id: NodeId) {
        if let Some(p) = self.peers.remove(&id) {
            let _ = p.events.send_blocking(PeerEvent::Command(Command::Shutdown));
            self.transport.deregister(id);
            drop(p.thread); // detach; the thread exits on the shutdown command
            self.obs.emit(|| Event::NodeCrashed {
                at: self.started.elapsed().as_millis() as u64,
                node: id,
            });
        }
    }

    /// Kills a uniformly random fraction `f` of nodes; returns the victims.
    pub fn kill_fraction(&mut self, f: f64) -> Vec<NodeId> {
        let mut ids = self.ids();
        let n = ((ids.len() as f64) * f.clamp(0.0, 1.0)).round() as usize;
        let mut victims = Vec::with_capacity(n);
        for _ in 0..n {
            let i = self.rng.gen_range(0..ids.len());
            let id = ids.swap_remove(i);
            self.kill(id);
            victims.push(id);
        }
        victims
    }

    /// Per-node `(sent, received)` message counters.
    pub fn traffic(&self) -> HashMap<NodeId, (u64, u64)> {
        self.peers
            .iter()
            .map(|(&id, p)| {
                (
                    id,
                    (
                        p.counters.sent.load(std::sync::atomic::Ordering::Relaxed),
                        p.counters.received.load(std::sync::atomic::Ordering::Relaxed),
                    ),
                )
            })
            .collect()
    }

    /// Per-node routing-table link counts, as last published by each peer
    /// after a view sync. Zero until a node's first gossip round.
    pub fn link_counts(&self) -> HashMap<NodeId, u64> {
        self.peers
            .iter()
            .map(|(&id, p)| (id, p.counters.links.load(std::sync::atomic::Ordering::Relaxed)))
            .collect()
    }

    /// The transport every peer of this cluster shares — e.g. to read
    /// [`Transport::tcp_stats`] during a TCP load run.
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// Mean routing-table link count across alive peers (0.0 when empty) —
    /// the overlay's convergence gauge. Tests poll this with a bounded
    /// deadline instead of sleeping a fixed warm-up, so they adapt to
    /// loaded single-CPU machines instead of flaking on them.
    pub fn mean_links(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .peers
            .values()
            .map(|p| p.counters.links.load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        total as f64 / self.peers.len() as f64
    }

    /// Point-in-time gossip-health reading of `(random, semantic)` layers
    /// across alive peers, aggregated from the gauges each peer publishes
    /// after its gossip rounds. Peers that have not completed a first
    /// round yet (all-zero gauges) still count as nodes, matching the
    /// simulator's treatment of a quiet stack.
    pub fn gossip_health(&self) -> (GossipHealth, GossipHealth) {
        use std::sync::atomic::Ordering::Relaxed;
        let mut random = GossipHealth::default();
        let mut semantic = GossipHealth::default();
        for p in self.peers.values() {
            let c = &p.counters;
            random.nodes += 1;
            random.links += c.view_random.load(Relaxed);
            random.age_sum_x1000 += c.age_random_x1000.load(Relaxed);
            random.turnover += c.turnover_random.load(Relaxed);
            semantic.nodes += 1;
            semantic.links += c.view_semantic.load(Relaxed);
            semantic.age_sum_x1000 += c.age_semantic_x1000.load(Relaxed);
            semantic.turnover += c.turnover_semantic.load(Relaxed);
        }
        (random, semantic)
    }

    /// Per-peer inbox gauges: instantaneous queue depth and total
    /// deliveries dropped by the bounded inbox.
    pub fn inbox_stats(&self) -> HashMap<NodeId, InboxStats> {
        use std::sync::atomic::Ordering::Relaxed;
        self.peers
            .iter()
            .map(|(&id, p)| {
                (
                    id,
                    InboxStats {
                        depth: p.counters.inbox_depth.load(Relaxed).max(0) as u64,
                        dropped: p.counters.inbox_dropped.load(Relaxed),
                    },
                )
            })
            .collect()
    }

    /// The attribute values of `id`, if alive.
    pub fn point_of(&self, id: NodeId) -> Option<&Point> {
        self.peers.get(&id).map(|p| &p.point)
    }

    /// Stops every peer and waits for their threads to finish.
    pub fn shutdown(mut self) {
        let ids = self.ids();
        let mut threads = Vec::new();
        for id in ids {
            if let Some(mut p) = self.peers.remove(&id) {
                let _ = p.events.send_blocking(PeerEvent::Command(Command::Shutdown));
                self.transport.deregister(id);
                if let Some(t) = p.thread.take() {
                    threads.push(t);
                }
            }
        }
        for t in threads {
            let _ = t.join();
        }
    }
}
