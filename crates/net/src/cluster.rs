use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use attrspace::{Point, Query, Space};
use autosel_core::Match;
use epigossip::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tokio::sync::{mpsc, oneshot};
use tokio::task::JoinHandle;

use crate::peer::{Command, PeerCounters, PeerTask};
use crate::{NetConfig, Transport};

struct PeerHandle {
    commands: mpsc::UnboundedSender<Command>,
    counters: Arc<PeerCounters>,
    point: Point,
    task: JoinHandle<()>,
}

/// The result of a cluster-issued query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Matches reported to the originator.
    pub matches: Vec<Match>,
    /// Nodes matching the query at issue time (alive then).
    pub truth: usize,
}

impl QueryOutcome {
    /// Fraction of then-matching nodes reported (≤ the paper's delivery:
    /// a reached node whose reply was lost is not counted).
    pub fn delivery(&self) -> f64 {
        if self.truth == 0 {
            1.0
        } else {
            self.matches.len() as f64 / self.truth as f64
        }
    }
}

/// A live population of overlay nodes running on tokio.
///
/// Emulates the paper's DAS (in-memory transport) and PlanetLab
/// ([`Transport::tcp`]) deployments. Every peer is an independent task; the
/// cluster handle can issue queries at any node, kill nodes ungracefully,
/// and read per-node traffic counters.
pub struct NetCluster {
    space: Space,
    transport: Transport,
    peers: HashMap<NodeId, PeerHandle>,
    rng: StdRng,
}

impl std::fmt::Debug for NetCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetCluster")
            .field("peers", &self.peers.len())
            .finish_non_exhaustive()
    }
}

impl NetCluster {
    /// Spawns `points.len()` peers on the given transport. Each is
    /// introduced to `config.bootstrap_degree` random earlier peers, so the
    /// overlay must *gossip itself* into a routed state (give it a few
    /// periods before expecting full delivery).
    ///
    /// # Errors
    ///
    /// I/O errors from TCP listener binding.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `points` is empty.
    pub async fn spawn(
        space: Space,
        points: Vec<Point>,
        config: NetConfig,
        transport: Transport,
        seed: u64,
    ) -> std::io::Result<Self> {
        config.validate();
        assert!(!points.is_empty(), "cluster needs at least one node");
        let started = tokio::time::Instant::now();
        let rng = StdRng::seed_from_u64(seed);
        let mut cluster = NetCluster { space, transport, peers: HashMap::new(), rng };
        for (i, point) in points.into_iter().enumerate() {
            cluster.spawn_peer(i as NodeId, point, &config, started).await?;
        }
        // Bootstrap introductions (ids are known to the spawner only).
        let ids: Vec<NodeId> = {
            let mut ids: Vec<NodeId> = cluster.peers.keys().copied().collect();
            ids.sort_unstable();
            ids
        };
        for &id in &ids {
            for _ in 0..config.bootstrap_degree {
                let other = ids[cluster.rng.gen_range(0..ids.len())];
                if other != id {
                    let point = cluster.peers[&other].point.clone();
                    let _ = cluster.peers[&id]
                        .commands
                        .send(Command::Introduce(other, point));
                }
            }
        }
        Ok(cluster)
    }

    async fn spawn_peer(
        &mut self,
        id: NodeId,
        point: Point,
        config: &NetConfig,
        started: tokio::time::Instant,
    ) -> std::io::Result<()> {
        let (inbox_tx, inbox_rx) = mpsc::unbounded_channel();
        let (cmd_tx, cmd_rx) = mpsc::unbounded_channel();
        self.transport.register(id, inbox_tx).await?;
        let counters = Arc::new(PeerCounters::default());
        let task = PeerTask::new(
            id,
            &self.space,
            point.clone(),
            config.clone(),
            self.transport.clone(),
            inbox_rx,
            cmd_rx,
            Arc::clone(&counters),
            started,
        );
        let handle = tokio::spawn(task.run());
        self.peers
            .insert(id, PeerHandle { commands: cmd_tx, counters, point, task: handle });
        Ok(())
    }

    /// Alive node ids, in ascending order.
    pub fn ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.peers.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether all nodes are gone.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// A uniformly random alive node.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is empty.
    pub fn random_node(&mut self) -> NodeId {
        let ids = self.ids();
        assert!(!ids.is_empty(), "empty cluster");
        ids[self.rng.gen_range(0..ids.len())]
    }

    /// Issues `query` at `origin` and waits for completion (bounded by
    /// `timeout`). Returns `None` on timeout or if the origin died.
    pub async fn query(
        &mut self,
        origin: NodeId,
        query: Query,
        sigma: Option<u32>,
        timeout: Duration,
    ) -> Option<QueryOutcome> {
        let truth = self
            .peers
            .values()
            .filter(|p| query.matches(&p.point))
            .count();
        let (tx, rx) = oneshot::channel();
        self.peers
            .get(&origin)?
            .commands
            .send(Command::BeginQuery { query, sigma, reply: tx })
            .ok()?;
        let (_, matches) = tokio::time::timeout(timeout, rx).await.ok()?.ok()?;
        Some(QueryOutcome { matches, truth })
    }

    /// Runs a *count-only* query at `origin`: the answer is a single exact
    /// integer aggregated along the traversal tree (constant-size replies).
    /// Returns `None` on timeout or a dead origin.
    pub async fn count(
        &mut self,
        origin: NodeId,
        query: Query,
        timeout: Duration,
    ) -> Option<u64> {
        let (tx, rx) = oneshot::channel();
        self.peers
            .get(&origin)?
            .commands
            .send(Command::BeginCount { query, reply: tx })
            .ok()?;
        tokio::time::timeout(timeout, rx).await.ok()?.ok()
    }

    /// Kills `id` ungracefully: its task stops, its inbox unroutes, no
    /// goodbye is gossiped.
    pub fn kill(&mut self, id: NodeId) {
        if let Some(p) = self.peers.remove(&id) {
            let _ = p.commands.send(Command::Shutdown);
            self.transport.deregister(id);
            drop(p.task); // detach; the task exits on the shutdown command
        }
    }

    /// Kills a uniformly random fraction `f` of nodes; returns the victims.
    pub fn kill_fraction(&mut self, f: f64) -> Vec<NodeId> {
        let mut ids = self.ids();
        let n = ((ids.len() as f64) * f.clamp(0.0, 1.0)).round() as usize;
        let mut victims = Vec::with_capacity(n);
        for _ in 0..n {
            let i = self.rng.gen_range(0..ids.len());
            let id = ids.swap_remove(i);
            self.kill(id);
            victims.push(id);
        }
        victims
    }

    /// Per-node `(sent, received)` message counters.
    pub fn traffic(&self) -> HashMap<NodeId, (u64, u64)> {
        self.peers
            .iter()
            .map(|(&id, p)| {
                (
                    id,
                    (
                        p.counters.sent.load(std::sync::atomic::Ordering::Relaxed),
                        p.counters.received.load(std::sync::atomic::Ordering::Relaxed),
                    ),
                )
            })
            .collect()
    }

    /// The attribute values of `id`, if alive.
    pub fn point_of(&self, id: NodeId) -> Option<&Point> {
        self.peers.get(&id).map(|p| &p.point)
    }

    /// Stops every peer and waits for their tasks to finish.
    pub async fn shutdown(mut self) {
        let ids = self.ids();
        let mut tasks = Vec::new();
        for id in ids {
            if let Some(p) = self.peers.remove(&id) {
                let _ = p.commands.send(Command::Shutdown);
                self.transport.deregister(id);
                tasks.push(p.task);
            }
        }
        for t in tasks {
            let _ = t.await;
        }
    }
}
