use autosel_core::ProtocolConfig;
use epigossip::GossipConfig;

/// Runtime configuration. Periods are *real* milliseconds; experiments scale
/// the paper's 10-second gossip period down uniformly (see crate docs).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Gossip tuning (the `period_ms` here is real time).
    pub gossip: GossipConfig,
    /// Protocol timeouts (real time).
    pub protocol: ProtocolConfig,
    /// How often each peer polls its protocol timeouts.
    pub poll_interval_ms: u64,
    /// Artificial latency range injected by the in-memory transport
    /// (`None` = deliver immediately). TCP runs rely on real socket latency.
    pub injected_latency_ms: Option<(u64, u64)>,
    /// How many random existing peers a new node is introduced to.
    pub bootstrap_degree: usize,
    /// Bound on each peer's event inbox. Peer traffic beyond it is dropped
    /// (and counted), like network loss — the load-survival invariant that
    /// keeps a saturated node's memory flat instead of queueing unboundedly.
    pub inbox_capacity: usize,
}

/// Tuning for the persistent TCP data plane
/// ([`Transport::tcp_tuned`](crate::Transport::tcp_tuned)):
/// per-destination links each own one writer thread, a bounded outbound
/// queue, and a reconnect backoff.
#[derive(Debug, Clone)]
pub struct TcpTuning {
    /// Bound on each link's outbound frame queue. Frames beyond it are
    /// dropped (and counted in `tx_queue_full_drops`), like network loss —
    /// the same load-survival discipline as the bounded peer inboxes.
    pub link_queue_cap: usize,
    /// First reconnect delay after a failed connect, in milliseconds.
    pub connect_backoff_ms: u64,
    /// Reconnect delays double per consecutive failure up to this cap.
    pub connect_backoff_cap_ms: u64,
}

impl Default for TcpTuning {
    fn default() -> Self {
        TcpTuning { link_queue_cap: 1_024, connect_backoff_ms: 10, connect_backoff_cap_ms: 320 }
    }
}

impl TcpTuning {
    /// Validates the tuning.
    ///
    /// # Panics
    ///
    /// Panics on a zero queue bound or inverted backoff bounds.
    pub fn validate(&self) {
        assert!(self.link_queue_cap > 0, "link queue bound must be positive");
        assert!(self.connect_backoff_ms > 0, "backoff must be positive");
        assert!(
            self.connect_backoff_ms <= self.connect_backoff_cap_ms,
            "backoff cap below initial backoff"
        );
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        // 1 virtual second ≈ 5 real ms: the paper's 10 s gossip period
        // becomes 50 ms. The query timeout is deliberately NOT scaled down
        // as aggressively: it must cover a whole depth-first subtree (many
        // sequential hops), or slow subtrees get amputated as "failed".
        NetConfig {
            gossip: GossipConfig { period_ms: 50, ..GossipConfig::default() },
            protocol: ProtocolConfig { query_timeout_ms: 5_000, ..ProtocolConfig::default() },
            poll_interval_ms: 20,
            injected_latency_ms: Some((1, 5)),
            bootstrap_degree: 3,
            inbox_capacity: 4_096,
        }
    }
}

impl NetConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero periods or inverted latency bounds.
    pub fn validate(&self) {
        self.gossip.validate();
        assert!(self.poll_interval_ms > 0, "poll interval must be positive");
        if let Some((lo, hi)) = self.injected_latency_ms {
            assert!(lo <= hi, "latency bounds inverted");
        }
        assert!(self.bootstrap_degree > 0, "need at least one bootstrap seed");
        assert!(self.inbox_capacity > 0, "inbox capacity must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_scaled() {
        let c = NetConfig::default();
        c.validate();
        assert!(c.gossip.period_ms < 1_000, "scaled for wall-clock runs");
    }

    #[test]
    #[should_panic(expected = "latency bounds")]
    fn inverted_latency_rejected() {
        NetConfig { injected_latency_ms: Some((9, 2)), ..NetConfig::default() }.validate();
    }

    #[test]
    fn default_tcp_tuning_is_valid() {
        TcpTuning::default().validate();
    }

    #[test]
    #[should_panic(expected = "backoff cap")]
    fn inverted_backoff_rejected() {
        TcpTuning { connect_backoff_ms: 500, connect_backoff_cap_ms: 100, ..TcpTuning::default() }
            .validate();
    }
}
