use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use attrspace::Space;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use epigossip::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::peer::{InboxSender, NetMessage, PeerEvent};

/// A delayed in-memory delivery awaiting its due time.
struct DelayedSend {
    due: Instant,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: NetMessage,
    tx: InboxSender,
    failures: InboxSender,
}

impl PartialEq for DelayedSend {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedSend {}
impl PartialOrd for DelayedSend {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedSend {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap: earliest due first.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Single background thread draining latency-injected in-memory sends in
/// due-time order, replacing a thread-per-message design.
struct DelayLine {
    queue: Mutex<BinaryHeap<DelayedSend>>,
    /// FIFO tie-break for equal due times. An atomic rather than a second
    /// field under `queue`'s mutex: drawing a sequence number must not
    /// serialize senders against the worker thread holding the queue lock
    /// while it drains due messages.
    seq: AtomicU64,
    wake: Condvar,
}

impl DelayLine {
    fn start() -> Arc<Self> {
        let line = Arc::new(DelayLine {
            queue: Mutex::new(BinaryHeap::new()),
            seq: AtomicU64::new(0),
            wake: Condvar::new(),
        });
        let worker = Arc::clone(&line);
        std::thread::Builder::new()
            .name("autosel-net-delayline".into())
            .spawn(move || worker.run())
            .expect("spawn delay-line thread");
        line
    }

    /// The next tie-break sequence number; lock-free on purpose (see `seq`).
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn push(&self, item: DelayedSend) {
        let mut q = self.queue.lock().unwrap();
        q.push(item);
        self.wake.notify_one();
    }

    fn run(&self) {
        let mut q = self.queue.lock().unwrap();
        loop {
            let now = Instant::now();
            while q.peek().is_some_and(|d| d.due <= now) {
                let d = q.pop().unwrap();
                drop(q);
                if d.tx.try_deliver(PeerEvent::Deliver(d.from, d.msg)).is_err() {
                    let _ = d.failures.try_deliver(PeerEvent::Failed(d.to));
                }
                q = self.queue.lock().unwrap();
            }
            let next_due = q.peek().map(|d| d.due);
            q = match next_due {
                Some(due) => self.wake.wait_timeout(q, due - now).unwrap().0,
                None => self.wake.wait(q).unwrap(),
            };
        }
    }
}

/// How peers exchange messages.
///
/// Cloneable and shared by every peer thread; destinations that have left
/// the registry (killed nodes) silently swallow messages, exactly like the
/// simulator's drop-on-dead semantics.
#[derive(Clone)]
pub struct Transport {
    inner: Inner,
}

/// Transport internals, kept private so crate-internal channel types do not
/// leak through the public `Transport` surface.
#[derive(Clone)]
enum Inner {
    /// In-process channels, optionally with injected uniform latency —
    /// the DAS-emulation transport.
    Mem {
        /// Bounded inbox senders per peer.
        registry: Arc<RwLock<HashMap<NodeId, InboxSender>>>,
        /// Injected latency range (ms), if any.
        latency_ms: Option<(u64, u64)>,
        /// Shared delay thread serving latency injection.
        delay: Arc<DelayLine>,
        /// RNG for latency draws (seeded per transport).
        rng: Arc<Mutex<SmallRng>>,
    },
    /// Real TCP sockets with the [`wire`](crate::wire) codec — the
    /// PlanetLab transport.
    Tcp {
        /// Listener addresses per peer.
        registry: Arc<RwLock<HashMap<NodeId, SocketAddr>>>,
        /// Space used to decode inbound frames.
        space: Space,
    },
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Mem { registry, latency_ms, .. } => f
                .debug_struct("Transport::Mem")
                .field("peers", &registry.read().unwrap().len())
                .field("latency_ms", latency_ms)
                .finish(),
            Inner::Tcp { registry, .. } => f
                .debug_struct("Transport::Tcp")
                .field("peers", &registry.read().unwrap().len())
                .finish(),
        }
    }
}

impl Transport {
    /// Creates an empty in-memory transport.
    pub fn mem(latency_ms: Option<(u64, u64)>) -> Self {
        Transport {
            inner: Inner::Mem {
                registry: Arc::new(RwLock::new(HashMap::new())),
                latency_ms,
                delay: DelayLine::start(),
                rng: Arc::new(Mutex::new(SmallRng::seed_from_u64(0x7A51_A7E4))),
            },
        }
    }

    /// Creates an empty TCP transport decoding against `space`.
    pub fn tcp(space: Space) -> Self {
        Transport { inner: Inner::Tcp { registry: Arc::new(RwLock::new(HashMap::new())), space } }
    }

    /// Registers a peer: for Mem, wires its event sender; for TCP, binds a
    /// loopback listener and spawns the accept thread feeding the inbox.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the TCP listener.
    pub(crate) fn register(&self, id: NodeId, inbox: InboxSender) -> std::io::Result<()> {
        match &self.inner {
            Inner::Mem { registry, .. } => {
                registry.write().unwrap().insert(id, inbox);
                Ok(())
            }
            Inner::Tcp { registry, space } => {
                let listener = TcpListener::bind(("127.0.0.1", 0))?;
                let addr = listener.local_addr()?;
                registry.write().unwrap().insert(id, addr);
                let space = space.clone();
                std::thread::Builder::new()
                    .name(format!("autosel-net-accept-{id}"))
                    .spawn(move || {
                        loop {
                            let Ok((stream, _)) = listener.accept() else { break };
                            let inbox = inbox.clone();
                            let space = space.clone();
                            std::thread::spawn(move || {
                                let _ = serve_conn(stream, space, inbox);
                            });
                        }
                    })?;
                Ok(())
            }
        }
    }

    /// Removes a peer from the registry; in-flight and future messages to it
    /// are dropped.
    pub fn deregister(&self, id: NodeId) {
        match &self.inner {
            Inner::Mem { registry, .. } => {
                registry.write().unwrap().remove(&id);
            }
            Inner::Tcp { registry, .. } => {
                registry.write().unwrap().remove(&id);
            }
        }
    }

    /// Sends `msg` from `from` to `to`. Unknown or dead destinations fail
    /// fast: `to` is reported on `failures` (the paper's deployments run on
    /// TCP, where a dead endpoint refuses the connection immediately), so
    /// the sender can skip the broken link instead of waiting for `T(q)`.
    pub(crate) fn send(&self, from: NodeId, to: NodeId, msg: NetMessage, failures: &InboxSender) {
        match &self.inner {
            Inner::Mem { registry, latency_ms, delay, rng } => {
                let Some(tx) = registry.read().unwrap().get(&to).cloned() else {
                    let _ = failures.try_deliver(PeerEvent::Failed(to));
                    return;
                };
                match *latency_ms {
                    None => {
                        if tx.try_deliver(PeerEvent::Deliver(from, msg)).is_err() {
                            let _ = failures.try_deliver(PeerEvent::Failed(to));
                        }
                    }
                    Some((lo, hi)) => {
                        let delay_ms = rng.lock().unwrap().gen_range(lo..=hi);
                        let seq = delay.next_seq();
                        delay.push(DelayedSend {
                            due: Instant::now() + Duration::from_millis(delay_ms),
                            seq,
                            from,
                            to,
                            msg,
                            tx,
                            failures: failures.clone(),
                        });
                    }
                }
            }
            Inner::Tcp { registry, .. } => {
                let Some(addr) = registry.read().unwrap().get(&to).copied() else {
                    let _ = failures.try_deliver(PeerEvent::Failed(to));
                    return;
                };
                let frame = frame(from, &msg);
                let failures = failures.clone();
                std::thread::spawn(move || match TcpStream::connect(addr) {
                    Ok(mut stream) => {
                        if stream.write_all(&frame).is_err() {
                            let _ = failures.try_deliver(PeerEvent::Failed(to));
                        }
                        let _ = stream.shutdown(std::net::Shutdown::Write);
                    }
                    Err(_) => {
                        let _ = failures.try_deliver(PeerEvent::Failed(to));
                    }
                });
            }
        }
    }

    /// Ids currently registered.
    pub fn peers(&self) -> Vec<NodeId> {
        match &self.inner {
            Inner::Mem { registry, .. } => {
                registry.read().unwrap().keys().copied().collect()
            }
            Inner::Tcp { registry, .. } => {
                registry.read().unwrap().keys().copied().collect()
            }
        }
    }
}

/// Frame layout: `[u32 len][u64 from][payload]`, len covers from+payload.
fn frame(from: NodeId, msg: &NetMessage) -> Bytes {
    let payload = crate::wire::encode(msg);
    let mut buf = BytesMut::with_capacity(12 + payload.len());
    buf.put_u32_le((8 + payload.len()) as u32);
    buf.put_u64_le(from);
    buf.extend_from_slice(&payload);
    buf.freeze()
}

fn serve_conn(mut stream: TcpStream, space: Space, inbox: InboxSender) -> std::io::Result<()> {
    loop {
        let mut len_buf = [0u8; 4];
        match stream.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(_) => return Ok(()), // EOF between frames
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if !(8..16 * 1024 * 1024).contains(&len) {
            return Ok(()); // nonsense length: drop connection
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body)?;
        let mut body = Bytes::from(body);
        let from = body.get_u64_le();
        if let Ok(msg) = crate::wire::decode(&space, body) {
            if inbox.try_deliver(PeerEvent::Deliver(from, msg)).is_err() {
                return Ok(()); // peer gone
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrspace::Query;
    use autosel_core::{Message, QueryId, QueryMsg};
    use std::sync::mpsc;

    fn sample_msg(space: &Space) -> NetMessage {
        NetMessage::Protocol(Message::Query(QueryMsg {
            id: QueryId { origin: 1, seq: 2 },
            query: Query::builder(space).build().unwrap().into(),
            sigma: None,
            level: 3,
            dims: 0b11,
            dynamic: Vec::new(),
            count_only: false,
            visited_zero: Vec::new(),
            attempt: 1,
        }))
    }

    fn expect_delivery(
        rx: &mpsc::Receiver<PeerEvent>,
        timeout: Duration,
    ) -> (NodeId, NetMessage) {
        match rx.recv_timeout(timeout).expect("delivered") {
            PeerEvent::Deliver(from, msg) => (from, msg),
            other => panic!("unexpected event: {other:?}"),
        }
    }

    #[test]
    fn mem_transport_delivers() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::mem(None);
        let (tx, rx) = InboxSender::test_pair(64);
        t.register(7, tx).unwrap();
        let (ftx, _frx) = InboxSender::test_pair(64);
        t.send(3, 7, sample_msg(&space), &ftx);
        let (from, msg) = expect_delivery(&rx, Duration::from_secs(5));
        assert_eq!(from, 3);
        assert_eq!(msg, sample_msg(&space));
    }

    #[test]
    fn mem_transport_with_latency_delivers() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::mem(Some((1, 3)));
        let (tx, rx) = InboxSender::test_pair(64);
        t.register(7, tx).unwrap();
        let (ftx, _frx) = InboxSender::test_pair(64);
        t.send(3, 7, sample_msg(&space), &ftx);
        let (from, msg) = expect_delivery(&rx, Duration::from_secs(5));
        assert_eq!(from, 3);
        assert_eq!(msg, sample_msg(&space));
    }

    #[test]
    fn mem_transport_drops_to_dead() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::mem(None);
        let (tx, rx) = InboxSender::test_pair(64);
        t.register(7, tx).unwrap();
        t.deregister(7);
        let (ftx, frx) = InboxSender::test_pair(64);
        t.send(3, 7, sample_msg(&space), &ftx);
        assert!(rx.try_recv().is_err());
        match frx.try_recv().expect("fail-fast feedback delivered") {
            PeerEvent::Failed(7) => {}
            other => panic!("unexpected event: {other:?}"),
        }
        assert!(t.peers().is_empty());
    }

    #[test]
    fn tcp_transport_round_trips_frames() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::tcp(space.clone());
        let (tx, rx) = InboxSender::test_pair(64);
        t.register(9, tx).unwrap();
        let (ftx, _frx) = InboxSender::test_pair(64);
        t.send(4, 9, sample_msg(&space), &ftx);
        let (from, msg) = expect_delivery(&rx, Duration::from_secs(5));
        assert_eq!(from, 4);
        assert_eq!(msg, sample_msg(&space));
    }
}
