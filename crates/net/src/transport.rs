use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use attrspace::Space;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use epigossip::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::TcpTuning;
use crate::peer::{InboxSender, NetMessage, PeerEvent};
use crate::sync::{TrackedCondvar, TrackedMutex, TrackedRwLock};

/// Frames whose length prefix (`from` + payload) reaches this many bytes
/// are rejected. Enforced at *send* time — an oversize message is dropped
/// and counted (`tx_oversize_drops`) instead of silently vanishing at the
/// receiver while the sender believes it succeeded — and kept as a
/// receiver-side guard against garbage from untrusted sockets.
pub(crate) const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// A delayed in-memory delivery awaiting its due time.
struct DelayedSend {
    due: Instant,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: NetMessage,
    tx: InboxSender,
    failures: InboxSender,
}

impl PartialEq for DelayedSend {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedSend {}
impl PartialOrd for DelayedSend {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedSend {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap: earliest due first.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Single background thread draining latency-injected in-memory sends in
/// due-time order, replacing a thread-per-message design.
struct DelayLine {
    // lock-class: net.delay.queue
    queue: TrackedMutex<BinaryHeap<DelayedSend>>,
    /// FIFO tie-break for equal due times. An atomic rather than a second
    /// field under `queue`'s mutex: drawing a sequence number must not
    /// serialize senders against the worker thread holding the queue lock
    /// while it drains due messages.
    seq: AtomicU64,
    // lock-class: net.delay.queue
    wake: TrackedCondvar,
}

impl DelayLine {
    fn start() -> Arc<Self> {
        let line = Arc::new(DelayLine {
            queue: TrackedMutex::new("net.delay.queue", BinaryHeap::new()),
            seq: AtomicU64::new(0),
            wake: TrackedCondvar::new(),
        });
        let worker = Arc::clone(&line);
        std::thread::Builder::new()
            .name("autosel-net-delayline".into())
            .spawn(move || worker.run())
            .expect("spawn delay-line thread");
        line
    }

    /// The next tie-break sequence number; lock-free on purpose (see `seq`).
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn push(&self, item: DelayedSend) {
        let mut q = self.queue.lock();
        q.push(item);
        self.wake.notify_one();
    }

    fn run(&self) {
        let mut q = self.queue.lock();
        loop {
            let now = Instant::now();
            while q.peek().is_some_and(|d| d.due <= now) {
                let d = q.pop().expect("peek just returned Some");
                drop(q);
                if d.tx.try_deliver(PeerEvent::Deliver(d.from, d.msg)).is_err() {
                    let _ = d.failures.try_deliver(PeerEvent::Failed(d.to));
                }
                q = self.queue.lock();
            }
            // Recompute `now` before arming the wait: the drain loop above
            // delivered an arbitrary number of messages, and a wait armed
            // with the pre-drain instant oversleeps the next due message by
            // however long the drain took (regression-tested below).
            let now = Instant::now();
            q = match q.peek().map(|d| d.due) {
                // Became due while draining: go straight back to the drain.
                Some(due) if due <= now => continue,
                Some(due) => self.wake.wait_timeout(q, due - now).0,
                None => self.wake.wait(q),
            };
        }
    }
}

/// Aggregated (or per-link) counters of the persistent TCP data plane.
///
/// `conn_established` counts *connects*, not live sockets: a link that
/// never loses its peer connects exactly once no matter how many frames it
/// carries — the invariant `netload --check` gates on for TCP rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStatsSnapshot {
    /// Successful outbound connects (one per link unless reconnecting).
    pub conn_established: u64,
    /// Failed outbound connects (dead or unreachable endpoints).
    pub conn_failed: u64,
    /// Writer wakeups that flushed at least one frame — one coalesced
    /// `write_all` + flush each.
    pub tx_batches: u64,
    /// Frames flushed; `tx_frames / tx_batches` is the mean batch size.
    pub tx_frames: u64,
    /// Frames dropped because a link's bounded outbound queue was full.
    pub tx_queue_full_drops: u64,
    /// Messages rejected at send time for exceeding the frame-size cap.
    pub tx_oversize_drops: u64,
}

/// Per-link counter cells (atomics; snapshot via [`LinkStats::snapshot`]).
#[derive(Debug, Default)]
struct LinkStats {
    conn_established: AtomicU64,
    conn_failed: AtomicU64,
    tx_batches: AtomicU64,
    tx_frames: AtomicU64,
    tx_queue_full_drops: AtomicU64,
}

impl LinkStats {
    fn snapshot(&self) -> TcpStatsSnapshot {
        TcpStatsSnapshot {
            conn_established: self.conn_established.load(Ordering::Relaxed),
            conn_failed: self.conn_failed.load(Ordering::Relaxed),
            tx_batches: self.tx_batches.load(Ordering::Relaxed),
            tx_frames: self.tx_frames.load(Ordering::Relaxed),
            tx_queue_full_drops: self.tx_queue_full_drops.load(Ordering::Relaxed),
            tx_oversize_drops: 0,
        }
    }
}

/// One queued outbound frame plus the sender's fail-fast feedback channel.
struct QueuedFrame {
    frame: Bytes,
    failures: InboxSender,
}

/// Outbound queue state guarded by the link mutex.
struct LinkQueue {
    queue: VecDeque<QueuedFrame>,
    shutdown: bool,
}

/// A persistent link to one destination: a bounded outbound queue drained
/// by a single writer thread that coalesces every queued frame into one
/// buffer and issues a single `write_all` + flush per wakeup.
///
/// All local peers share the link (the frame header carries `from`), so a
/// cluster of *n* nodes runs at most *n* writer threads — the
/// kitsune_p2p-style per-connection actor replacing the old
/// thread-per-message, connect-per-message send path.
struct TcpLink {
    to: NodeId,
    addr: SocketAddr,
    tuning: TcpTuning,
    // lock-class: net.link.state
    state: TrackedMutex<LinkQueue>,
    // lock-class: net.link.state
    wake: TrackedCondvar,
    stats: LinkStats,
}

impl TcpLink {
    fn new(to: NodeId, addr: SocketAddr, tuning: TcpTuning) -> Arc<Self> {
        Arc::new(TcpLink {
            to,
            addr,
            tuning,
            state: TrackedMutex::new(
                "net.link.state",
                LinkQueue { queue: VecDeque::new(), shutdown: false },
            ),
            wake: TrackedCondvar::new(),
            stats: LinkStats::default(),
        })
    }

    /// Starts the link's writer thread (separate from construction so unit
    /// tests can drive the queue without a live socket).
    fn spawn_writer(self: &Arc<Self>) {
        let link = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("autosel-net-writer-{}", self.to))
            .spawn(move || link.run_writer())
            .expect("spawn link writer thread");
    }

    /// Queues one frame. A full queue drops the frame (counted) — senders
    /// are never blocked by a slow link, mirroring the bounded-inbox
    /// discipline; the protocol absorbs the loss via timeouts. A link
    /// already shut down (its peer deregistered or re-registered
    /// elsewhere) reports fail-fast instead.
    fn enqueue(&self, frame: Bytes, failures: &InboxSender) {
        let mut st = self.state.lock();
        if st.shutdown {
            drop(st);
            let _ = failures.try_deliver(PeerEvent::Failed(self.to));
            return;
        }
        if st.queue.len() >= self.tuning.link_queue_cap {
            drop(st);
            self.stats.tx_queue_full_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        st.queue.push_back(QueuedFrame { frame, failures: failures.clone() });
        drop(st);
        self.wake.notify_one();
    }

    fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.wake.notify_one();
    }

    /// Blocks until frames are queued (returning the *whole* queue as one
    /// batch) or the link is shut down with nothing left to flush
    /// (returning `None`).
    fn collect_batch(&self) -> Option<Vec<QueuedFrame>> {
        let mut st = self.state.lock();
        loop {
            if !st.queue.is_empty() {
                return Some(st.queue.drain(..).collect());
            }
            if st.shutdown {
                return None;
            }
            st = self.wake.wait(st);
        }
    }

    /// The writer loop: per wakeup, drain the queue, coalesce every frame
    /// into one buffer, and flush it with a single `write_all` on the
    /// persistent connection — (re)connecting on demand with a capped
    /// exponential backoff between failed attempts.
    ///
    /// Failure semantics preserve the fail-fast contract: a batch that
    /// cannot be flushed (connect refused, or a write error that survives
    /// one immediate reconnect) delivers `PeerEvent::Failed(to)` to every
    /// queued sender, exactly like the old connect-per-message path did
    /// for a dead endpoint. A mid-batch connection loss retries the whole
    /// batch on a fresh connection, so frames already received before the
    /// break may arrive twice — the protocol's exactly-once accounting
    /// (attempt-tagged replies) absorbs duplicates by design.
    fn run_writer(&self) {
        let mut stream: Option<TcpStream> = None;
        let mut backoff = Duration::from_millis(self.tuning.connect_backoff_ms);
        let mut buf: Vec<u8> = Vec::new();
        while let Some(batch) = self.collect_batch() {
            buf.clear();
            for f in &batch {
                buf.extend_from_slice(&f.frame);
            }
            let mut wrote = false;
            for _attempt in 0..2 {
                if stream.is_none() {
                    match TcpStream::connect(self.addr) {
                        Ok(s) => {
                            // Batching already coalesces; Nagle on top of it
                            // only adds latency.
                            let _ = s.set_nodelay(true);
                            self.stats.conn_established.fetch_add(1, Ordering::Relaxed);
                            backoff = Duration::from_millis(self.tuning.connect_backoff_ms);
                            stream = Some(s);
                        }
                        Err(_) => {
                            self.stats.conn_failed.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                let s = stream.as_mut().expect("connected in this iteration");
                if s.write_all(&buf).and_then(|()| s.flush()).is_ok() {
                    wrote = true;
                    break;
                }
                // Connection died mid-batch: drop it and retry once on a
                // fresh connection before declaring the endpoint down.
                stream = None;
            }
            if wrote {
                self.stats.tx_batches.fetch_add(1, Ordering::Relaxed);
                self.stats.tx_frames.fetch_add(batch.len() as u64, Ordering::Relaxed);
            } else {
                for f in &batch {
                    let _ = f.failures.try_deliver(PeerEvent::Failed(self.to));
                }
                // Capped backoff before the next connect attempt; frames
                // queued meanwhile simply wait (or drop on a full queue).
                std::thread::sleep(backoff);
                backoff = (backoff * 2)
                    .min(Duration::from_millis(self.tuning.connect_backoff_cap_ms));
            }
        }
    }
}

/// One registered TCP listener: its address plus the flag that tells its
/// accept thread to exit (see [`close_endpoint`]).
struct TcpEndpoint {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

/// Asks an endpoint's accept loop to exit: set the stop flag, then poke the
/// listener with a throwaway connect so the blocking `accept` returns. The
/// accept thread drops the listener on its way out, releasing the socket —
/// without this, `deregister` would leak the thread and the port forever.
fn close_endpoint(ep: &TcpEndpoint) {
    ep.stop.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect(ep.addr);
}

/// How peers exchange messages.
///
/// Cloneable and shared by every peer thread; destinations that have left
/// the registry (killed nodes) silently swallow messages, exactly like the
/// simulator's drop-on-dead semantics.
#[derive(Clone)]
pub struct Transport {
    inner: Inner,
}

/// Transport internals, kept private so crate-internal channel types do not
/// leak through the public `Transport` surface.
#[derive(Clone)]
enum Inner {
    /// In-process channels, optionally with injected uniform latency —
    /// the DAS-emulation transport.
    Mem {
        /// Bounded inbox senders per peer.
        // lock-class: net.mem.registry
        registry: Arc<TrackedRwLock<HashMap<NodeId, InboxSender>>>,
        /// Injected latency range (ms), if any.
        latency_ms: Option<(u64, u64)>,
        /// Shared delay thread serving latency injection.
        delay: Arc<DelayLine>,
        /// RNG for latency draws (seeded per transport).
        // lock-class: net.mem.rng
        rng: Arc<TrackedMutex<SmallRng>>,
    },
    /// Real TCP sockets with the [`wire`](crate::wire) codec — the
    /// PlanetLab transport. Persistent per-destination links (one writer
    /// thread, write batching) replace the old connection-per-message
    /// path.
    Tcp {
        /// Listener endpoints per peer.
        // lock-class: net.tcp.endpoints
        endpoints: Arc<TrackedRwLock<HashMap<NodeId, TcpEndpoint>>>,
        /// Persistent outbound links per destination.
        // lock-class: net.tcp.links
        links: Arc<TrackedRwLock<HashMap<NodeId, Arc<TcpLink>>>>,
        /// Messages rejected at send time for exceeding the frame cap.
        oversize: Arc<AtomicU64>,
        /// Link tuning (queue bound, reconnect backoff).
        tuning: TcpTuning,
        /// Space used to decode inbound frames.
        space: Space,
    },
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Mem { registry, latency_ms, .. } => f
                .debug_struct("Transport::Mem")
                .field("peers", &registry.read().len())
                .field("latency_ms", latency_ms)
                .finish(),
            Inner::Tcp { endpoints, links, .. } => f
                .debug_struct("Transport::Tcp")
                .field("peers", &endpoints.read().len())
                .field("links", &links.read().len())
                .finish(),
        }
    }
}

impl Transport {
    /// Creates an empty in-memory transport.
    pub fn mem(latency_ms: Option<(u64, u64)>) -> Self {
        Transport {
            inner: Inner::Mem {
                registry: Arc::new(TrackedRwLock::new("net.mem.registry", HashMap::new())),
                latency_ms,
                delay: DelayLine::start(),
                rng: Arc::new(TrackedMutex::new(
                    "net.mem.rng",
                    SmallRng::seed_from_u64(0x7A51_A7E4),
                )),
            },
        }
    }

    /// Creates an empty TCP transport decoding against `space`, with
    /// default [`TcpTuning`].
    pub fn tcp(space: Space) -> Self {
        Self::tcp_tuned(space, TcpTuning::default())
    }

    /// Creates an empty TCP transport with explicit link tuning.
    ///
    /// # Panics
    ///
    /// Panics if `tuning` is invalid.
    pub fn tcp_tuned(space: Space, tuning: TcpTuning) -> Self {
        tuning.validate();
        Transport {
            inner: Inner::Tcp {
                endpoints: Arc::new(TrackedRwLock::new("net.tcp.endpoints", HashMap::new())),
                links: Arc::new(TrackedRwLock::new("net.tcp.links", HashMap::new())),
                oversize: Arc::new(AtomicU64::new(0)),
                tuning,
                space,
            },
        }
    }

    /// Registers a peer: for Mem, wires its event sender; for TCP, binds a
    /// loopback listener and spawns the accept thread, which hands each
    /// accepted connection to a named reader thread feeding the bounded
    /// inbox. Re-registering an id closes the previous listener first.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the TCP listener.
    pub(crate) fn register(&self, id: NodeId, inbox: InboxSender) -> std::io::Result<()> {
        match &self.inner {
            Inner::Mem { registry, .. } => {
                registry.write().insert(id, inbox);
                Ok(())
            }
            Inner::Tcp { endpoints, space, .. } => {
                let listener = TcpListener::bind(("127.0.0.1", 0))?;
                let addr = listener.local_addr()?;
                let stop = Arc::new(AtomicBool::new(false));
                let endpoint = TcpEndpoint { addr, stop: Arc::clone(&stop) };
                // Bind the insert's result *before* closing the old
                // endpoint: `close_endpoint` blocks on a connect, and in
                // `if let Some(old) = …insert(…)` the write-guard temporary
                // would stay live across it for the whole block (pre-2024
                // temporary-lifetime rules) — the exact
                // blocking-under-guard pattern the lock-order pass flags.
                let replaced = endpoints.write().insert(id, endpoint);
                if let Some(old) = replaced {
                    close_endpoint(&old);
                }
                let space = space.clone();
                std::thread::Builder::new()
                    .name(format!("autosel-net-accept-{id}"))
                    .spawn(move || {
                        loop {
                            let Ok((stream, _)) = listener.accept() else { break };
                            // A deregister wakes us with a throwaway
                            // connect; drop it and exit, releasing the
                            // listener socket.
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let inbox = inbox.clone();
                            let space = space.clone();
                            if std::thread::Builder::new()
                                .name(format!("autosel-net-read-{id}"))
                                .spawn(move || {
                                    let _ = serve_conn(stream, space, inbox);
                                })
                                .is_err()
                            {
                                break;
                            }
                        }
                    })?;
                Ok(())
            }
        }
    }

    /// Removes a peer from the registry; in-flight and future messages to it
    /// are dropped. On TCP this also closes the peer's listener (so its
    /// accept thread exits instead of leaking) and shuts down the outbound
    /// link to it (so its writer thread exits).
    pub fn deregister(&self, id: NodeId) {
        match &self.inner {
            Inner::Mem { registry, .. } => {
                registry.write().remove(&id);
            }
            Inner::Tcp { endpoints, links, .. } => {
                // As in `register`: end each write-guard temporary at the
                // statement before touching sockets or other locks.
                let removed = endpoints.write().remove(&id);
                if let Some(ep) = removed {
                    close_endpoint(&ep);
                }
                let link = links.write().remove(&id);
                if let Some(link) = link {
                    link.shutdown();
                }
            }
        }
    }

    /// Sends `msg` from `from` to `to`. Unknown or dead destinations fail
    /// fast: `to` is reported on `failures` (the paper's deployments run on
    /// TCP, where a dead endpoint refuses the connection immediately), so
    /// the sender can skip the broken link instead of waiting for `T(q)`.
    ///
    /// TCP sends never connect or spawn per message: the frame is queued
    /// on the destination's persistent [`TcpLink`] and flushed by its
    /// writer thread in coalesced batches.
    pub(crate) fn send(&self, from: NodeId, to: NodeId, msg: NetMessage, failures: &InboxSender) {
        match &self.inner {
            Inner::Mem { registry, latency_ms, delay, rng } => {
                let Some(tx) = registry.read().get(&to).cloned() else {
                    let _ = failures.try_deliver(PeerEvent::Failed(to));
                    return;
                };
                match *latency_ms {
                    None => {
                        if tx.try_deliver(PeerEvent::Deliver(from, msg)).is_err() {
                            let _ = failures.try_deliver(PeerEvent::Failed(to));
                        }
                    }
                    Some((lo, hi)) => {
                        let delay_ms = rng.lock().gen_range(lo..=hi);
                        let seq = delay.next_seq();
                        delay.push(DelayedSend {
                            due: Instant::now() + Duration::from_millis(delay_ms),
                            seq,
                            from,
                            to,
                            msg,
                            tx,
                            failures: failures.clone(),
                        });
                    }
                }
            }
            Inner::Tcp { endpoints, links, oversize, tuning, .. } => {
                let Some(addr) = endpoints.read().get(&to).map(|ep| ep.addr) else {
                    let _ = failures.try_deliver(PeerEvent::Failed(to));
                    return;
                };
                let frame = frame(from, &msg);
                // The length prefix covers `from` + payload = frame - 4.
                if frame.len() - 4 >= MAX_FRAME_LEN {
                    oversize.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let link = lookup_link(links, to, addr, tuning);
                link.enqueue(frame, failures);
            }
        }
    }

    /// Ids currently registered.
    pub fn peers(&self) -> Vec<NodeId> {
        match &self.inner {
            Inner::Mem { registry, .. } => registry.read().keys().copied().collect(),
            Inner::Tcp { endpoints, .. } => endpoints.read().keys().copied().collect(),
        }
    }

    /// Counters of the persistent TCP data plane, aggregated across links;
    /// `None` on the in-memory transport.
    pub fn tcp_stats(&self) -> Option<TcpStatsSnapshot> {
        match &self.inner {
            Inner::Mem { .. } => None,
            Inner::Tcp { links, oversize, .. } => {
                let mut total = TcpStatsSnapshot {
                    tx_oversize_drops: oversize.load(Ordering::Relaxed),
                    ..TcpStatsSnapshot::default()
                };
                for link in links.read().values() {
                    let s = link.stats.snapshot();
                    total.conn_established += s.conn_established;
                    total.conn_failed += s.conn_failed;
                    total.tx_batches += s.tx_batches;
                    total.tx_frames += s.tx_frames;
                    total.tx_queue_full_drops += s.tx_queue_full_drops;
                }
                Some(total)
            }
        }
    }

    /// Per-destination link counters (ids with an established or attempted
    /// link only), sorted by id; `None` on the in-memory transport.
    /// `tx_oversize_drops` is accounted globally (see
    /// [`tcp_stats`](Self::tcp_stats)) and reads zero here.
    pub fn tcp_link_stats(&self) -> Option<Vec<(NodeId, TcpStatsSnapshot)>> {
        match &self.inner {
            Inner::Mem { .. } => None,
            Inner::Tcp { links, .. } => {
                let mut out: Vec<(NodeId, TcpStatsSnapshot)> = links
                    .read()
                    .iter()
                    .map(|(&id, l)| (id, l.stats.snapshot()))
                    .collect();
                out.sort_unstable_by_key(|&(id, _)| id);
                Some(out)
            }
        }
    }
}

/// Fetches (or creates) the persistent link to `to`. A cached link whose
/// address no longer matches the registry (the peer deregistered and came
/// back on a new port) is shut down and replaced.
fn lookup_link(
    links: &Arc<TrackedRwLock<HashMap<NodeId, Arc<TcpLink>>>>,
    to: NodeId,
    addr: SocketAddr,
    tuning: &TcpTuning,
) -> Arc<TcpLink> {
    if let Some(link) = links.read().get(&to) {
        if link.addr == addr {
            return Arc::clone(link);
        }
    }
    // Replacing a stale link must be atomic under the write lock, so the
    // nested `shutdown` below acquires net.link.state while net.tcp.links
    // is held — the one sanctioned cross-class edge (links → state); the
    // writer thread never takes links while holding state, so no cycle.
    let mut w = links.write();
    // Re-check under the write lock: another sender may have raced us here.
    if let Some(link) = w.get(&to) {
        if link.addr == addr {
            return Arc::clone(link);
        }
        link.shutdown();
    }
    let link = TcpLink::new(to, addr, tuning.clone());
    link.spawn_writer();
    w.insert(to, Arc::clone(&link));
    link
}

/// Frame layout: `[u32 len][u64 from][payload]`, len covers from+payload.
fn frame(from: NodeId, msg: &NetMessage) -> Bytes {
    let payload = crate::wire::encode(msg);
    let mut buf = BytesMut::with_capacity(12 + payload.len());
    buf.put_u32_le((8 + payload.len()) as u32);
    buf.put_u64_le(from);
    buf.extend_from_slice(&payload);
    buf.freeze()
}

fn serve_conn(mut stream: TcpStream, space: Space, inbox: InboxSender) -> std::io::Result<()> {
    loop {
        let mut len_buf = [0u8; 4];
        match stream.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(_) => return Ok(()), // EOF between frames
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if !(8..MAX_FRAME_LEN).contains(&len) {
            return Ok(()); // nonsense length: drop connection
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body)?;
        let mut body = Bytes::from(body);
        let from = body.get_u64_le();
        if let Ok(msg) = crate::wire::decode(&space, body) {
            if inbox.try_deliver(PeerEvent::Deliver(from, msg)).is_err() {
                return Ok(()); // peer gone
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrspace::Query;
    use autosel_core::{Message, QueryId, QueryMsg};
    use epigossip::{GossipMessage, Layer};
    use std::sync::mpsc;

    fn sample_msg(space: &Space) -> NetMessage {
        NetMessage::Protocol(Message::Query(QueryMsg {
            id: QueryId { origin: 1, seq: 2 },
            query: Query::builder(space).build().unwrap().into(),
            sigma: None,
            level: 3,
            dims: 0b11,
            dynamic: Vec::new(),
            count_only: false,
            visited_zero: Vec::new(),
            attempt: 1,
        }))
    }

    /// A query message whose encoded *frame length prefix* (8 + payload)
    /// is as close under `target_len` as the 8-byte granularity of
    /// `visited_zero` entries allows.
    fn msg_with_frame_len_near(space: &Space, target_len: usize) -> NetMessage {
        let base = sample_msg(space);
        let base_len = frame(1, &base).len() - 4;
        let extra = (target_len - base_len) / 8;
        let NetMessage::Protocol(Message::Query(mut q)) = base else { unreachable!() };
        q.visited_zero = (0..extra as u64).collect();
        NetMessage::Protocol(Message::Query(q))
    }

    fn expect_delivery(
        rx: &mpsc::Receiver<PeerEvent>,
        timeout: Duration,
    ) -> (NodeId, NetMessage) {
        match rx.recv_timeout(timeout).expect("delivered") {
            PeerEvent::Deliver(from, msg) => (from, msg),
            other => panic!("unexpected event: {other:?}"),
        }
    }

    #[test]
    fn mem_transport_delivers() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::mem(None);
        let (tx, rx) = InboxSender::test_pair(64);
        t.register(7, tx).unwrap();
        let (ftx, _frx) = InboxSender::test_pair(64);
        t.send(3, 7, sample_msg(&space), &ftx);
        let (from, msg) = expect_delivery(&rx, Duration::from_secs(5));
        assert_eq!(from, 3);
        assert_eq!(msg, sample_msg(&space));
    }

    #[test]
    fn mem_transport_with_latency_delivers() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::mem(Some((1, 3)));
        let (tx, rx) = InboxSender::test_pair(64);
        t.register(7, tx).unwrap();
        let (ftx, _frx) = InboxSender::test_pair(64);
        t.send(3, 7, sample_msg(&space), &ftx);
        let (from, msg) = expect_delivery(&rx, Duration::from_secs(5));
        assert_eq!(from, 3);
        assert_eq!(msg, sample_msg(&space));
    }

    #[test]
    fn mem_transport_drops_to_dead() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::mem(None);
        let (tx, rx) = InboxSender::test_pair(64);
        t.register(7, tx).unwrap();
        t.deregister(7);
        let (ftx, frx) = InboxSender::test_pair(64);
        t.send(3, 7, sample_msg(&space), &ftx);
        assert!(rx.try_recv().is_err());
        match frx.try_recv().expect("fail-fast feedback delivered") {
            PeerEvent::Failed(7) => {}
            other => panic!("unexpected event: {other:?}"),
        }
        assert!(t.peers().is_empty());
    }

    /// Regression (stale-`now` oversleep): `DelayLine::run` used the
    /// instant captured *before* the due-drain loop to arm the next
    /// `wait_timeout`, so after draining a long backlog it overslept the
    /// next due message by the whole drain duration. The scenario: a large
    /// batch of already-due deliveries followed by one message due shortly
    /// after — the marker must arrive as soon as the backlog is drained
    /// (or at its due time), not `drain + full-delay` later.
    #[test]
    fn delay_line_does_not_oversleep_after_long_drain() {
        const MARKER_MS: u64 = 200;
        let space = Space::uniform(2, 80, 3).unwrap();
        let msg = NetMessage::Gossip(GossipMessage::Response {
            layer: Layer::Random,
            batch: vec![],
        });
        let mut k: usize = 150_000;
        loop {
            let line = DelayLine::start();
            let (tx_bulk, rx_bulk) = InboxSender::test_pair(k);
            let (tx_marker, rx_marker) = InboxSender::test_pair(4);
            let (ftx, _frx) = InboxSender::test_pair(4);
            {
                // Bulk-fill under our own lock (no per-push wakeups): a
                // tightly packed backlog, every item already due.
                let due = Instant::now();
                let mut q = line.queue.lock();
                for _ in 0..k {
                    q.push(DelayedSend {
                        due,
                        seq: line.next_seq(),
                        from: 3,
                        to: 7,
                        msg: msg.clone(),
                        tx: tx_bulk.clone(),
                        failures: ftx.clone(),
                    });
                }
            }
            let t0 = Instant::now();
            line.push(DelayedSend {
                due: t0 + Duration::from_millis(MARKER_MS),
                seq: line.next_seq(),
                from: 3,
                to: 7,
                msg: sample_msg(&space),
                tx: tx_marker.clone(),
                failures: ftx.clone(),
            });
            for _ in 0..k {
                rx_bulk.recv_timeout(Duration::from_secs(60)).expect("bulk item delivered");
            }
            let drain = t0.elapsed();
            let (_, m) = expect_delivery(&rx_marker, Duration::from_secs(60));
            assert_eq!(m, sample_msg(&space));
            let marker_at = t0.elapsed();
            if drain < Duration::from_millis(150) && k < 600_000 {
                // Machine drained the backlog too fast for the oversleep
                // to be distinguishable from noise; double the backlog.
                k *= 2;
                continue;
            }
            // Fixed: marker arrives at ~max(drain, due). Buggy: the wait
            // was armed with the pre-drain instant, so it arrives a whole
            // MARKER_MS after the drain ended.
            let basis = drain.max(Duration::from_millis(MARKER_MS));
            assert!(
                marker_at <= basis + Duration::from_millis(100),
                "delay line overslept: drained {k} in {drain:?}, marker at {marker_at:?}"
            );
            break;
        }
    }

    #[test]
    fn tcp_transport_round_trips_frames() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::tcp(space.clone());
        let (tx, rx) = InboxSender::test_pair(64);
        t.register(9, tx).unwrap();
        let (ftx, _frx) = InboxSender::test_pair(64);
        t.send(4, 9, sample_msg(&space), &ftx);
        let (from, msg) = expect_delivery(&rx, Duration::from_secs(5));
        assert_eq!(from, 4);
        assert_eq!(msg, sample_msg(&space));
    }

    /// The tentpole invariant: a stream of sends to one destination shares
    /// one persistent connection — no connect (and no thread) per message.
    #[test]
    fn tcp_sends_share_one_persistent_connection() {
        const N: usize = 50;
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::tcp(space.clone());
        let (tx, rx) = InboxSender::test_pair(256);
        t.register(9, tx).unwrap();
        let (ftx, _frx) = InboxSender::test_pair(64);
        for _ in 0..N {
            t.send(4, 9, sample_msg(&space), &ftx);
        }
        for _ in 0..N {
            let (from, msg) = expect_delivery(&rx, Duration::from_secs(10));
            assert_eq!(from, 4);
            assert_eq!(msg, sample_msg(&space));
        }
        let stats = t.tcp_stats().expect("tcp transport has stats");
        assert_eq!(stats.conn_established, 1, "one persistent connection: {stats:?}");
        assert_eq!(stats.tx_frames, N as u64);
        assert!(stats.tx_batches >= 1 && stats.tx_batches <= N as u64);
        assert_eq!(stats.tx_queue_full_drops, 0);
        let per_link = t.tcp_link_stats().expect("tcp transport has link stats");
        assert_eq!(per_link.len(), 1);
        assert_eq!(per_link[0].0, 9);
        assert_eq!(per_link[0].1.tx_frames, N as u64);
    }

    /// A writer wakeup drains the *whole* queue as one batch (the single
    /// `write_all` + flush per wakeup claim), and the bounded queue drops
    /// and counts overflow instead of blocking senders.
    #[test]
    fn link_batches_whole_queue_and_bounds_it() {
        let tuning = TcpTuning { link_queue_cap: 8, ..TcpTuning::default() };
        // No writer spawned: the queue is driven by hand.
        let link = TcpLink::new(5, "127.0.0.1:1".parse().unwrap(), tuning);
        let (ftx, _frx) = InboxSender::test_pair(4);
        let payload = Bytes::from_static(b"frame");
        for _ in 0..5 {
            link.enqueue(payload.clone(), &ftx);
        }
        let batch = link.collect_batch().expect("queued frames");
        assert_eq!(batch.len(), 5, "one wakeup collects the whole queue");
        // Overflow: capacity 8, push 11 → 3 counted drops.
        for _ in 0..11 {
            link.enqueue(payload.clone(), &ftx);
        }
        assert_eq!(link.stats.tx_queue_full_drops.load(Ordering::Relaxed), 3);
        assert_eq!(link.collect_batch().expect("queued frames").len(), 8);
        // Shutdown with an empty queue ends the writer loop.
        link.shutdown();
        assert!(link.collect_batch().is_none());
    }

    /// Dead endpoint: the writer fails the whole batch fast (every queued
    /// sender gets `Failed`) and counts the refused connect.
    #[test]
    fn link_writer_fails_fast_on_dead_endpoint() {
        // Bind-then-drop: a loopback port with nothing listening.
        let addr = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let link = TcpLink::new(6, addr, TcpTuning::default());
        link.spawn_writer();
        let (ftx, frx) = InboxSender::test_pair(8);
        link.enqueue(Bytes::from_static(b"doomed"), &ftx);
        match frx.recv_timeout(Duration::from_secs(10)).expect("fail-fast feedback") {
            PeerEvent::Failed(6) => {}
            other => panic!("unexpected event: {other:?}"),
        }
        assert!(link.stats.conn_failed.load(Ordering::Relaxed) >= 1);
        assert_eq!(link.stats.tx_frames.load(Ordering::Relaxed), 0);
        link.shutdown();
    }

    #[test]
    fn tcp_transport_fails_fast_to_unregistered() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::tcp(space.clone());
        let (ftx, frx) = InboxSender::test_pair(8);
        t.send(3, 42, sample_msg(&space), &ftx);
        match frx.try_recv().expect("fail-fast feedback delivered") {
            PeerEvent::Failed(42) => {}
            other => panic!("unexpected event: {other:?}"),
        }
    }

    /// Regression (deregister leak): deregistering a TCP peer must close
    /// its listener (so the accept thread exits and the port is released),
    /// and the same id must be re-registrable — with sends routed to the
    /// *new* endpoint even though a link to the old one was cached.
    #[test]
    fn tcp_register_deregister_register_same_id() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::tcp(space.clone());
        let (tx1, rx1) = InboxSender::test_pair(64);
        t.register(9, tx1).unwrap();
        let (ftx, _frx) = InboxSender::test_pair(64);
        t.send(4, 9, sample_msg(&space), &ftx);
        let (from, _) = expect_delivery(&rx1, Duration::from_secs(5));
        assert_eq!(from, 4);
        let old_addr = match &t.inner {
            Inner::Tcp { endpoints, .. } => endpoints.read()[&9].addr,
            Inner::Mem { .. } => unreachable!(),
        };

        t.deregister(9);
        assert!(t.peers().is_empty());
        // The listener must actually close: connects to the old endpoint
        // start failing once the accept thread drops it (bounded poll).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if TcpStream::connect(old_addr).is_err() {
                break;
            }
            assert!(Instant::now() < deadline, "old listener still accepting");
        }

        let (tx2, rx2) = InboxSender::test_pair(64);
        t.register(9, tx2).unwrap();
        t.send(4, 9, sample_msg(&space), &ftx);
        let (from, msg) = expect_delivery(&rx2, Duration::from_secs(10));
        assert_eq!(from, 4);
        assert_eq!(msg, sample_msg(&space));
        assert!(rx1.try_recv().is_err(), "old inbox must see nothing new");
    }

    /// The frame-size cap is enforced at send time, at the exact boundary:
    /// the largest legal frame round-trips over a real socket, the first
    /// oversize one is dropped *and counted* — never silently swallowed by
    /// the receiver while the sender believes it succeeded.
    #[test]
    fn oversize_frames_rejected_at_send_boundary() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::tcp(space.clone());
        let (tx, rx) = InboxSender::test_pair(16);
        t.register(9, tx).unwrap();
        let (ftx, _frx) = InboxSender::test_pair(16);

        // Largest legal: len within 8 bytes under the cap (entry granularity).
        let legal = msg_with_frame_len_near(&space, MAX_FRAME_LEN - 1);
        let legal_len = frame(4, &legal).len() - 4;
        assert!((MAX_FRAME_LEN - 8..MAX_FRAME_LEN).contains(&legal_len));
        t.send(4, 9, legal.clone(), &ftx);
        let (_, msg) = expect_delivery(&rx, Duration::from_secs(60));
        assert_eq!(msg, legal, "boundary frame round-trips");

        // One entry more crosses the cap: dropped at send, counted.
        let oversize = msg_with_frame_len_near(&space, MAX_FRAME_LEN + 7);
        assert!(frame(4, &oversize).len() - 4 >= MAX_FRAME_LEN);
        t.send(4, 9, oversize, &ftx);
        assert_eq!(t.tcp_stats().unwrap().tx_oversize_drops, 1);
        // The link is still healthy: a small follow-up frame arrives, and
        // nothing else ever does (the oversize frame was not sent).
        t.send(4, 9, sample_msg(&space), &ftx);
        let (_, msg) = expect_delivery(&rx, Duration::from_secs(10));
        assert_eq!(msg, sample_msg(&space));
        assert!(rx.try_recv().is_err());
    }
}
