use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

use attrspace::Space;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use epigossip::NodeId;
use parking_lot::RwLock;
use rand::Rng;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

use crate::peer::NetMessage;
use crate::wire;

/// An envelope delivered to a peer's inbox.
pub(crate) type Envelope = (NodeId, NetMessage);

/// How peers exchange messages.
///
/// Cloneable and shared by every peer task; destinations that have left the
/// registry (killed nodes) silently swallow messages, exactly like the
/// simulator's drop-on-dead semantics.
#[derive(Clone)]
pub enum Transport {
    /// In-process channels, optionally with injected uniform latency —
    /// the DAS-emulation transport.
    Mem {
        /// Inbox senders per peer.
        registry: Arc<RwLock<HashMap<NodeId, mpsc::UnboundedSender<Envelope>>>>,
        /// Injected latency range (ms), if any.
        latency_ms: Option<(u64, u64)>,
    },
    /// Real TCP sockets with the [`wire`] codec — the PlanetLab transport.
    Tcp {
        /// Listener addresses per peer.
        registry: Arc<RwLock<HashMap<NodeId, SocketAddr>>>,
        /// Space used to decode inbound frames.
        space: Space,
    },
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transport::Mem { registry, latency_ms } => f
                .debug_struct("Transport::Mem")
                .field("peers", &registry.read().len())
                .field("latency_ms", latency_ms)
                .finish(),
            Transport::Tcp { registry, .. } => f
                .debug_struct("Transport::Tcp")
                .field("peers", &registry.read().len())
                .finish(),
        }
    }
}

impl Transport {
    /// Creates an empty in-memory transport.
    pub fn mem(latency_ms: Option<(u64, u64)>) -> Self {
        Transport::Mem { registry: Arc::new(RwLock::new(HashMap::new())), latency_ms }
    }

    /// Creates an empty TCP transport decoding against `space`.
    pub fn tcp(space: Space) -> Self {
        Transport::Tcp { registry: Arc::new(RwLock::new(HashMap::new())), space }
    }

    /// Registers a peer: for Mem, wires its inbox sender; for TCP, binds a
    /// loopback listener and spawns the accept loop feeding the inbox.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the TCP listener.
    pub async fn register(
        &self,
        id: NodeId,
        inbox: mpsc::UnboundedSender<Envelope>,
    ) -> std::io::Result<()> {
        match self {
            Transport::Mem { registry, .. } => {
                registry.write().insert(id, inbox);
                Ok(())
            }
            Transport::Tcp { registry, space } => {
                let listener = TcpListener::bind(("127.0.0.1", 0)).await?;
                let addr = listener.local_addr()?;
                registry.write().insert(id, addr);
                let space = space.clone();
                tokio::spawn(async move {
                    loop {
                        let Ok((stream, _)) = listener.accept().await else { break };
                        let inbox = inbox.clone();
                        let space = space.clone();
                        tokio::spawn(async move {
                            let _ = serve_conn(stream, space, inbox).await;
                        });
                    }
                });
                Ok(())
            }
        }
    }

    /// Removes a peer from the registry; in-flight and future messages to it
    /// are dropped.
    pub fn deregister(&self, id: NodeId) {
        match self {
            Transport::Mem { registry, .. } => {
                registry.write().remove(&id);
            }
            Transport::Tcp { registry, .. } => {
                registry.write().remove(&id);
            }
        }
    }

    /// Sends `msg` from `from` to `to`. Unknown or dead destinations fail
    /// fast: `to` is pushed on `failures` (the paper's deployments run on
    /// TCP, where a dead endpoint refuses the connection immediately), so
    /// the sender can skip the broken link instead of waiting for `T(q)`.
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        msg: NetMessage,
        failures: &mpsc::UnboundedSender<NodeId>,
    ) {
        match self {
            Transport::Mem { registry, latency_ms } => {
                let Some(tx) = registry.read().get(&to).cloned() else {
                    let _ = failures.send(to);
                    return;
                };
                match *latency_ms {
                    None => {
                        if tx.send((from, msg)).is_err() {
                            let _ = failures.send(to);
                        }
                    }
                    Some((lo, hi)) => {
                        let delay = rand::thread_rng().gen_range(lo..=hi);
                        let failures = failures.clone();
                        tokio::spawn(async move {
                            tokio::time::sleep(std::time::Duration::from_millis(delay)).await;
                            if tx.send((from, msg)).is_err() {
                                let _ = failures.send(to);
                            }
                        });
                    }
                }
            }
            Transport::Tcp { registry, .. } => {
                let Some(addr) = registry.read().get(&to).copied() else {
                    let _ = failures.send(to);
                    return;
                };
                let frame = frame(from, &msg);
                let failures = failures.clone();
                tokio::spawn(async move {
                    match TcpStream::connect(addr).await {
                        Ok(mut stream) => {
                            if stream.write_all(&frame).await.is_err() {
                                let _ = failures.send(to);
                            }
                            let _ = stream.shutdown().await;
                        }
                        Err(_) => {
                            let _ = failures.send(to);
                        }
                    }
                });
            }
        }
    }

    /// Ids currently registered.
    pub fn peers(&self) -> Vec<NodeId> {
        match self {
            Transport::Mem { registry, .. } => registry.read().keys().copied().collect(),
            Transport::Tcp { registry, .. } => registry.read().keys().copied().collect(),
        }
    }
}

/// Frame layout: `[u32 len][u64 from][payload]`, len covers from+payload.
fn frame(from: NodeId, msg: &NetMessage) -> Bytes {
    let payload = wire::encode(msg);
    let mut buf = BytesMut::with_capacity(12 + payload.len());
    buf.put_u32_le((8 + payload.len()) as u32);
    buf.put_u64_le(from);
    buf.extend_from_slice(&payload);
    buf.freeze()
}

async fn serve_conn(
    mut stream: TcpStream,
    space: Space,
    inbox: mpsc::UnboundedSender<Envelope>,
) -> std::io::Result<()> {
    loop {
        let mut len_buf = [0u8; 4];
        match stream.read_exact(&mut len_buf).await {
            Ok(_) => {}
            Err(_) => return Ok(()), // EOF between frames
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if !(8..16 * 1024 * 1024).contains(&len) {
            return Ok(()); // nonsense length: drop connection
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).await?;
        let mut body = Bytes::from(body);
        let from = body.get_u64_le();
        if let Ok(msg) = wire::decode(&space, body) {
            if inbox.send((from, msg)).is_err() {
                return Ok(()); // peer gone
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrspace::Query;
    use autosel_core::{Message, QueryId, QueryMsg};

    fn sample_msg(space: &Space) -> NetMessage {
        NetMessage::Protocol(Message::Query(QueryMsg {
            id: QueryId { origin: 1, seq: 2 },
            query: Query::builder(space).build().unwrap(),
            sigma: None,
            level: 3,
            dims: 0b11,
            dynamic: Vec::new(),
            count_only: false,
            visited_zero: Vec::new(),
        }))
    }

    #[tokio::test]
    async fn mem_transport_delivers() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::mem(None);
        let (tx, mut rx) = mpsc::unbounded_channel();
        t.register(7, tx).await.unwrap();
        let (ftx, _frx) = mpsc::unbounded_channel();
        t.send(3, 7, sample_msg(&space), &ftx);
        let (from, msg) = rx.recv().await.unwrap();
        assert_eq!(from, 3);
        assert_eq!(msg, sample_msg(&space));
    }

    #[tokio::test]
    async fn mem_transport_drops_to_dead() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::mem(None);
        let (tx, mut rx) = mpsc::unbounded_channel();
        t.register(7, tx).await.unwrap();
        t.deregister(7);
        let (ftx, mut frx) = mpsc::unbounded_channel();
        t.send(3, 7, sample_msg(&space), &ftx);
        assert!(rx.try_recv().is_err());
        assert_eq!(frx.try_recv(), Ok(7), "fail-fast feedback delivered");
        assert!(t.peers().is_empty());
    }

    #[tokio::test]
    async fn tcp_transport_round_trips_frames() {
        let space = Space::uniform(2, 80, 3).unwrap();
        let t = Transport::tcp(space.clone());
        let (tx, mut rx) = mpsc::unbounded_channel();
        t.register(9, tx).await.unwrap();
        let (ftx, _frx) = mpsc::unbounded_channel();
        t.send(4, 9, sample_msg(&space), &ftx);
        let (from, msg) = tokio::time::timeout(std::time::Duration::from_secs(5), rx.recv())
            .await
            .expect("timely")
            .expect("delivered");
        assert_eq!(from, 4);
        assert_eq!(msg, sample_msg(&space));
    }
}
