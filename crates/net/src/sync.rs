//! Lock-class-tracked synchronization primitives for the live runtime.
//!
//! A re-export of [`autosel_obs::sync`]: tracked `Mutex`/`Condvar`/`RwLock`
//! wrappers that keep a per-thread held-set and a global acquisition-order
//! graph in debug builds (and under `--features lockcheck`), panicking on
//! lock-order inversions with both offending lock-class chains named, and
//! compiling down to plain `std::sync` passthrough in release builds.
//!
//! The wrappers live in `crates/obs` because the obs crate's own
//! [`FlightRecorder`](autosel_obs::FlightRecorder) ring runs under them too
//! (and obs sits below net in the dependency graph); this module is the
//! name the runtime code uses. Every lock in `crates/net` — transport link
//! state, the delay line, the peer registries — is declared through these
//! types with a `lock-class` annotation that the static `lock-order` pass
//! in `crates/analyze` cross-checks. See docs/ANALYSIS.md ("Concurrency
//! soundness") for the class table and the runtime checker's guarantees.

pub use autosel_obs::sync::{
    lockcheck_active, set_hold_registry, TrackedCondvar, TrackedMutex, TrackedMutexGuard,
    TrackedReadGuard, TrackedRwLock, TrackedWriteGuard,
};
