//! # autosel-net — real-network deployment of the resource-selection overlay
//!
//! The paper validates its protocol beyond simulation: 1 000 emulated nodes
//! on the DAS-3 cluster and 302 nodes on PlanetLab. This crate is the
//! equivalent runtime, built on OS threads and blocking I/O:
//!
//! * every node is an independent thread running the *same* sans-IO state
//!   machines as the simulator ([`autosel_core::SelectionNode`] +
//!   [`epigossip::GossipStack`]), with real timers, real queues and real
//!   message interleavings;
//! * two transports: [`Transport::mem`] (in-process channels with optional
//!   injected latency — the DAS emulation, where 20 processes per physical
//!   host shared one cluster) and [`Transport::tcp`] (real sockets over
//!   loopback with a length-prefixed binary codec — the PlanetLab role);
//! * [`NetCluster`] — spawn a population, issue queries, kill nodes
//!   ungracefully, and watch gossip repair the overlay, exactly like
//!   §6.6–6.7's deployments.
//!
//! Wall-clock scaling: experiments shrink the paper's 10-second gossip
//! period to tens of milliseconds. All dynamics are expressed in gossip
//! *rounds*, so the scaled runs preserve the recovery behaviour (DESIGN.md
//! §4).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cluster;
mod config;
mod peer;
pub mod sync;
mod transport;
pub mod wire;

pub use cluster::{GossipHealth, InboxStats, NetCluster, QueryOutcome, QueryTicket};
pub use config::{NetConfig, TcpTuning};
pub use peer::NetMessage;
pub use transport::{TcpStatsSnapshot, Transport};
