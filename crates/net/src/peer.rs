use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use attrspace::{Point, Query, Space};
use autosel_core::{Match, Message, NodeProfile, Output, QueryId, SelectionNode, SlotSelector};
use autosel_obs::ObsHandle;
use epigossip::{GossipMessage, GossipStack, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{NetConfig, Transport};

/// A message on the wire: either the selection protocol or overlay gossip.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMessage {
    /// QUERY/REPLY traffic.
    Protocol(Message),
    /// Membership gossip.
    Gossip(GossipMessage<NodeProfile>),
}

/// Commands a peer accepts from its [`NetCluster`](crate::NetCluster) handle.
///
/// Reply channels are rendezvous-bounded (`sync_channel(1)`): a peer sends
/// exactly one completion per issued query, so the bound can never block it.
#[derive(Debug)]
pub(crate) enum Command {
    BeginQuery {
        query: Query,
        sigma: Option<u32>,
        reply: mpsc::SyncSender<(QueryId, Vec<Match>)>,
    },
    BeginCount {
        query: Query,
        reply: mpsc::SyncSender<u64>,
    },
    Introduce(NodeId, Point),
    Shutdown,
}

/// Everything a peer's event loop reacts to, multiplexed on one channel so
/// the loop is a single `recv_timeout` against its next timer deadline.
#[derive(Debug)]
pub(crate) enum PeerEvent {
    /// A message arrived from `NodeId`.
    Deliver(NodeId, NetMessage),
    /// A control command from the cluster handle.
    Command(Command),
    /// Fail-fast feedback from the transport: this peer is unreachable.
    Failed(NodeId),
}

/// Shared per-peer counters, readable from outside the thread.
#[derive(Debug, Default)]
pub(crate) struct PeerCounters {
    pub sent: AtomicU64,
    pub received: AtomicU64,
    /// Routing-table link count, published after every view sync — a cheap
    /// convergence gauge tests can poll instead of sleeping a fixed warm-up.
    pub links: AtomicU64,
    /// Events currently queued in this peer's inbox. Signed because the
    /// enqueue increment and dequeue decrement race benignly; readers clamp
    /// at zero.
    pub inbox_depth: AtomicI64,
    /// Deliveries dropped because the bounded inbox was full. The protocol
    /// absorbs these like network loss: timeouts retry or amputate.
    pub inbox_dropped: AtomicU64,
    /// Gossip-health gauges, published after every gossip round —
    /// per-layer view size, mean descriptor age (×1000) and cumulative
    /// turnover, mirroring the simulator's `gossip_health()` reading so
    /// soak-style bounds can be asserted on live clusters.
    pub view_random: AtomicU64,
    pub view_semantic: AtomicU64,
    pub age_random_x1000: AtomicU64,
    pub age_semantic_x1000: AtomicU64,
    pub turnover_random: AtomicU64,
    pub turnover_semantic: AtomicU64,
}

/// The sending half of a peer's *bounded* inbox plus the shared counters of
/// the peer it feeds — the only way crate code enqueues a [`PeerEvent`].
///
/// Two disciplines, by message class:
///
/// * [`try_deliver`](Self::try_deliver) — peer traffic (deliveries,
///   fail-fast feedback). Never blocks: a full inbox **drops** the event
///   and counts it, because backpressure between peer threads would
///   propagate into distributed deadlock, while the protocol already
///   survives loss via timeouts.
/// * [`send_blocking`](Self::send_blocking) — cluster-handle control
///   commands (queries, introductions, shutdown). These must not be lost,
///   come from outside the peer mesh, and are low-rate, so blocking on a
///   saturated inbox is safe and correct.
#[derive(Debug, Clone)]
pub(crate) struct InboxSender {
    tx: mpsc::SyncSender<PeerEvent>,
    counters: Arc<PeerCounters>,
}

impl InboxSender {
    pub(crate) fn new(tx: mpsc::SyncSender<PeerEvent>, counters: Arc<PeerCounters>) -> Self {
        InboxSender { tx, counters }
    }

    /// A bounded inbox plus its receiver, with fresh counters (tests and
    /// transport unit checks).
    #[cfg(test)]
    pub(crate) fn test_pair(capacity: usize) -> (Self, mpsc::Receiver<PeerEvent>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (InboxSender::new(tx, Arc::new(PeerCounters::default())), rx)
    }

    /// Non-blocking delivery for peer traffic; a full inbox drops the event
    /// (counted in `inbox_dropped`). `Err` means the peer is gone.
    pub(crate) fn try_deliver(&self, event: PeerEvent) -> Result<(), ()> {
        match self.tx.try_send(event) {
            Ok(()) => {
                self.counters.inbox_depth.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(mpsc::TrySendError::Full(_)) => {
                self.counters.inbox_dropped.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(mpsc::TrySendError::Disconnected(_)) => Err(()),
        }
    }

    /// Blocking send for control commands; `Err` means the peer is gone.
    pub(crate) fn send_blocking(&self, event: PeerEvent) -> Result<(), ()> {
        match self.tx.send(event) {
            Ok(()) => {
                self.counters.inbox_depth.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => Err(()),
        }
    }
}

pub(crate) struct PeerTask {
    id: NodeId,
    selection: SelectionNode,
    gossip: GossipStack<NodeProfile>,
    transport: Transport,
    events: mpsc::Receiver<PeerEvent>,
    /// Own sender, handed to the transport for fail-fast feedback.
    events_tx: InboxSender,
    config: NetConfig,
    counters: Arc<PeerCounters>,
    started: Instant,
    rng: SmallRng,
    pending_queries: HashMap<QueryId, mpsc::SyncSender<(QueryId, Vec<Match>)>>,
    pending_counts: HashMap<QueryId, mpsc::SyncSender<u64>>,
}

impl PeerTask {
    #[allow(clippy::too_many_arguments)] // internal constructor, one call site
    pub(crate) fn new(
        id: NodeId,
        space: &Space,
        point: Point,
        config: NetConfig,
        transport: Transport,
        events: mpsc::Receiver<PeerEvent>,
        events_tx: InboxSender,
        counters: Arc<PeerCounters>,
        started: Instant,
        obs: ObsHandle,
    ) -> Self {
        let mut selection = SelectionNode::new(id, space, point, config.protocol.clone());
        selection.set_observer(obs.clone());
        let mut gossip = GossipStack::new(
            id,
            selection.profile(),
            config.gossip.clone(),
            SlotSelector::default(),
        );
        gossip.set_observer(obs);
        PeerTask {
            id,
            selection,
            gossip,
            transport,
            events,
            events_tx,
            config,
            counters,
            started,
            rng: SmallRng::seed_from_u64(id ^ 0xA5A5_5A5A_DEAD_BEEF),
            pending_queries: HashMap::new(),
            pending_counts: HashMap::new(),
        }
    }

    fn now(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn send(&self, to: NodeId, msg: NetMessage) {
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        self.transport.send(self.id, to, msg, &self.events_tx);
    }

    fn apply_outputs(&mut self, outputs: Vec<Output>) {
        for o in outputs {
            match o {
                Output::Send { to, msg } => self.send(to, NetMessage::Protocol(msg)),
                Output::Completed { id, matches, count } => {
                    if let Some(reply) = self.pending_queries.remove(&id) {
                        let _ = reply.send((id, matches));
                    } else if let Some(reply) = self.pending_counts.remove(&id) {
                        let _ = reply.send(count);
                    }
                }
                Output::NeighborFailed(peer) => self.gossip.evict(peer),
            }
        }
    }

    /// Publishes the per-layer gossip-health gauges (view size, mean
    /// descriptor age, turnover) — one store per field, read by
    /// [`NetCluster::gossip_health`](crate::NetCluster::gossip_health).
    fn publish_gossip_gauges(&self) {
        let c = &*self.counters;
        let random = self.gossip.random_view();
        let semantic = self.gossip.semantic_view();
        c.view_random.store(random.len() as u64, Ordering::Relaxed);
        c.view_semantic.store(semantic.len() as u64, Ordering::Relaxed);
        c.age_random_x1000.store(random.mean_age_x1000(), Ordering::Relaxed);
        c.age_semantic_x1000.store(semantic.mean_age_x1000(), Ordering::Relaxed);
        c.turnover_random.store(random.turnover(), Ordering::Relaxed);
        c.turnover_semantic.store(semantic.turnover(), Ordering::Relaxed);
    }

    fn do_gossip(&mut self) {
        let now = self.now();
        let msgs = self.gossip.tick(now, &mut self.rng);
        let view = self.gossip.semantic_view().clone();
        self.selection.sync_from_view(&view, now, &mut self.rng);
        self.counters
            .links
            .store(self.selection.routing().link_count() as u64, Ordering::Relaxed);
        self.publish_gossip_gauges();
        for (to, m) in msgs {
            self.send(to, NetMessage::Gossip(m));
        }
    }

    fn handle_envelope(&mut self, from: NodeId, msg: NetMessage) {
        self.counters.received.fetch_add(1, Ordering::Relaxed);
        match msg {
            NetMessage::Protocol(m) => {
                let now = self.now();
                let outputs = self.selection.handle_message(from, m, now);
                self.apply_outputs(outputs);
            }
            NetMessage::Gossip(g) => {
                let now = self.now();
                let replies = self.gossip.handle(from, g, &mut self.rng);
                let view = self.gossip.semantic_view().clone();
                self.selection.sync_from_view(&view, now, &mut self.rng);
                self.counters
                    .links
                    .store(self.selection.routing().link_count() as u64, Ordering::Relaxed);
                for (to, m) in replies {
                    self.send(to, NetMessage::Gossip(m));
                }
            }
        }
    }

    fn handle_command(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::BeginQuery { query, sigma, reply } => {
                let now = self.now();
                let (qid, outputs) = self.selection.begin_query(query, sigma, now);
                self.pending_queries.insert(qid, reply);
                self.apply_outputs(outputs);
                true
            }
            Command::BeginCount { query, reply } => {
                let now = self.now();
                let (qid, outputs) = self.selection.begin_count_query(query, Vec::new(), now);
                self.pending_counts.insert(qid, reply);
                self.apply_outputs(outputs);
                true
            }
            Command::Introduce(id, point) => {
                let profile = NodeProfile::new(self.selection.space(), point);
                self.gossip.introduce(id, profile);
                true
            }
            Command::Shutdown => false,
        }
    }

    /// The peer's main loop; returns when shut down. Timers (gossip period,
    /// timeout polling) are expressed as deadlines the event `recv_timeout`
    /// is bounded by, with missed ticks delayed rather than bursted.
    pub(crate) fn run(mut self) {
        let gossip_period = Duration::from_millis(self.config.gossip.period_ms);
        let poll_period = Duration::from_millis(self.config.poll_interval_ms);
        let mut next_gossip = Instant::now() + gossip_period;
        let mut next_poll = Instant::now() + poll_period;
        loop {
            let now = Instant::now();
            if now >= next_gossip {
                self.do_gossip();
                next_gossip = Instant::now() + gossip_period;
                continue;
            }
            if now >= next_poll {
                let t = self.now();
                let outputs = self.selection.poll_timeouts(t);
                self.apply_outputs(outputs);
                next_poll = Instant::now() + poll_period;
                continue;
            }
            let wait = next_gossip.min(next_poll) - now;
            let event = self.events.recv_timeout(wait);
            if event.is_ok() {
                self.counters.inbox_depth.fetch_sub(1, Ordering::Relaxed);
            }
            match event {
                Ok(PeerEvent::Deliver(from, msg)) => self.handle_envelope(from, msg),
                Ok(PeerEvent::Command(cmd)) => {
                    if !self.handle_command(cmd) {
                        break;
                    }
                }
                Ok(PeerEvent::Failed(peer)) => {
                    // Transport said `peer` is gone: skip its subtrees now
                    // and stop gossiping with it.
                    self.gossip.evict(peer);
                    let t = self.now();
                    let outputs = self.selection.peer_unreachable(peer, t);
                    self.apply_outputs(outputs);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        self.transport.deregister(self.id);
    }
}
