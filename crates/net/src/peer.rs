use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use attrspace::{Point, Query, Space};
use autosel_core::{
    Match, Message, NodeProfile, Output, QueryId, SelectionNode, SlotSelector,
};
use epigossip::{GossipMessage, GossipStack, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tokio::sync::{mpsc, oneshot};

use crate::transport::Envelope;
use crate::{NetConfig, Transport};

/// A message on the wire: either the selection protocol or overlay gossip.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMessage {
    /// QUERY/REPLY traffic.
    Protocol(Message),
    /// Membership gossip.
    Gossip(GossipMessage<NodeProfile>),
}

/// Commands a peer accepts from its [`NetCluster`](crate::NetCluster) handle.
#[derive(Debug)]
pub(crate) enum Command {
    BeginQuery {
        query: Query,
        sigma: Option<u32>,
        reply: oneshot::Sender<(QueryId, Vec<Match>)>,
    },
    BeginCount {
        query: Query,
        reply: oneshot::Sender<u64>,
    },
    Introduce(NodeId, Point),
    Shutdown,
}

/// Shared per-peer counters, readable from outside the task.
#[derive(Debug, Default)]
pub(crate) struct PeerCounters {
    pub sent: AtomicU64,
    pub received: AtomicU64,
}

pub(crate) struct PeerTask {
    id: NodeId,
    selection: SelectionNode,
    gossip: GossipStack<NodeProfile>,
    transport: Transport,
    inbox: mpsc::UnboundedReceiver<Envelope>,
    commands: mpsc::UnboundedReceiver<Command>,
    config: NetConfig,
    counters: Arc<PeerCounters>,
    started: tokio::time::Instant,
    rng: SmallRng,
    pending_queries: HashMap<QueryId, oneshot::Sender<(QueryId, Vec<Match>)>>,
    pending_counts: HashMap<QueryId, oneshot::Sender<u64>>,
    /// Fail-fast feedback from the transport: peers that refused a send.
    failures_tx: mpsc::UnboundedSender<NodeId>,
    failures_rx: mpsc::UnboundedReceiver<NodeId>,
}

impl PeerTask {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: NodeId,
        space: &Space,
        point: Point,
        config: NetConfig,
        transport: Transport,
        inbox: mpsc::UnboundedReceiver<Envelope>,
        commands: mpsc::UnboundedReceiver<Command>,
        counters: Arc<PeerCounters>,
        started: tokio::time::Instant,
    ) -> Self {
        let selection = SelectionNode::new(id, space, point, config.protocol.clone());
        let gossip = GossipStack::new(
            id,
            selection.profile(),
            config.gossip.clone(),
            SlotSelector::default(),
        );
        let (failures_tx, failures_rx) = mpsc::unbounded_channel();
        PeerTask {
            id,
            selection,
            gossip,
            transport,
            inbox,
            commands,
            config,
            counters,
            started,
            rng: SmallRng::seed_from_u64(id ^ 0xA5A5_5A5A_DEAD_BEEF),
            pending_queries: HashMap::new(),
            pending_counts: HashMap::new(),
            failures_tx,
            failures_rx,
        }
    }

    fn now(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn send(&self, to: NodeId, msg: NetMessage) {
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        self.transport.send(self.id, to, msg, &self.failures_tx);
    }

    fn apply_outputs(&mut self, outputs: Vec<Output>) {
        for o in outputs {
            match o {
                Output::Send { to, msg } => self.send(to, NetMessage::Protocol(msg)),
                Output::Completed { id, matches, count } => {
                    if let Some(reply) = self.pending_queries.remove(&id) {
                        let _ = reply.send((id, matches));
                    } else if let Some(reply) = self.pending_counts.remove(&id) {
                        let _ = reply.send(count);
                    }
                }
                Output::NeighborFailed(peer) => self.gossip.evict(peer),
            }
        }
    }

    fn do_gossip(&mut self) {
        let now = self.now();
        let msgs = self.gossip.tick(now, &mut self.rng);
        let view = self.gossip.semantic_view().clone();
        self.selection.sync_from_view(&view, &mut self.rng);
        for (to, m) in msgs {
            self.send(to, NetMessage::Gossip(m));
        }
    }

    fn handle_envelope(&mut self, from: NodeId, msg: NetMessage) {
        self.counters.received.fetch_add(1, Ordering::Relaxed);
        match msg {
            NetMessage::Protocol(m) => {
                let now = self.now();
                let outputs = self.selection.handle_message(from, m, now);
                self.apply_outputs(outputs);
            }
            NetMessage::Gossip(g) => {
                let replies = self.gossip.handle(from, g, &mut self.rng);
                let view = self.gossip.semantic_view().clone();
                self.selection.sync_from_view(&view, &mut self.rng);
                for (to, m) in replies {
                    self.send(to, NetMessage::Gossip(m));
                }
            }
        }
    }

    fn handle_command(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::BeginQuery { query, sigma, reply } => {
                let now = self.now();
                let (qid, outputs) = self.selection.begin_query(query, sigma, now);
                self.pending_queries.insert(qid, reply);
                self.apply_outputs(outputs);
                true
            }
            Command::BeginCount { query, reply } => {
                let now = self.now();
                let (qid, outputs) = self.selection.begin_count_query(query, Vec::new(), now);
                self.pending_counts.insert(qid, reply);
                self.apply_outputs(outputs);
                true
            }
            Command::Introduce(id, point) => {
                let profile = NodeProfile::new(self.selection.space(), point);
                self.gossip.introduce(id, profile);
                true
            }
            Command::Shutdown => false,
        }
    }

    /// The peer's main loop; returns when shut down.
    pub(crate) async fn run(mut self) {
        let mut gossip_timer =
            tokio::time::interval(std::time::Duration::from_millis(self.config.gossip.period_ms));
        gossip_timer.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
        let mut poll_timer =
            tokio::time::interval(std::time::Duration::from_millis(self.config.poll_interval_ms));
        poll_timer.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
        loop {
            tokio::select! {
                env = self.inbox.recv() => match env {
                    Some((from, msg)) => self.handle_envelope(from, msg),
                    None => break,
                },
                cmd = self.commands.recv() => match cmd {
                    Some(c) => {
                        if !self.handle_command(c) {
                            break;
                        }
                    }
                    None => break,
                },
                _ = gossip_timer.tick() => self.do_gossip(),
                _ = poll_timer.tick() => {
                    let now = self.now();
                    let outputs = self.selection.poll_timeouts(now);
                    self.apply_outputs(outputs);
                }
                Some(peer) = self.failures_rx.recv() => {
                    // Transport said `peer` is gone: skip its subtrees now
                    // and stop gossiping with it.
                    self.gossip.evict(peer);
                    let now = self.now();
                    let outputs = self.selection.peer_unreachable(peer, now);
                    self.apply_outputs(outputs);
                }
            }
        }
        self.transport.deregister(self.id);
    }
}
