//! ASCII rendering of two-dimensional attribute spaces — a debugging aid
//! that makes the paper's Figs. 1–3 reproducible on any population: cell
//! occupancy, query footprints, and a node's neighboring-subcell links.
//!
//! Only meaningful for `d == 2`; higher-dimensional spaces have no faithful
//! planar rendering and are rejected.

use attrspace::{CellCoord, Point, Query, Space};

/// Renders per-`C0`-cell occupancy counts as a grid. Dimension 0 runs
/// left→right, dimension 1 top→bottom (like the paper's figures). Counts
/// above 9 render as `+`; empty cells as `·`.
///
/// # Panics
///
/// Panics unless `space.dims() == 2`.
pub fn render_occupancy(space: &Space, points: &[Point]) -> String {
    assert_eq!(space.dims(), 2, "occupancy rendering requires d = 2");
    let b = space.buckets_per_dim() as usize;
    let mut counts = vec![vec![0u32; b]; b];
    for p in points {
        let c = space.cell_coord(p);
        counts[c.indices()[1] as usize][c.indices()[0] as usize] += 1;
    }
    let mut out = String::with_capacity(b * (2 * b + 1));
    for row in &counts {
        for (i, &c) in row.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push(match c {
                0 => '·',
                1..=9 => char::from(b'0' + c as u8),
                _ => '+',
            });
        }
        out.push('\n');
    }
    out
}

/// Renders a query footprint over the population: `#` = in-footprint cell
/// with occupants, `□` = in-footprint but empty, digits/`·` elsewhere as in
/// [`render_occupancy`].
///
/// # Panics
///
/// Panics unless `space.dims() == 2`.
pub fn render_query(space: &Space, query: &Query, points: &[Point]) -> String {
    assert_eq!(space.dims(), 2, "query rendering requires d = 2");
    let b = space.buckets_per_dim() as usize;
    let mut counts = vec![vec![0u32; b]; b];
    for p in points {
        let c = space.cell_coord(p);
        counts[c.indices()[1] as usize][c.indices()[0] as usize] += 1;
    }
    let region = query.region();
    let mut out = String::new();
    for (y, row) in counts.iter().enumerate() {
        for (x, &c) in row.iter().enumerate() {
            if x > 0 {
                out.push(' ');
            }
            let inside = region.contains(&CellCoord::new(
                vec![x as u32, y as u32],
                space.max_level(),
            ));
            out.push(match (inside, c) {
                (true, 0) => '□',
                (true, _) => '#',
                (false, 0) => '·',
                (false, 1..=9) => char::from(b'0' + c as u8),
                (false, _) => '+',
            });
        }
        out.push('\n');
    }
    out
}

/// Renders one node's neighboring subcells `N(l,k)` like the paper's
/// Fig. 1(b): the node as `X`, each subcell labeled by its level digit, the
/// node's own `C0` as `x`.
///
/// # Panics
///
/// Panics unless the coordinate is two-dimensional.
pub fn render_neighborhoods(coord: &CellCoord) -> String {
    assert_eq!(coord.dims(), 2, "neighborhood rendering requires d = 2");
    let b = 1usize << coord.max_level();
    let mut grid = vec![vec!['·'; b]; b];
    for level in 1..=coord.max_level() {
        for dim in 0..2 {
            let region = coord.neighboring_cell(level, dim);
            let label = char::from(b'0' + level);
            let (x0, x1) = region.intervals()[0];
            let (y0, y1) = region.intervals()[1];
            for y in y0..=y1 {
                for x in x0..=x1 {
                    grid[y as usize][x as usize] = label;
                }
            }
        }
    }
    grid[coord.indices()[1] as usize][coord.indices()[0] as usize] = 'X';
    let mut out = String::new();
    for row in grid {
        for (i, c) in row.into_iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push(c);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrspace::Query;

    fn space() -> Space {
        Space::uniform(2, 80, 3).unwrap()
    }

    fn pts(space: &Space, raw: &[[u64; 2]]) -> Vec<Point> {
        raw.iter().map(|v| space.point(v).unwrap()).collect()
    }

    #[test]
    fn occupancy_places_counts() {
        let s = space();
        let points = pts(&s, &[[5, 5], [6, 3], [75, 75], [74, 74]]);
        let grid = render_occupancy(&s, &points);
        let rows: Vec<&str> = grid.lines().collect();
        assert_eq!(rows.len(), 8);
        // (5,5) and (6,3) share bucket (0,0) → '2' top-left.
        assert_eq!(rows[0].chars().next(), Some('2'));
        // two nodes at (74..75, 74..75) → bucket (7,7) bottom-right.
        assert_eq!(rows[7].chars().last(), Some('2'));
        assert!(grid.contains('·'));
    }

    #[test]
    fn occupancy_golden_empty() {
        // 2 buckets per dim → the whole grid fits in a golden string.
        let s = Space::uniform(2, 80, 1).unwrap();
        assert_eq!(render_occupancy(&s, &[]), "· ·\n· ·\n");
    }

    #[test]
    fn occupancy_golden_single() {
        let s = Space::uniform(2, 80, 1).unwrap();
        let points = pts(&s, &[[5, 50]]); // bucket (0, 1): left column, bottom row
        assert_eq!(render_occupancy(&s, &points), "· ·\n1 ·\n");
    }

    #[test]
    fn occupancy_golden_overflow_cell() {
        // Counts above 9 saturate to '+' instead of widening the column.
        let s = Space::uniform(2, 80, 1).unwrap();
        let points = pts(&s, &[[5, 5]; 12]);
        assert_eq!(render_occupancy(&s, &points), "+ ·\n· ·\n");
    }

    #[test]
    #[should_panic(expected = "d = 2")]
    fn query_rendering_rejects_high_dimensions() {
        let s = Space::uniform(3, 80, 2).unwrap();
        let q = Query::builder(&s).range("a0", 0, 10).build().unwrap();
        let _ = render_query(&s, &q, &[]);
    }

    #[test]
    fn query_footprint_marks_cells() {
        let s = space();
        let points = pts(&s, &[[45, 45]]);
        let q = Query::builder(&s).range("a0", 40, 49).range("a1", 40, 49).build().unwrap();
        let grid = render_query(&s, &q, &points);
        assert!(grid.contains('#'), "occupied footprint cell");
        assert!(!grid.contains('□'), "footprint is a single occupied cell");
        let q2 = Query::builder(&s).range("a0", 40, 59).range("a1", 40, 59).build().unwrap();
        let grid2 = render_query(&s, &q2, &points);
        assert!(grid2.contains('□'), "wider footprint has empty cells");
    }

    #[test]
    fn neighborhoods_match_figure_1b() {
        let s = space();
        let coord = s.cell_coord(&s.point(&[15, 15]).unwrap()); // bucket (1,1)
        let grid = render_neighborhoods(&coord);
        let rows: Vec<Vec<char>> = grid
            .lines()
            .map(|l| l.split(' ').map(|t| t.chars().next().unwrap()).collect())
            .collect();
        assert_eq!(rows[1][1], 'X');
        // Level-1 subcells adjoin X: (0,1) and (1,0).
        assert_eq!(rows[1][0], '1');
        assert_eq!(rows[0][1], '1');
        // Level-3 half-planes: right half and bottom half.
        assert_eq!(rows[0][7], '3');
        assert_eq!(rows[7][0], '3');
        // Level-2 blocks: columns 2–3 (same rows 0–3) and rows 2–3.
        assert_eq!(rows[0][2], '2');
        assert_eq!(rows[2][0], '2');
    }

    #[test]
    #[should_panic(expected = "d = 2")]
    fn high_dimensions_rejected() {
        let s = Space::uniform(3, 80, 2).unwrap();
        let _ = render_occupancy(&s, &[]);
    }
}
