use autosel_core::ProtocolConfig;
use epigossip::GossipConfig;

use crate::LatencyModel;

/// Simulation parameters. Defaults follow Table 1 of the paper: 10-second
/// gossip period, cache size 20, five dimensions and nesting depth 3 are
/// properties of the [`attrspace::Space`] passed separately.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Gossip-layer tuning (ignored when `gossip` is `false`).
    pub gossip: GossipConfig,
    /// Protocol timeouts.
    pub protocol: ProtocolConfig,
    /// Message latency and loss.
    pub latency: LatencyModel,
    /// Whether nodes run the gossip stack. Static experiments (Figs. 6–10)
    /// use oracle-wired routing tables with gossip off; dynamic experiments
    /// (Figs. 11–13) turn it on.
    pub gossip_enabled: bool,
    /// Whether a protocol send to a dead node bounces back as fail-fast
    /// feedback (a refused TCP connection) so the sender skips the broken
    /// link and continues — matching the paper's deployments. With `false`
    /// the message vanishes silently and only `T(q)` unfreezes the sender.
    pub fail_fast_dead_links: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            gossip: GossipConfig::default(),
            protocol: ProtocolConfig::default(),
            latency: LatencyModel::Uniform { lo_ms: 10, hi_ms: 100 },
            gossip_enabled: true,
            fail_fast_dead_links: true,
        }
    }
}

impl SimConfig {
    /// Configuration for static measurements: no gossip, constant 1 ms
    /// latency, generous timeouts — queries traverse an oracle-wired overlay
    /// exactly as in the paper's converged-state experiments.
    pub fn fast_static() -> Self {
        SimConfig {
            gossip: GossipConfig::default(),
            protocol: ProtocolConfig { query_timeout_ms: 60_000, ..ProtocolConfig::default() },
            latency: LatencyModel::Constant { ms: 1 },
            gossip_enabled: false,
            fail_fast_dead_links: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_table_1() {
        let c = SimConfig::default();
        assert_eq!(c.gossip.period_ms, 10_000);
        assert_eq!(c.gossip.cyclon_view, 20);
        assert!(c.gossip_enabled);
    }

    #[test]
    fn fast_static_disables_gossip() {
        let c = SimConfig::fast_static();
        assert!(!c.gossip_enabled);
        assert_eq!(c.latency.sample_fixed(), 1);
    }
}
