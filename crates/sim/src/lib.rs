//! # overlay-sim — discrete-event simulation of the resource-selection overlay
//!
//! The paper evaluates its protocol on PeerSim with up to 100 000 nodes; this
//! crate is the equivalent substrate, built from scratch:
//!
//! * [`SimCluster`] — a population of [`autosel_core::SelectionNode`]s (each
//!   optionally paired with a two-layer [`epigossip::GossipStack`]) driven by
//!   a virtual-time event queue;
//! * [`LatencyModel`] — per-message delays and loss;
//! * [`Placement`] — how node attribute values are drawn (uniform, normal
//!   hotspot, or externally supplied trace vectors);
//! * [`workload`] — the paper's query generators: selectivity-targeted
//!   *best-case* (cell-aligned, single subtree) and *worst-case* (straddling
//!   every split boundary) queries (§6.2);
//! * churn and massive-failure injection ([`SimCluster::churn_step`],
//!   [`SimCluster::kill_fraction`]) as in §6.6–6.7;
//! * [`faults`] — a seeded, composable [`FaultPlan`] (message drop /
//!   delay / duplication / reordering, healing partitions, timed crash &
//!   restart) injected at the single delivery boundary;
//! * [`invariants`] — an [`InvariantChecker`] asserting the §6 global
//!   correctness claims (exactly-once visits, σ-bounded early stop, no
//!   leaked per-query state, monotone time, acyclic reply routing) after
//!   every event and at quiescence;
//! * [`QueryStats`] — per-query routing overhead, delivery, duplicate count
//!   and message totals: exactly the metrics the paper's figures plot;
//! * an exploration surface for external model checkers
//!   ([`SimCluster::queued_events`] exposing stable [`EventKey`]s,
//!   per-event dispatch / drop / duplicate surgery, [`Scheduler`]-driven
//!   runs, and a logical [`SimCluster::state_hash`]) — `autosel-analyze`
//!   builds its DPOR interleaving explorer on it.
//!
//! Determinism: a cluster seeded with the same seed replays identically.
//!
//! ## Example
//!
//! ```
//! use attrspace::{Query, Space};
//! use overlay_sim::{Placement, SimCluster, SimConfig};
//!
//! let space = Space::uniform(2, 80, 3)?;
//! let mut sim = SimCluster::new(space.clone(), SimConfig::fast_static(), 42);
//! sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 200);
//! sim.wire_oracle();
//!
//! let query = Query::builder(&space).min("a0", 40).build()?;
//! let origin = sim.random_node();
//! let qid = sim.issue_query(origin, query, None);
//! sim.run_to_quiescence();
//!
//! let stats = sim.query_stats(qid).expect("stats recorded");
//! assert_eq!(stats.delivery(), 1.0);     // every matching node was reached
//! assert_eq!(stats.duplicates, 0);       // and none more than once
//! # Ok::<(), attrspace::SpaceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod calendar;
mod cluster;
mod config;
mod event;
mod metrics;
mod network;
mod nodestore;
pub mod ablation;
pub mod faults;
pub mod invariants;
pub mod viz;
pub mod workload;

pub use cluster::{EarliestFirst, GossipHealth, Scheduler, SimCluster};
pub use config::SimConfig;
pub use event::{EventKey, QueuedEvent};
pub use faults::FaultPlan;
pub use invariants::{InvariantChecker, InvariantViolation};
pub use metrics::{LoadHistogram, QueryStats};
pub use network::LatencyModel;
pub use workload::Placement;
