use autosel_core::fasthash::FastMap;
use std::sync::Arc;

use attrspace::{Point, Query, RawValue, Space};
use autosel_core::bootstrap::OracleWiring;
use autosel_core::NeighborEntry;
use autosel_core::{
    DynamicConstraint, Match, Message, NodeProfile, Output, QueryId, SelectionNode, SlotSelector,
};
use autosel_obs::{Event, ObsHandle};
use epigossip::{GossipStack, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use autosel_core::fasthash::Fnv64;

use crate::calendar::CalendarQueue;
use crate::event::{EventKey, EventKind, Payload, QueuedEvent, ScheduledEvent};
use crate::nodestore::NodeStore;
use crate::faults::{FaultPlan, NodeEventKind};
use crate::invariants::{InvariantChecker, InvariantViolation};
use crate::metrics::LoadHistogram;
use crate::{Placement, QueryStats, SimConfig};

/// A pluggable dispatch policy for [`SimCluster::run_to_quiescence_with`]:
/// given the queued events (ascending `(at, seq)`), pick the handle to
/// dispatch next, or `None` to stop. The default simulator order is
/// [`EarliestFirst`]; the `autosel-analyze` explorer substitutes recorded
/// or enumerated schedules.
pub trait Scheduler {
    /// Chooses the `seq` handle of the next event to dispatch. `queued` is
    /// non-empty.
    fn next(&mut self, queued: &[QueuedEvent]) -> Option<u64>;
}

/// The simulator's native policy: earliest firing time, FIFO on ties —
/// exactly what the event heap's fixed tie-break does, so a run driven by
/// this scheduler reproduces [`SimCluster::run_to_quiescence`] event for
/// event.
#[derive(Debug, Default, Clone, Copy)]
pub struct EarliestFirst;

impl Scheduler for EarliestFirst {
    fn next(&mut self, queued: &[QueuedEvent]) -> Option<u64> {
        queued.first().map(|e| e.seq)
    }
}

struct SimNode {
    selection: SelectionNode,
    gossip: Option<GossipStack<NodeProfile>>,
    /// Messages (queries + replies + gossip) dispatched by this node —
    /// Fig. 9's load metric.
    sent: u64,
    /// Protocol messages received.
    received: u64,
    /// Firing time of the earliest `PollTimeouts` event queued for this
    /// node, or `u64::MAX` when none is. One covering poll per node is
    /// enough — it reschedules itself off `next_timeout()` — so deliveries
    /// skip pushing redundant poll events (previously one per message).
    next_poll: u64,
}

/// Aggregate view health of one gossip layer over the alive population —
/// the in-degree / freshness / replacement-rate gauges behind the paper's
/// overlay-maintenance discussion. All integer fixed-point (×1000 where
/// fractional) so readings stay byte-stable across platforms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipHealth {
    /// Nodes with an active gossip stack.
    pub nodes: u64,
    /// Total view entries across those nodes.
    pub links: u64,
    /// Sum over nodes of per-view mean descriptor age, in thousandths.
    pub age_sum_x1000: u64,
    /// Total view turnover (monotone count of entries ever admitted;
    /// deltas between two readings are the replacement rate).
    pub turnover: u64,
}

impl GossipHealth {
    /// Mean view size in thousandths (0 when no nodes gossip).
    pub fn mean_view_size_x1000(&self) -> u64 {
        (self.links * 1000).checked_div(self.nodes).unwrap_or(0)
    }

    /// Mean of the per-node mean descriptor ages, in thousandths.
    pub fn mean_age_x1000(&self) -> u64 {
        self.age_sum_x1000.checked_div(self.nodes).unwrap_or(0)
    }
}

/// A simulated population of resource-selection nodes under virtual time.
///
/// See the crate docs for an end-to-end example. The cluster is
/// deterministic for a given seed and sequence of calls.
pub struct SimCluster {
    space: Space,
    config: SimConfig,
    /// Per-node state, dense by id (ids are handed out contiguously and
    /// restarts reuse them — see `nodestore`). Hot-path lookups are one
    /// bounds-checked offset; a million nodes are one allocation.
    nodes: NodeStore<SimNode>,
    /// Alive node ids, kept sorted ascending — maintained incrementally on
    /// every join/leave so the hot paths (`random_node`, oracle wiring,
    /// churn) never re-collect and re-sort the key set.
    sorted_ids: Vec<NodeId>,
    /// The nodes' attribute values, flattened `dims` per node and aligned
    /// block-for-block with `sorted_ids`. Ground-truth scans (one per
    /// issued query, over the whole population) walk this contiguous
    /// column instead of the node map, whose buckets hold entire
    /// `SimNode`s. Ids arrive mostly ascending (fresh joins), so the
    /// sorted insert is an append in the common case.
    point_values: Vec<RawValue>,
    queue: CalendarQueue,
    now: u64,
    seq: u64,
    next_id: NodeId,
    rng: StdRng,
    queries: FastMap<QueryId, QueryStats>,
    completed: FastMap<QueryId, Vec<Match>>,
    /// Queries whose stats should be tracked (issue-time match snapshot).
    truth: FastMap<QueryId, Query>,
    /// Installed fault plan; quiet by default.
    faults: FaultPlan,
    /// Crashed nodes remembered (id → attribute values) so a timed restart
    /// can bring them back under the same identity.
    crashed: FastMap<NodeId, Point>,
    /// Reused buffer for per-message fault resolution (zero allocations on
    /// the send path once warm).
    delivery_scratch: Vec<u64>,
    /// Observability sink, propagated into every node (null by default).
    /// Events carry virtual-time timestamps.
    obs: ObsHandle,
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl SimCluster {
    /// Creates an empty cluster over `space`.
    pub fn new(space: Space, config: SimConfig, seed: u64) -> Self {
        config.gossip.validate();
        SimCluster {
            space,
            config,
            nodes: NodeStore::default(),
            sorted_ids: Vec::new(),
            point_values: Vec::new(),
            queue: CalendarQueue::new(),
            now: 0,
            seq: 0,
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
            queries: FastMap::default(),
            completed: FastMap::default(),
            truth: FastMap::default(),
            faults: FaultPlan::new(),
            crashed: FastMap::default(),
            delivery_scratch: Vec::new(),
            obs: ObsHandle::null(),
        }
    }

    /// Installs an observability sink on the cluster and every node (current
    /// and future). Timestamps in emitted events are virtual milliseconds.
    ///
    /// Observers are passive: they never touch the protocol RNG or the event
    /// queue, so a traced run and an untraced run of the same seed produce
    /// byte-identical [`QueryStats`] fingerprints.
    pub fn set_observer(&mut self, obs: ObsHandle) {
        for &id in &self.sorted_ids {
            let n = self.nodes.get_mut(&id).expect("indexed node alive");
            n.selection.set_observer(obs.clone());
            if let Some(g) = n.gossip.as_mut() {
                g.set_observer(obs.clone());
            }
        }
        self.obs = obs;
    }

    /// Installs several observability sinks at once — sugar over
    /// [`set_observer`](Self::set_observer) with an
    /// [`autosel_obs::Fanout`], for the common "registry + flight
    /// recorder" production pairing. Replaces any previously installed
    /// observer.
    pub fn add_observers(&mut self, sinks: Vec<std::sync::Arc<dyn autosel_obs::Observer>>) {
        let mut fan = autosel_obs::Fanout::new();
        for s in sinks {
            fan.push(s);
        }
        self.set_observer(ObsHandle::of(fan));
    }

    /// Installs a [`FaultPlan`]: per-message faults apply to every message
    /// sent from now on, and the plan's timed crash/restart events are
    /// scheduled onto the event queue. Installing a plan replaces any
    /// previous one (already-scheduled node events still fire).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for ev in plan.node_events() {
            self.schedule(ev.at.max(self.now), EventKind::NodeFault { node: ev.node, kind: ev.kind });
        }
        self.faults = plan;
    }

    /// Current virtual time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The attribute space.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Ids of all alive nodes, in ascending order (determinism: anything
    /// that feeds the seeded RNG must enumerate in a stable order). The
    /// index is maintained incrementally — no per-call collect-and-sort.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.sorted_ids
    }

    /// A uniformly random alive node.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is empty.
    pub fn random_node(&mut self) -> NodeId {
        assert!(!self.nodes.is_empty(), "empty cluster");
        self.sorted_ids[self.rng.gen_range(0..self.sorted_ids.len())]
    }

    /// The attribute values of `id`, if alive.
    pub fn point_of(&self, id: NodeId) -> Option<&Point> {
        self.nodes.get(&id).map(|n| n.selection.point())
    }

    /// Adds one node at `point`, bootstrapping its gossip stack off up to
    /// three random existing nodes. Returns the new node's id.
    pub fn add_node(&mut self, point: Point) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        self.insert_node(id, point);
        id
    }

    /// Inserts a node under a caller-chosen id (fresh joins allocate one,
    /// restarts reuse the crashed identity).
    fn insert_node(&mut self, id: NodeId, point: Point) {
        let mut selection =
            SelectionNode::new(id, &self.space, point.clone(), self.config.protocol.clone());
        selection.set_observer(self.obs.clone());
        let gossip = if self.config.gossip_enabled {
            let mut stack = GossipStack::new(
                id,
                selection.profile(),
                self.config.gossip.clone(),
                SlotSelector::default(),
            );
            stack.set_observer(self.obs.clone());
            let existing = &self.sorted_ids;
            for _ in 0..3.min(existing.len()) {
                let seed = existing[self.rng.gen_range(0..existing.len())];
                let profile = self.nodes[&seed].selection.profile();
                stack.introduce(seed, profile);
            }
            // Stagger the first gossip within one period.
            let offset = self.rng.gen_range(0..self.config.gossip.period_ms);
            stack.schedule_first(self.now + offset);
            self.schedule(self.now + offset, EventKind::GossipTick { node: id });
            Some(stack)
        } else {
            None
        };
        self.nodes
            .insert(id, SimNode { selection, gossip, sent: 0, received: 0, next_poll: u64::MAX });
        if let Err(at) = self.sorted_ids.binary_search(&id) {
            self.sorted_ids.insert(at, id);
            let d = self.space.dims();
            self.point_values.splice(at * d..at * d, point.values().iter().copied());
        }
    }

    /// Drops `id` from the sorted alive-id index (companion of every
    /// `nodes.remove`).
    fn unindex(&mut self, id: NodeId) {
        if let Ok(at) = self.sorted_ids.binary_search(&id) {
            self.sorted_ids.remove(at);
            let d = self.space.dims();
            self.point_values.drain(at * d..(at + 1) * d);
        }
    }

    /// Adds `n` nodes drawn from `placement`.
    pub fn populate(&mut self, placement: &Placement, n: usize) {
        for i in 0..n {
            let point = placement.draw(&self.space, i, &mut self.rng);
            self.add_node(point);
        }
    }

    /// Oracle-wires every routing table from global knowledge (the paper's
    /// converged initial state for the static experiments).
    pub fn wire_oracle(&mut self) {
        // Index the whole population once, then rewire each table in place,
        // ascending id order (determinism: the wiring draws from the
        // cluster RNG once per non-empty subcell slot).
        let entries: Vec<NeighborEntry> = self
            .sorted_ids
            .iter()
            .map(|id| {
                let sel = &self.nodes[id].selection;
                NeighborEntry {
                    id: *id,
                    point: sel.point().clone(),
                    coord: sel.coord().clone(),
                }
            })
            .collect();
        let wiring = OracleWiring::new(&self.space, entries);
        for i in 0..wiring.entries().len() {
            let id = wiring.entries()[i].id;
            let node = self.nodes.get_mut(&id).expect("known id");
            wiring.wire_table(i, node.selection.routing_mut(), &mut self.rng);
        }
    }

    /// Sets a dynamic attribute on a node (footnote 1 of the paper): checked
    /// locally at match time, never routed or gossiped.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not alive.
    pub fn set_dynamic(&mut self, id: NodeId, key: u32, value: u64) {
        self.nodes
            .get_mut(&id)
            .expect("node alive")
            .selection
            .set_dynamic(key, value);
    }

    /// Issues `query` from `origin` (σ-bounded if given); returns the id.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not alive.
    pub fn issue_query(&mut self, origin: NodeId, query: Query, sigma: Option<u32>) -> QueryId {
        self.issue_query_full(origin, query, Vec::new(), sigma)
    }

    /// Issues a *count-only* query (§2's Astrolabe comparison: this overlay
    /// both counts and enumerates): the traversal is identical but replies
    /// carry one integer per subtree. Read the exact count from
    /// [`QueryStats::reported`] once completed.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not alive.
    pub fn issue_count_query(&mut self, origin: NodeId, query: Query) -> QueryId {
        let truth = self
            .point_values
            .chunks_exact(self.space.dims())
            .filter(|v| query.matches_values(v))
            .count() as u32;
        let node = self.nodes.get_mut(&origin).expect("origin alive");
        let (qid, outputs) = node.selection.begin_count_query(query.clone(), Vec::new(), self.now);
        let mut stats = QueryStats::new(self.now, truth);
        stats.receivers.insert(origin);
        if query.matches(node.selection.point()) {
            stats.matched_reached.insert(origin);
        }
        self.queries.insert(qid, stats);
        self.truth.insert(qid, query);
        self.apply_outputs(origin, outputs);
        self.schedule_timeout_poll(origin);
        qid
    }

    /// Like [`issue_query`](Self::issue_query) with dynamic-attribute
    /// constraints. Note the recorded [`QueryStats::truth`] counts *static*
    /// matches only — delivery is measured against the routable set.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not alive.
    pub fn issue_query_full(
        &mut self,
        origin: NodeId,
        query: Query,
        dynamic: Vec<DynamicConstraint>,
        sigma: Option<u32>,
    ) -> QueryId {
        let truth = self
            .point_values
            .chunks_exact(self.space.dims())
            .filter(|v| query.matches_values(v))
            .count() as u32;
        let node = self.nodes.get_mut(&origin).expect("origin alive");
        let (qid, outputs) =
            node.selection
                .begin_query_full(query.clone(), dynamic, sigma, self.now);
        let mut stats = QueryStats::new(self.now, truth);
        stats.sigma = sigma;
        // The origin counts as reached if it matches (it "received" the
        // query by creating it).
        stats.receivers.insert(origin);
        if query.matches(node.selection.point()) {
            stats.matched_reached.insert(origin);
        }
        self.queries.insert(qid, stats);
        self.truth.insert(qid, query);
        self.apply_outputs(origin, outputs);
        self.schedule_timeout_poll(origin);
        qid
    }

    /// The recorded statistics for a query.
    pub fn query_stats(&self, id: QueryId) -> Option<&QueryStats> {
        self.queries.get(&id)
    }

    /// The matches reported to the originator, once completed.
    pub fn query_result(&self, id: QueryId) -> Option<&[Match]> {
        self.completed.get(&id).map(|v| v.as_slice())
    }

    /// Drops per-query bookkeeping (long experiments call this after
    /// sampling a query's stats).
    pub fn forget_query(&mut self, id: QueryId) {
        self.queries.remove(&id);
        self.completed.remove(&id);
        self.truth.remove(&id);
    }

    /// Kills `id` abruptly (no goodbye messages — the paper's ungraceful
    /// departure). In-flight messages to it are dropped on delivery.
    pub fn kill(&mut self, id: NodeId) {
        if self.nodes.remove(&id).is_some() {
            self.obs.emit(|| Event::NodeCrashed { at: self.now, node: id });
        }
        self.unindex(id);
    }

    /// Crashes `id`: like [`kill`](Self::kill), but the identity and
    /// attribute values are remembered so [`restart`](Self::restart) can
    /// bring the machine back. No-op if `id` is not alive.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(n) = self.nodes.remove(&id) {
            self.crashed.insert(id, n.selection.point().clone());
            self.unindex(id);
            self.obs.emit(|| Event::NodeCrashed { at: self.now, node: id });
        }
    }

    /// Restarts a crashed node under its old identity and attribute values
    /// with *empty* protocol state (pending queries and the duplicate-
    /// suppression set died with the process). Returns whether a restart
    /// happened (false if `id` was not crashed).
    pub fn restart(&mut self, id: NodeId) -> bool {
        let Some(point) = self.crashed.remove(&id) else { return false };
        self.insert_node(id, point);
        self.obs.emit(|| Event::NodeRestarted { at: self.now, node: id });
        true
    }

    /// Ids of currently crashed (restartable) nodes, ascending.
    pub fn crashed_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.crashed.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Kills a uniformly random fraction `f` of nodes at once (§6.7).
    /// Returns how many died.
    pub fn kill_fraction(&mut self, f: f64) -> usize {
        let mut ids = self.sorted_ids.clone();
        let n = ((ids.len() as f64) * f.clamp(0.0, 1.0)).round() as usize;
        for _ in 0..n {
            let i = self.rng.gen_range(0..ids.len());
            let id = ids.swap_remove(i);
            self.kill(id);
        }
        n
    }

    /// One churn step (§6.6): a fraction `f` of nodes leave ungracefully and
    /// the same number re-enter *under fresh identities* at new uniform
    /// positions drawn from `placement`.
    pub fn churn_step(&mut self, f: f64, placement: &Placement) {
        let died = self.kill_fraction(f);
        for i in 0..died {
            let point = placement.draw(&self.space, i, &mut self.rng);
            self.add_node(point);
        }
    }

    /// Point-in-time health reading of both gossip layers across the alive
    /// population: `(random, semantic)`. Complements the per-round
    /// [`Event::GossipRound`] stream with an on-demand aggregate that needs
    /// no observer installed. Empty readings (gossip disabled) are all-zero.
    pub fn gossip_health(&self) -> (GossipHealth, GossipHealth) {
        let mut out = [GossipHealth::default(), GossipHealth::default()];
        for &id in &self.sorted_ids {
            let Some(g) = self.nodes[&id].gossip.as_ref() else { continue };
            for (h, view) in out.iter_mut().zip([g.random_view(), g.semantic_view()]) {
                h.nodes += 1;
                h.links += view.len() as u64;
                h.age_sum_x1000 += view.mean_age_x1000();
                h.turnover += view.turnover();
            }
        }
        let [random, semantic] = out;
        (random, semantic)
    }

    /// Per-node dispatched-message counts (Fig. 9's load metric).
    pub fn load_histogram(&self) -> LoadHistogram {
        LoadHistogram::new(self.nodes.values().map(|n| n.sent).collect())
    }

    /// Resets per-node message counters (between measurement windows).
    pub fn reset_load(&mut self) {
        for n in self.nodes.values_mut() {
            n.sent = 0;
            n.received = 0;
        }
    }

    /// Per-node routing-table link counts (Fig. 10's metric).
    pub fn link_histogram(&self) -> LoadHistogram {
        LoadHistogram::new(
            self.nodes
                .values()
                .map(|n| n.selection.routing().link_count() as u64)
                .collect(),
        )
    }

    /// Link counts as a *gossip-bounded* node would report them: the
    /// `neighborsZero` contribution is capped by the remaining gossip-cache
    /// capacity (the paper's footnote 4: "for d < 5 the number of neighbors
    /// maintained by each node is bounded by the gossip cache"). Oracle
    /// wiring stores the full `C0` membership for delivery exactness; this
    /// view reports what a live deployment would maintain.
    pub fn link_histogram_cache_bounded(&self, cache: usize) -> LoadHistogram {
        LoadHistogram::new(
            self.nodes
                .values()
                .map(|n| {
                    let slots = n.selection.routing().slot_count();
                    let zero = n.selection.routing().zero_count();
                    (slots + zero.min(cache.saturating_sub(slots))) as u64
                })
                .collect(),
        )
    }

    /// Total duplicate query receipts across all nodes and queries (the §6
    /// correctness claim is that this is always zero without churn).
    pub fn total_duplicates(&self) -> u64 {
        self.queries.values().map(|q| q.duplicates).sum()
    }

    /// In-flight query records summed over all alive nodes — zero once
    /// every query has drained (the leak metric of the invariant checker).
    pub fn pending_total(&self) -> usize {
        self.nodes.values().map(|n| n.selection.pending_len()).sum()
    }

    /// Total `T(q)` timeout expirations fired across all alive nodes —
    /// how much of the traversal was rescued by timeouts rather than
    /// replies (always zero on a fault-free static run).
    pub fn timeouts_fired_total(&self) -> u64 {
        self.nodes.values().map(|n| n.selection.timeouts_fired()).sum()
    }

    /// Number of events currently queued — a cheap backlog gauge for
    /// fixed-interval timeline sampling (soak harness); a runaway reading
    /// means deliveries are being scheduled faster than they drain.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Ids of all tracked (issued and not forgotten) queries, ascending.
    pub fn tracked_queries(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self.queries.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Iterates tracked query stats (internal: invariant checking).
    pub(crate) fn queries_iter(&self) -> impl Iterator<Item = (&QueryId, &QueryStats)> {
        self.queries.iter()
    }

    /// Iterates alive nodes' protocol state (internal: invariant checking).
    pub(crate) fn selections_iter(&self) -> impl Iterator<Item = (NodeId, &SelectionNode)> {
        self.nodes.iter().map(|(id, n)| (id, &n.selection))
    }

    /// Processes events until the queue is empty (static experiments) —
    /// queries run to completion, no gossip is pending.
    ///
    /// # Panics
    ///
    /// Panics if gossip is enabled (the gossip tick makes the queue
    /// perpetual; use [`run_until`](Self::run_until) instead).
    pub fn run_to_quiescence(&mut self) {
        assert!(
            !self.config.gossip_enabled,
            "gossip keeps the queue non-empty; use run_until"
        );
        while let Some(ev) = self.queue.pop() {
            self.now = self.now.max(ev.at);
            self.dispatch(ev.kind);
        }
    }

    /// Processes events with firing time ≤ `t`, then advances the clock to
    /// `t`.
    pub fn run_until(&mut self, t: u64) {
        while let Some(at) = self.queue.peek_at() {
            if at > t {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = self.now.max(ev.at);
            self.dispatch(ev.kind);
        }
        self.now = self.now.max(t);
    }

    /// [`run_to_quiescence`](Self::run_to_quiescence) with `checker`'s
    /// step invariants asserted after *every* dispatched event and its
    /// quiescence invariants (no leaked pending state, completion) at the
    /// end.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found; the cluster is left at the
    /// violating instant for post-mortem inspection.
    ///
    /// # Panics
    ///
    /// Panics if gossip is enabled (see
    /// [`run_to_quiescence`](Self::run_to_quiescence)).
    pub fn run_to_quiescence_checked(
        &mut self,
        checker: &mut InvariantChecker,
    ) -> Result<(), InvariantViolation> {
        assert!(
            !self.config.gossip_enabled,
            "gossip keeps the queue non-empty; use run_until_checked"
        );
        while let Some(ev) = self.queue.pop() {
            self.now = self.now.max(ev.at);
            self.dispatch(ev.kind);
            checker.check_step(self)?;
        }
        checker.check_quiescent(self)
    }

    /// [`run_until`](Self::run_until) with `checker`'s step invariants
    /// asserted after every dispatched event (quiescence invariants are
    /// *not* checked — the queue is generally non-empty at `t`).
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    pub fn run_until_checked(
        &mut self,
        t: u64,
        checker: &mut InvariantChecker,
    ) -> Result<(), InvariantViolation> {
        while let Some(at) = self.queue.peek_at() {
            if at > t {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = self.now.max(ev.at);
            self.dispatch(ev.kind);
            checker.check_step(self)?;
        }
        self.now = self.now.max(t);
        checker.check_step(self)
    }

    /// Runs `checker`'s step invariants against the current state — the
    /// hook for drivers that interleave their own mutations between run
    /// calls.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    pub fn check_invariants(
        &self,
        checker: &mut InvariantChecker,
    ) -> Result<(), InvariantViolation> {
        checker.check_step(self)
    }

    // ------------------------------------------------------------------
    // Exploration API: external control over the event queue.
    //
    // `dispatch` already tolerates *any* dispatch order — it advances the
    // clock with `now = now.max(ev.at)`, so dispatching a later-scheduled
    // event first simply models an adversarially slow network for the
    // others. These hooks expose that freedom to external schedulers and
    // to the `autosel-analyze` model checker without touching the default
    // calendar-queue hot path (whose digests are pinned).
    // ------------------------------------------------------------------

    /// Snapshot of every queued event, ascending `(at, seq)`: index 0 is
    /// what [`run_to_quiescence`](Self::run_to_quiescence) would dispatch
    /// next. `seq` handles are only valid until the queue next changes;
    /// [`EventKey`]s are stable across re-executions of the same scenario.
    pub fn queued_events(&self) -> Vec<QueuedEvent> {
        let mut out: Vec<QueuedEvent> = self
            .queue
            .iter()
            .map(|ev| QueuedEvent { at: ev.at, seq: ev.seq, key: EventKey::of(ev) })
            .collect();
        out.sort_unstable_by_key(|e| (e.at, e.seq));
        out
    }

    /// Removes the event with handle `seq` from the queue (O(queue) — the
    /// exploration scenarios this serves are a handful of nodes).
    fn take_queued(&mut self, seq: u64) -> Option<ScheduledEvent> {
        self.queue.remove_seq(seq)
    }

    /// Dispatches the queued event with handle `seq` *now*, regardless of
    /// its position in the default order. Returns `false` if no queued
    /// event has that handle. Virtual time never rewinds: a dispatched
    /// event fires at `max(now, its scheduled time)`.
    pub fn dispatch_queued(&mut self, seq: u64) -> bool {
        let Some(ev) = self.take_queued(seq) else { return false };
        self.now = self.now.max(ev.at);
        self.dispatch(ev.kind);
        true
    }

    /// Silently discards the queued event with handle `seq` — a targeted
    /// message loss (choice-point form of the fault plan's random drop).
    /// Returns whether anything was removed.
    pub fn drop_queued(&mut self, seq: u64) -> bool {
        self.take_queued(seq).is_some()
    }

    /// Enqueues a second copy of the event with handle `seq` at the same
    /// firing time — a targeted duplication. Returns the copy's handle,
    /// or `None` if `seq` is not queued. The copy shares the original's
    /// [`EventKey`].
    pub fn duplicate_queued(&mut self, seq: u64) -> Option<u64> {
        let (at, kind) = {
            let ev = self.queue.find_seq(seq)?;
            (ev.at, ev.kind.clone())
        };
        self.seq += 1;
        let copy = self.seq;
        self.queue.push(ScheduledEvent { at, seq: copy, kind });
        Some(copy)
    }

    /// FNV-1a digest of everything that determines the cluster's future
    /// behaviour *and* its invariant verdicts: virtual time, every node's
    /// [`SelectionNode::state_fingerprint`], the queue's logical contents,
    /// and all tracked query accounting. Two states with equal hashes
    /// behave identically under identical further choices — the pruning
    /// predicate of the `autosel-analyze` explorer.
    ///
    /// Deliberately excluded: raw `seq` numbers (schedule-dependent names
    /// for the same logical events) and the RNG (exploration scenarios —
    /// constant latency, no fault plan, no gossip — draw nothing from it
    /// after setup; anything else would make equal hashes meaningless).
    pub fn state_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = Fnv64::new();
        h.word(self.now);
        h.word(self.sorted_ids.len() as u64);
        for &id in &self.sorted_ids {
            let n = &self.nodes[&id];
            h.word(id);
            h.word(n.selection.state_fingerprint());
            h.word(n.next_poll);
        }
        let mut crashed: Vec<NodeId> = self.crashed.keys().copied().collect();
        crashed.sort_unstable();
        h.word(crashed.len() as u64);
        for id in crashed {
            h.word(id);
        }
        let mut queued: Vec<(u64, EventKey)> =
            self.queue.iter().map(|e| (e.at, EventKey::of(e))).collect();
        queued.sort_unstable();
        h.word(queued.len() as u64);
        for (at, key) in queued {
            h.word(at);
            let mut kh = autosel_core::fasthash::FastHasher::default();
            key.hash(&mut kh);
            h.word(kh.finish());
        }
        let mut qids: Vec<QueryId> = self.queries.keys().copied().collect();
        qids.sort_unstable();
        h.word(qids.len() as u64);
        for qid in qids {
            let st = &self.queries[&qid];
            h.word(qid.origin);
            h.word(u64::from(qid.seq));
            h.word(st.issued_at);
            h.word(u64::from(st.truth));
            h.word(st.sigma.map_or(u64::MAX, u64::from));
            h.word(st.overhead);
            h.word(st.duplicates);
            h.word(st.messages);
            h.word(u64::from(st.completed));
            h.word(st.completed_at.map_or(u64::MAX, |t| t));
            h.word(u64::from(st.reported));
            for set in [&st.matched_reached, &st.receivers] {
                let mut ids: Vec<NodeId> = set.iter().copied().collect();
                ids.sort_unstable();
                h.word(ids.len() as u64);
                for id in ids {
                    h.word(id);
                }
            }
        }
        h.finish()
    }

    /// Runs to quiescence with `scheduler` picking every dispatch (the
    /// pluggable replacement for the heap's fixed `(at, seq)` tie-break).
    /// Stops when the queue drains or the scheduler returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if gossip is enabled (see
    /// [`run_to_quiescence`](Self::run_to_quiescence)), or if the
    /// scheduler returns a handle that is not queued.
    pub fn run_to_quiescence_with<S: Scheduler>(&mut self, scheduler: &mut S) {
        assert!(
            !self.config.gossip_enabled,
            "gossip keeps the queue non-empty; use run_until"
        );
        loop {
            let queued = self.queued_events();
            if queued.is_empty() {
                break;
            }
            let Some(seq) = scheduler.next(&queued) else { break };
            assert!(self.dispatch_queued(seq), "scheduler returned unknown handle {seq}");
        }
    }

    /// Direct mutable access to one node's protocol state machine.
    ///
    /// Test-harness plumbing (mutation hooks, hand-crafted state setups) —
    /// not part of the simulation API proper; the simulator owns these
    /// nodes and production drivers must go through messages.
    #[doc(hidden)]
    pub fn selection_mut(&mut self, id: NodeId) -> Option<&mut SelectionNode> {
        self.nodes.get_mut(&id).map(|n| &mut n.selection)
    }

    fn schedule(&mut self, at: u64, kind: EventKind) {
        self.seq += 1;
        self.queue.push(ScheduledEvent { at, seq: self.seq, kind });
    }

    fn send(&mut self, from: NodeId, to: NodeId, payload: Payload) {
        if let Some(n) = self.nodes.get_mut(&from) {
            n.sent += 1;
        }
        if let Payload::Protocol(msg) = &payload {
            if let Some(stats) = self.queries.get_mut(&msg.query_id()) {
                stats.messages += 1;
            }
        }
        let Some(base) = self.config.latency.sample_link(from, to, &mut self.rng) else {
            return; // lost by the latency model
        };
        let protocol = matches!(payload, Payload::Protocol(_));
        // The single fault-injection boundary: the plan turns one send into
        // zero (dropped / partitioned), one, or several (duplicated)
        // deliveries, each with its own delay.
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        self.faults
            .deliveries_into(self.now, from, to, protocol, base, &mut self.rng, &mut deliveries);
        match deliveries.first() {
            None => {}
            Some(&first)
                if protocol && self.config.fail_fast_dead_links && !self.nodes.contains_key(&to) =>
            {
                // Dead destination: the connection attempt fails after one
                // latency sample and the sender skips the broken link.
                self.schedule(self.now + first, EventKind::SendFailed { node: from, peer: to });
            }
            Some(_) => {
                for &d in &deliveries {
                    self.schedule(
                        self.now + d,
                        EventKind::Deliver { from, to, payload: payload.clone() },
                    );
                }
            }
        }
        self.delivery_scratch = deliveries;
    }

    fn apply_outputs(&mut self, from: NodeId, outputs: Vec<Output>) {
        for o in outputs {
            match o {
                Output::Send { to, msg } => {
                    self.send(from, to, Payload::Protocol(Arc::new(msg)));
                }
                Output::Completed { id, matches, count } => {
                    if let Some(stats) = self.queries.get_mut(&id) {
                        stats.completed = true;
                        stats.completed_at = Some(self.now);
                        stats.reported = count as u32;
                    }
                    self.completed.insert(id, matches);
                }
                Output::NeighborFailed(peer) => {
                    if let Some(n) = self.nodes.get_mut(&from) {
                        if let Some(g) = n.gossip.as_mut() {
                            g.evict(peer);
                        }
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Deliver { from, to, payload } => {
                if !self.nodes.contains_key(&to) {
                    return; // dead receiver: message dropped (§6.6)
                }
                match payload {
                    Payload::Protocol(msg) => {
                        self.record_receipt(to, &msg);
                        let node = self.nodes.get_mut(&to).expect("alive");
                        node.received += 1;
                        // Sole owner in the common (non-duplicated) case:
                        // unwrap without copying.
                        let msg = Arc::try_unwrap(msg).unwrap_or_else(|a| (*a).clone());
                        let outputs = node.selection.handle_message(from, msg, self.now);
                        self.apply_outputs(to, outputs);
                        // Ensure a timeout poll is scheduled for new waits.
                        self.schedule_timeout_poll(to);
                    }
                    Payload::Gossip(msg) => {
                        let node = self.nodes.get_mut(&to).expect("alive");
                        let Some(stack) = node.gossip.as_mut() else { return };
                        let msg = Arc::try_unwrap(msg).unwrap_or_else(|a| (*a).clone());
                        let replies = stack.handle(from, msg, &mut self.rng);
                        // Routing tables follow the semantic view.
                        let view = stack.semantic_view().clone();
                        node.selection.sync_from_view(&view, self.now, &mut self.rng);
                        for (dst, m) in replies {
                            self.send(to, dst, Payload::Gossip(Arc::new(m)));
                        }
                    }
                }
            }
            EventKind::GossipTick { node } => {
                let Some(n) = self.nodes.get_mut(&node) else { return };
                let Some(stack) = n.gossip.as_mut() else { return };
                let msgs = stack.tick(self.now, &mut self.rng);
                let view = stack.semantic_view().clone();
                n.selection.sync_from_view(&view, self.now, &mut self.rng);
                let period = self.config.gossip.period_ms;
                for (dst, m) in msgs {
                    self.send(node, dst, Payload::Gossip(Arc::new(m)));
                }
                self.schedule(self.now + period, EventKind::GossipTick { node });
            }
            EventKind::PollTimeouts { node } => {
                let Some(n) = self.nodes.get_mut(&node) else { return };
                n.next_poll = u64::MAX;
                let outputs = n.selection.poll_timeouts(self.now);
                if let Some(at) = n.selection.next_timeout() {
                    let at = at.max(self.now + 1);
                    n.next_poll = at;
                    self.schedule(at, EventKind::PollTimeouts { node });
                }
                self.apply_outputs(node, outputs);
            }
            EventKind::SendFailed { node, peer } => {
                let Some(n) = self.nodes.get_mut(&node) else { return };
                if let Some(g) = n.gossip.as_mut() {
                    g.evict(peer);
                }
                let outputs = n.selection.peer_unreachable(peer, self.now);
                self.apply_outputs(node, outputs);
                // Skipping the dead subtree may have re-forwarded the query
                // to fresh peers with fresh deadlines.
                self.schedule_timeout_poll(node);
            }
            EventKind::NodeFault { node, kind } => match kind {
                NodeEventKind::Crash => self.crash(node),
                NodeEventKind::Restart => {
                    self.restart(node);
                }
            },
        }
    }

    /// Schedules a timeout poll covering `node`'s earliest reply deadline,
    /// if it is waiting on anyone. Called after every mutation that can add
    /// `waiting` entries — without this, a query whose replies are all
    /// lost would strand its pending state forever (the leak
    /// [`InvariantChecker`] exists to catch).
    fn schedule_timeout_poll(&mut self, node: NodeId) {
        let at = {
            let Some(n) = self.nodes.get_mut(&node) else { return };
            let Some(at) = n.selection.next_timeout() else { return };
            let at = at.max(self.now + 1);
            // An earlier-or-equal poll is already queued and will cover this
            // deadline (it reschedules itself) — skip the redundant event.
            if n.next_poll <= at {
                return;
            }
            n.next_poll = at;
            at
        };
        self.schedule(at, EventKind::PollTimeouts { node });
    }

    fn record_receipt(&mut self, to: NodeId, msg: &Message) {
        let Message::Query(q) = msg else { return };
        let Some(stats) = self.queries.get_mut(&q.id) else { return };
        let Some(query) = self.truth.get(&q.id) else { return };
        if !stats.receivers.insert(to) {
            stats.duplicates += 1;
            return;
        }
        let point = self.nodes[&to].selection.point();
        if query.matches(point) {
            stats.matched_reached.insert(to);
        } else {
            stats.overhead += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrspace::Query;

    fn space() -> Space {
        Space::uniform(3, 80, 3).unwrap()
    }

    #[test]
    fn static_query_full_delivery() {
        let s = space();
        let mut sim = SimCluster::new(s.clone(), SimConfig::fast_static(), 1);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 300);
        sim.wire_oracle();
        let q = Query::builder(&s).min("a0", 40).build().unwrap();
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, q, None);
        sim.run_to_quiescence();
        let st = sim.query_stats(qid).unwrap();
        assert!(st.completed);
        assert_eq!(st.delivery(), 1.0);
        assert_eq!(st.duplicates, 0);
        assert_eq!(st.reported, st.truth);
        assert!(st.truth > 50, "workload sanity");
    }

    #[test]
    fn sigma_limits_messages() {
        let s = space();
        let mut sim = SimCluster::new(s.clone(), SimConfig::fast_static(), 2);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 500);
        sim.wire_oracle();
        let q = Query::builder(&s).min("a0", 10).build().unwrap();
        let origin = sim.random_node();
        let unbounded = sim.issue_query(origin, q.clone(), None);
        sim.run_to_quiescence();
        let bounded = sim.issue_query(origin, q, Some(10));
        sim.run_to_quiescence();
        let mu = sim.query_stats(unbounded).unwrap().messages;
        let mb = sim.query_stats(bounded).unwrap().messages;
        assert!(sim.query_stats(bounded).unwrap().reported >= 10);
        assert!(mb * 3 < mu, "σ=10 used {mb} msgs vs {mu} unbounded");
    }

    #[test]
    fn kill_fraction_counts() {
        let s = space();
        let mut sim = SimCluster::new(s, SimConfig::fast_static(), 3);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 200);
        let died = sim.kill_fraction(0.5);
        assert_eq!(died, 100);
        assert_eq!(sim.len(), 100);
    }

    #[test]
    fn churn_preserves_population_and_refreshes_ids() {
        let s = space();
        let mut sim = SimCluster::new(s, SimConfig::default(), 4);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 100);
        let before: std::collections::HashSet<NodeId> =
            sim.node_ids().iter().copied().collect();
        sim.churn_step(0.1, &Placement::Uniform { lo: 0, hi: 80 });
        assert_eq!(sim.len(), 100);
        let after: std::collections::HashSet<NodeId> =
            sim.node_ids().iter().copied().collect();
        assert_eq!(after.difference(&before).count(), 10, "10 fresh identities");
    }

    #[test]
    fn gossip_converges_routing_tables() {
        let s = Space::uniform(2, 80, 2).unwrap();
        let mut cfg = SimConfig {
            latency: crate::LatencyModel::Constant { ms: 20 },
            ..SimConfig::default()
        };
        cfg.gossip.period_ms = 1_000;
        let mut sim = SimCluster::new(s.clone(), cfg, 5);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 60);
        sim.run_until(40_000); // 40 gossip rounds
        let q = Query::builder(&s).min("a0", 40).build().unwrap();
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, q, None);
        sim.run_until(sim.now() + 30_000);
        let st = sim.query_stats(qid).unwrap();
        assert!(
            st.delivery() > 0.9,
            "gossip-built routing reached only {:.2}", st.delivery()
        );
    }

    #[test]
    fn count_queries_report_exact_totals_cheaply() {
        let s = space();
        let mut sim = SimCluster::new(s.clone(), SimConfig::fast_static(), 8);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 400);
        sim.wire_oracle();
        let q = Query::builder(&s).min("a0", 40).build().unwrap();

        let origin = sim.random_node();
        let enumerate = sim.issue_query(origin, q.clone(), None);
        sim.run_to_quiescence();
        let full = sim.query_stats(enumerate).unwrap().reported;

        let count = sim.issue_count_query(origin, q);
        sim.run_to_quiescence();
        let st = sim.query_stats(count).unwrap();
        assert_eq!(st.reported, full, "count mode agrees with enumeration");
        assert!(sim.query_result(count).unwrap().is_empty(), "no match lists");
        assert_eq!(st.duplicates, 0);
    }

    /// A 3-node oracle-wired line with one in-flight query, for the
    /// exploration-API tests.
    fn explore_fixture() -> (SimCluster, QueryId) {
        let s = Space::uniform(2, 80, 3).unwrap();
        let mut sim = SimCluster::new(s.clone(), SimConfig::fast_static(), 7);
        for vals in [[5u64, 5], [70, 5], [70, 70]] {
            sim.add_node(s.point(&vals).unwrap());
        }
        sim.wire_oracle();
        let q = Query::builder(&s).min("a0", 60).build().unwrap();
        let qid = sim.issue_query(0, q, None);
        (sim, qid)
    }

    #[test]
    fn earliest_first_scheduler_reproduces_default_run() {
        let (mut a, qa) = explore_fixture();
        let (mut b, qb) = explore_fixture();
        a.run_to_quiescence();
        b.run_to_quiescence_with(&mut EarliestFirst);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(
            a.query_stats(qa).unwrap().fingerprint(),
            b.query_stats(qb).unwrap().fingerprint()
        );
    }

    #[test]
    fn queued_events_expose_stable_keys_and_handles() {
        let (sim, qid) = explore_fixture();
        let queued = sim.queued_events();
        assert!(!queued.is_empty());
        // The one interesting event: A's QUERY in flight to B.
        let deliver = queued.iter().find(|e| e.key.is_deliver()).expect("query in flight");
        assert_eq!(
            deliver.key,
            crate::EventKey::Deliver { from: 0, to: 1, query: Some(qid), reply: false, attempt: 1 }
        );
        assert_eq!(deliver.key.target(), 1);
        // Re-executing the same scenario yields the same keys even though
        // seq handles are an implementation detail.
        let (again, _) = explore_fixture();
        let keys: Vec<_> = sim.queued_events().iter().map(|e| e.key).collect();
        let keys2: Vec<_> = again.queued_events().iter().map(|e| e.key).collect();
        assert_eq!(keys, keys2);
    }

    #[test]
    fn dispatch_drop_duplicate_surgery() {
        let (mut sim, qid) = explore_fixture();
        let deliver =
            *sim.queued_events().iter().find(|e| e.key.is_deliver()).expect("query in flight");
        // Unknown handles are refused.
        assert!(!sim.dispatch_queued(u64::MAX));
        assert!(sim.duplicate_queued(u64::MAX).is_none());
        // Duplicate: the copy shares the key, and dropping the original
        // still leaves the copy deliverable.
        let copy = sim.duplicate_queued(deliver.seq).expect("queued");
        assert_ne!(copy, deliver.seq);
        assert!(sim.drop_queued(deliver.seq));
        assert!(!sim.drop_queued(deliver.seq), "already removed");
        assert!(sim.dispatch_queued(copy));
        sim.run_to_quiescence();
        let st = sim.query_stats(qid).unwrap();
        assert!(st.completed, "query survives drop of a duplicated delivery");
    }

    #[test]
    fn state_hash_tracks_logical_state_not_history() {
        let (sim, _) = explore_fixture();
        let (other, _) = explore_fixture();
        assert_eq!(sim.state_hash(), other.state_hash(), "identical builds hash equal");
        let mut done = explore_fixture().0;
        done.run_to_quiescence();
        assert_ne!(sim.state_hash(), done.state_hash(), "progress changes the hash");
    }

    #[test]
    fn load_and_link_histograms_cover_all_nodes() {
        let s = space();
        let mut sim = SimCluster::new(s.clone(), SimConfig::fast_static(), 6);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 100);
        sim.wire_oracle();
        let q = Query::builder(&s).build().unwrap();
        let origin = sim.random_node();
        sim.issue_query(origin, q, None);
        sim.run_to_quiescence();
        assert_eq!(sim.load_histogram().len(), 100);
        assert!(sim.load_histogram().max() > 0);
        assert!(sim.link_histogram().mean() > 1.0);
        sim.reset_load();
        assert_eq!(sim.load_histogram().max(), 0);
    }
}
