//! Dense `NodeId`-indexed storage for per-node simulator state.
//!
//! Simulator node ids are handed out contiguously from zero (`next_id`)
//! and restarts reuse the crashed node's id, so the id space is a dense
//! prefix of the naturals for the cluster's whole lifetime. A
//! `Vec<Option<T>>` indexed by id therefore replaces the former
//! `FastMap<NodeId, SimNode>`: lookups on the per-event hot path drop the
//! hash and probe sequence for one bounds-checked offset, and a million
//! nodes sit in one contiguous allocation instead of a hash table's
//! bucket spine (no per-entry key storage, no load-factor slack).
//!
//! Iteration order is ascending id — deterministic by construction, unlike
//! the seeded-but-arbitrary FastMap order. The only order-sensitive
//! consumers (`LoadHistogram::new`) sort internally, so this is
//! observation-equivalent; everything digest-pinned orders by `sorted_ids`
//! already.

use epigossip::NodeId;

pub(crate) struct NodeStore<T> {
    slots: Vec<Option<T>>,
    alive: usize,
}

impl<T> Default for NodeStore<T> {
    fn default() -> Self {
        NodeStore { slots: Vec::new(), alive: 0 }
    }
}

impl<T> NodeStore<T> {
    pub(crate) fn len(&self) -> usize {
        self.alive
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.alive == 0
    }

    pub(crate) fn contains_key(&self, id: &NodeId) -> bool {
        self.get(id).is_some()
    }

    pub(crate) fn get(&self, id: &NodeId) -> Option<&T> {
        self.slots.get(*id as usize).and_then(Option::as_ref)
    }

    pub(crate) fn get_mut(&mut self, id: &NodeId) -> Option<&mut T> {
        self.slots.get_mut(*id as usize).and_then(Option::as_mut)
    }

    pub(crate) fn insert(&mut self, id: NodeId, value: T) -> Option<T> {
        let idx = id as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let prev = self.slots[idx].replace(value);
        if prev.is_none() {
            self.alive += 1;
        }
        prev
    }

    pub(crate) fn remove(&mut self, id: &NodeId) -> Option<T> {
        let gone = self.slots.get_mut(*id as usize).and_then(Option::take);
        if gone.is_some() {
            self.alive -= 1;
        }
        gone
    }

    /// Occupied entries ascending by id.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as NodeId, v)))
    }

    pub(crate) fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    pub(crate) fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }
}

impl<T> std::ops::Index<&NodeId> for NodeStore<T> {
    type Output = T;

    fn index(&self, id: &NodeId) -> &T {
        self.get(id).expect("indexed node alive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: NodeStore<&'static str> = NodeStore::default();
        assert!(s.is_empty());
        assert_eq!(s.insert(3, "c"), None);
        assert_eq!(s.insert(0, "a"), None);
        assert_eq!(s.len(), 2);
        assert!(s.contains_key(&3));
        assert!(!s.contains_key(&1));
        assert_eq!(s.get(&0), Some(&"a"));
        assert_eq!(s.insert(0, "a2"), Some("a"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(&0), Some("a2"));
        assert_eq!(s.remove(&0), None);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&999), None);
    }

    #[test]
    fn iterates_ascending_by_id() {
        let mut s: NodeStore<u32> = NodeStore::default();
        for id in [5u64, 1, 9, 2] {
            s.insert(id, id as u32 * 10);
        }
        s.remove(&9);
        let pairs: Vec<_> = s.iter().map(|(id, &v)| (id, v)).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (5, 50)]);
        assert_eq!(s.values().count(), 3);
    }
}
