//! Node placements and query generators reproducing the paper's workloads.

use attrspace::{BucketIndex, Point, Query, Region, Space};
use rand::Rng;

/// How node attribute values are drawn when populating a cluster.
#[derive(Debug, Clone)]
pub enum Placement {
    /// Every attribute uniformly random in `[lo, hi)` — the paper's default
    /// (`[0, 80]`, §6.4).
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Exclusive upper bound.
        hi: u64,
    },
    /// A hotspot: every attribute normally distributed around `center` with
    /// `stddev`, clamped to `[0, max)` — the paper's skewed configuration
    /// ("hotspot around coordinate (60, 60, …, 60) … standard deviation of
    /// 10", §6.4).
    Normal {
        /// The hotspot coordinate, per attribute.
        center: f64,
        /// Standard deviation.
        stddev: f64,
        /// Exclusive upper clamp.
        max: u64,
    },
    /// Externally supplied attribute vectors (e.g. synthesized BOINC traces),
    /// consumed round-robin.
    Trace(
        /// One value vector per node.
        Vec<Vec<u64>>,
    ),
}

impl Placement {
    /// Draws the attribute vector for the `i`-th node.
    ///
    /// # Panics
    ///
    /// Panics if a trace vector has the wrong arity or the trace is empty.
    pub fn draw<R: Rng + ?Sized>(&self, space: &Space, i: usize, rng: &mut R) -> Point {
        let vals: Vec<u64> = match self {
            Placement::Uniform { lo, hi } => {
                (0..space.dims()).map(|_| rng.gen_range(*lo..*hi)).collect()
            }
            Placement::Normal { center, stddev, max } => (0..space.dims())
                .map(|_| {
                    let v = center + stddev * standard_normal(rng);
                    (v.round().max(0.0) as u64).min(max.saturating_sub(1))
                })
                .collect(),
            Placement::Trace(rows) => {
                assert!(!rows.is_empty(), "empty trace");
                rows[i % rows.len()].clone()
            }
        };
        space.point(&vals).expect("placement arity matches space")
    }
}

/// A standard-normal sample via the Box–Muller transform (keeps `rand` the
/// only randomness dependency).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Splits a target selectivity `f` into per-dimension bucket counts whose
/// product of fractions approximates `f` under uniform placement.
fn per_dim_extents(space: &Space, f: f64) -> Vec<BucketIndex> {
    let b = space.buckets_per_dim();
    let d = space.dims();
    let per = f.max(1e-9).powf(1.0 / d as f64);
    let mut extents: Vec<BucketIndex> = vec![((per * b as f64).round() as BucketIndex).clamp(1, b); d];
    // Greedy correction toward the target.
    let frac = |ext: &[BucketIndex]| -> f64 {
        ext.iter().map(|&e| e as f64 / b as f64).product()
    };
    for _ in 0..4 * d {
        let cur = frac(&extents);
        if cur < f {
            if let Some(e) = extents.iter_mut().find(|e| **e < b) {
                *e += 1;
                continue;
            }
        } else if cur > f {
            // Only shrink if it brings us closer.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..d {
                if extents[i] > 1 {
                    let mut t = extents.clone();
                    t[i] -= 1;
                    let nf = frac(&t);
                    if (nf - f).abs() < (cur - f).abs() {
                        best = Some((i, nf));
                        break;
                    }
                }
            }
            match best {
                Some((i, _)) => {
                    extents[i] -= 1;
                    continue;
                }
                None => break,
            }
        }
        break;
    }
    extents
}

/// The paper's **best-case** query (§6.2): a bucket-aligned box whose extent
/// per dimension is a power of two aligned at a multiple of itself, so the
/// whole query footprint is one dyadic block — satisfiable by a single cell
/// subtree of the traversal.
pub fn best_case_query<R: Rng + ?Sized>(space: &Space, f: f64, rng: &mut R) -> Query {
    let b = space.buckets_per_dim();
    let d = space.dims() as u32;
    let max_bits = d * u32::from(space.max_level());
    // Choose per-dimension dyadic exponents whose product of fractions is the
    // nearest power of two to `f`: total bits = round(log2(f · 2^(d·L))).
    let total_bits = ((f.max(f64::MIN_POSITIVE).log2() + f64::from(max_bits)).round())
        .clamp(0.0, f64::from(max_bits)) as u32;
    let base = total_bits / d;
    let extra = total_bits % d;
    let intervals: Vec<(BucketIndex, BucketIndex)> = (0..d)
        .map(|i| {
            // Tighter constraints go on the *earliest* dimensions: the
            // depth-first scan follows the subcell construction order
            // (dimension #0 first), so constraints on early dimensions are
            // pinned within the first hops and the rest of the traversal
            // stays inside Q — this ordering is what keeps the paper's
            // Fig. 6/8 overheads in single digits. (The `ablation` binary
            // quantifies the difference.)
            let e: BucketIndex = 1 << (base + u32::from(i >= d - extra));
            let slots = b / e;
            let start = rng.gen_range(0..slots) * e;
            (start, start + e - 1)
        })
        .collect();
    Query::from_bucket_region(space, &Region::new(intervals))
}

/// The paper's **worst-case** query (§6.2): a box straddling the top-level
/// split boundary in *every* dimension, so "every dimension and cell level
/// is represented" and the traversal must split maximally.
pub fn worst_case_query(space: &Space, f: f64) -> Query {
    let b = space.buckets_per_dim();
    let mid = b / 2;
    let intervals: Vec<(BucketIndex, BucketIndex)> = per_dim_extents(space, f)
        .into_iter()
        .map(|e| {
            // Center the extent on the top-level boundary (mid-1 | mid).
            let lo = mid.saturating_sub(e / 2 + e % 2);
            let hi = (lo + e - 1).min(b - 1);
            let lo = hi + 1 - e; // re-anchor if clamped
            (lo, hi)
        })
        .collect();
    Query::from_bucket_region(space, &Region::new(intervals))
}

/// A uniformly random bucket-aligned query with approximate selectivity `f`
/// (neither best- nor worst-case aligned) — used for the network-size and
/// dimension sweeps where the paper does not pin the query shape.
pub fn random_query<R: Rng + ?Sized>(space: &Space, f: f64, rng: &mut R) -> Query {
    let b = space.buckets_per_dim();
    let intervals: Vec<(BucketIndex, BucketIndex)> = per_dim_extents(space, f)
        .into_iter()
        .map(|e| {
            let start = rng.gen_range(0..=(b - e));
            (start, start + e - 1)
        })
        .collect();
    Query::from_bucket_region(space, &Region::new(intervals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> Space {
        Space::uniform(5, 80, 3).unwrap()
    }

    #[test]
    fn uniform_placement_in_bounds() {
        let s = space();
        let p = Placement::Uniform { lo: 0, hi: 80 };
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..100 {
            let pt = p.draw(&s, i, &mut rng);
            assert!(pt.values().iter().all(|&v| v < 80));
        }
    }

    #[test]
    fn normal_placement_clusters_near_center() {
        let s = space();
        let p = Placement::Normal { center: 60.0, stddev: 10.0, max: 80 };
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        let n = 2000;
        for i in 0..n {
            let pt = p.draw(&s, i, &mut rng);
            sum += pt.values()[0] as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 60.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn trace_placement_round_robins() {
        let s = Space::uniform(2, 80, 3).unwrap();
        let p = Placement::Trace(vec![vec![1, 2], vec![3, 4]]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.draw(&s, 0, &mut rng).values(), &[1, 2]);
        assert_eq!(p.draw(&s, 3, &mut rng).values(), &[3, 4]);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn selectivity_targets_are_approximated() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        for &f in &[0.015625, 0.125, 0.5, 1.0] {
            for q in [
                best_case_query(&s, f, &mut rng),
                worst_case_query(&s, f),
                random_query(&s, f, &mut rng),
            ] {
                let vol = q.region().volume() as f64;
                let total = (s.buckets_per_dim() as f64).powi(s.dims() as i32);
                let got = vol / total;
                assert!(
                    got >= f / 4.0 && got <= (f * 4.0).min(1.0),
                    "target {f} got {got} for {q}"
                );
            }
        }
    }

    #[test]
    fn best_case_is_dyadic() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let q = best_case_query(&s, 0.125, &mut rng);
            for &(lo, hi) in q.region().intervals() {
                let e = hi - lo + 1;
                assert!(e.is_power_of_two());
                assert_eq!(lo % e, 0, "aligned at multiple of extent");
            }
        }
    }

    #[test]
    fn worst_case_straddles_every_mid_boundary() {
        let s = space();
        for &f in &[0.125, 0.5] {
            let q = worst_case_query(&s, f);
            for &(lo, hi) in q.region().intervals() {
                assert!(lo < 4 && hi >= 4, "[{lo},{hi}] must straddle 3|4");
            }
        }
    }
}
