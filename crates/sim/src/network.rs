use rand::Rng;

/// Per-message network behaviour.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly `ms` milliseconds.
    Constant {
        /// The fixed delay.
        ms: u64,
    },
    /// Uniformly random delay in `[lo_ms, hi_ms]`.
    Uniform {
        /// Minimum delay.
        lo_ms: u64,
        /// Maximum delay (inclusive).
        hi_ms: u64,
    },
    /// Uniform delay plus i.i.d. message loss — for stress tests beyond the
    /// paper's drop-on-broken-link model.
    Lossy {
        /// Minimum delay.
        lo_ms: u64,
        /// Maximum delay (inclusive).
        hi_ms: u64,
        /// Probability in `[0,1]` that a message is silently dropped.
        loss: f64,
    },
}

impl LatencyModel {
    /// Samples a delivery delay, or `None` if the message is lost.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        match *self {
            LatencyModel::Constant { ms } => Some(ms),
            LatencyModel::Uniform { lo_ms, hi_ms } => Some(rng.gen_range(lo_ms..=hi_ms)),
            LatencyModel::Lossy { lo_ms, hi_ms, loss } => {
                if rng.gen_bool(loss.clamp(0.0, 1.0)) {
                    None
                } else {
                    Some(rng.gen_range(lo_ms..=hi_ms))
                }
            }
        }
    }

    /// The delay when the model is deterministic.
    ///
    /// # Panics
    ///
    /// Panics for non-constant models.
    pub fn sample_fixed(&self) -> u64 {
        match *self {
            LatencyModel::Constant { ms } => ms,
            _ => panic!("latency model is not deterministic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform { lo_ms: 5, hi_ms: 9 };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let d = m.sample(&mut rng).unwrap();
            assert!((5..=9).contains(&d));
        }
    }

    #[test]
    fn lossy_drops_roughly_at_rate() {
        let m = LatencyModel::Lossy { lo_ms: 1, hi_ms: 1, loss: 0.5 };
        let mut rng = StdRng::seed_from_u64(1);
        let lost = (0..2000).filter(|_| m.sample(&mut rng).is_none()).count();
        assert!((800..1200).contains(&lost), "lost {lost}/2000");
    }

    #[test]
    fn constant_is_fixed() {
        assert_eq!(LatencyModel::Constant { ms: 7 }.sample_fixed(), 7);
    }
}
