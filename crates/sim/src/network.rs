use epigossip::NodeId;
use rand::Rng;

/// Per-message network behaviour.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly `ms` milliseconds.
    Constant {
        /// The fixed delay.
        ms: u64,
    },
    /// Uniformly random delay in `[lo_ms, hi_ms]`.
    Uniform {
        /// Minimum delay.
        lo_ms: u64,
        /// Maximum delay (inclusive).
        hi_ms: u64,
    },
    /// Uniform delay plus i.i.d. message loss — for stress tests beyond the
    /// paper's drop-on-broken-link model.
    Lossy {
        /// Minimum delay.
        lo_ms: u64,
        /// Maximum delay (inclusive).
        hi_ms: u64,
        /// Probability in `[0,1]` that a message is silently dropped.
        loss: f64,
    },
    /// Heterogeneous per-region latency: node → region by `id % regions`,
    /// delay uniform in the `(lo, hi)` range at `matrix[from_region *
    /// regions + to_region]`. Models rack/region topology (the scenario
    /// engine's latency-matrix combinator compiles to this). Delays are
    /// sampled per *link* via [`Self::sample_link`]; the link-blind
    /// [`Self::sample`] falls back to the `(0, 0)` intra-region range.
    Regions {
        /// Number of regions (≥ 1).
        regions: u64,
        /// Flattened `regions × regions` rows of `(lo_ms, hi_ms)`.
        matrix: Vec<(u64, u64)>,
    },
}

impl LatencyModel {
    /// Samples a delivery delay, or `None` if the message is lost.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        match *self {
            LatencyModel::Constant { ms } => Some(ms),
            LatencyModel::Uniform { lo_ms, hi_ms } => Some(rng.gen_range(lo_ms..=hi_ms)),
            LatencyModel::Lossy { lo_ms, hi_ms, loss } => {
                if rng.gen_bool(loss.clamp(0.0, 1.0)) {
                    None
                } else {
                    Some(rng.gen_range(lo_ms..=hi_ms))
                }
            }
            LatencyModel::Regions { ref matrix, .. } => {
                let (lo, hi) = matrix[0];
                Some(if lo == hi { lo } else { rng.gen_range(lo..=hi) })
            }
        }
    }

    /// Samples the delay for one directed link. For every link-blind model
    /// this is *exactly* [`Self::sample`] — same RNG draws, so installing
    /// the link-aware delivery path changed no pinned digest. Only
    /// [`LatencyModel::Regions`] reads the endpoints.
    pub fn sample_link<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        to: NodeId,
        rng: &mut R,
    ) -> Option<u64> {
        match *self {
            LatencyModel::Regions { regions, ref matrix } => {
                let r = regions.max(1);
                let cell = ((from % r) * r + (to % r)) as usize;
                let (lo, hi) = matrix.get(cell).copied().unwrap_or((0, 0));
                Some(if lo == hi { lo } else { rng.gen_range(lo..=hi) })
            }
            _ => self.sample(rng),
        }
    }

    /// The delay when the model is deterministic.
    ///
    /// # Panics
    ///
    /// Panics for non-constant models.
    pub fn sample_fixed(&self) -> u64 {
        match *self {
            LatencyModel::Constant { ms } => ms,
            _ => panic!("latency model is not deterministic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform { lo_ms: 5, hi_ms: 9 };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let d = m.sample(&mut rng).unwrap();
            assert!((5..=9).contains(&d));
        }
    }

    #[test]
    fn lossy_drops_roughly_at_rate() {
        let m = LatencyModel::Lossy { lo_ms: 1, hi_ms: 1, loss: 0.5 };
        let mut rng = StdRng::seed_from_u64(1);
        let lost = (0..2000).filter(|_| m.sample(&mut rng).is_none()).count();
        assert!((800..1200).contains(&lost), "lost {lost}/2000");
    }

    #[test]
    fn constant_is_fixed() {
        assert_eq!(LatencyModel::Constant { ms: 7 }.sample_fixed(), 7);
    }

    #[test]
    fn sample_link_matches_sample_for_link_blind_models() {
        // Same seed, same draws: the link-aware path must not perturb the
        // RNG stream of any pre-existing model (pinned digests rely on it).
        for model in [
            LatencyModel::Constant { ms: 3 },
            LatencyModel::Uniform { lo_ms: 2, hi_ms: 40 },
            LatencyModel::Lossy { lo_ms: 2, hi_ms: 40, loss: 0.3 },
        ] {
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            for i in 0..200u64 {
                assert_eq!(model.sample(&mut a), model.sample_link(i, i + 1, &mut b));
            }
        }
    }

    #[test]
    fn regions_reads_the_directed_matrix_cell() {
        // 2 regions: intra fast and fixed, inter slow and jittered.
        let m = LatencyModel::Regions {
            regions: 2,
            matrix: vec![(1, 1), (80, 120), (80, 120), (2, 2)],
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.sample_link(0, 2, &mut rng), Some(1), "region 0 → 0");
        assert_eq!(m.sample_link(1, 3, &mut rng), Some(2), "region 1 → 1");
        for _ in 0..100 {
            let d = m.sample_link(0, 1, &mut rng).unwrap();
            assert!((80..=120).contains(&d), "inter-region delay {d}");
        }
        // Link-blind fallback uses the (0,0) cell.
        assert_eq!(m.sample(&mut rng), Some(1));
    }
}
