//! Protocol invariants, checked against a [`SimCluster`] after every event
//! and at quiescence.
//!
//! The paper's §6 correctness claims are *global* properties of the
//! traversal — exactly-once visits, bounded σ early-stop, no stranded
//! state — that individual nodes cannot observe. The simulator can: an
//! [`InvariantChecker`] walks the cluster's bookkeeping and every node's
//! protocol state and reports the first [`InvariantViolation`] it finds.
//!
//! Two strictness levels exist because faults legitimately weaken some
//! claims:
//!
//! * [`InvariantChecker::strict`] — for fault-free runs. Everything must
//!   hold: zero duplicate deliveries, every tracked query completes at
//!   quiescence, σ-bounded queries report at least `min(σ, truth)` and at
//!   most `truth` matches.
//! * [`InvariantChecker::relaxed`] — for runs under a
//!   [`FaultPlan`](crate::faults::FaultPlan). Duplicates, under-delivery
//!   and incompleteness are expected casualties of message loss, crashes
//!   and retries; what must *still* hold is monotone virtual time, acyclic
//!   reply routing, internally consistent stats, and — at quiescence — no
//!   leaked per-query state on any surviving node.
//!
//! Orthogonally to the strict/relaxed split, a checker can demand *exact
//! reporting*: every completed unbounded query must report exactly the
//! matches it reached (`reported == matched_reached`). Strict mode always
//! checks this; [`InvariantChecker::expect_exact_reporting`] turns it on
//! for a relaxed checker too, which is the right setting for fault plans
//! that duplicate or reorder messages but never lose them — attempt-tagged
//! replies guarantee exactly-once accounting there.
//!
//! Drive the checks with
//! [`SimCluster::run_to_quiescence_checked`](crate::SimCluster::run_to_quiescence_checked)
//! /
//! [`SimCluster::run_until_checked`](crate::SimCluster::run_until_checked),
//! or call [`SimCluster::check_invariants`](crate::SimCluster::check_invariants)
//! at hand-picked instants.

use autosel_core::fasthash::{FastMap, FastSet};
use autosel_core::QueryId;
use epigossip::NodeId;

use crate::SimCluster;

/// The first broken invariant a check found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Virtual time moved backwards between two checks.
    TimeWentBackwards {
        /// Time observed at the previous check.
        prev: u64,
        /// (Smaller) time observed now.
        now: u64,
    },
    /// A node received the same QUERY more than once (strict mode only —
    /// §6 claims exactly-once without churn).
    DuplicateDelivery {
        /// The affected query.
        query: QueryId,
        /// How many duplicate receipts were recorded.
        duplicates: u64,
    },
    /// A query reported more matches than existed at issue time.
    OverReported {
        /// The affected query.
        query: QueryId,
        /// Matches reported to the originator.
        reported: u32,
        /// Matching nodes at issue time.
        truth: u32,
    },
    /// A σ-bounded query completed with fewer than `min(σ, truth)` matches
    /// (early stop is only allowed *after* σ is satisfied).
    SigmaUnderfilled {
        /// The affected query.
        query: QueryId,
        /// The requested bound.
        sigma: u32,
        /// Matches reported.
        reported: u32,
        /// Matching nodes at issue time.
        truth: u32,
    },
    /// A query's stats disagree with themselves (e.g. a node counted as
    /// matched-and-reached that never received the query).
    InconsistentStats {
        /// The affected query.
        query: QueryId,
        /// What is inconsistent.
        detail: &'static str,
    },
    /// Following `reply_to` edges for one query revisits a node: replies
    /// would circulate forever instead of draining to the originator.
    ReplyCycle {
        /// The affected query.
        query: QueryId,
        /// A node on the cycle.
        node: NodeId,
    },
    /// A node still holds in-flight query state at quiescence.
    LeakedPending {
        /// The leaking node.
        node: NodeId,
        /// How many queries it still considers in flight.
        pending: usize,
    },
    /// A tracked query never completed although the run quiesced and its
    /// originator is alive (strict mode only).
    IncompleteQuery {
        /// The stranded query.
        query: QueryId,
    },
    /// An unbounded query completed reporting a different number of matches
    /// than it actually reached: duplication or reordering double-counted or
    /// dropped a subtree contribution (exact-reporting checks only).
    ReportedInexact {
        /// The affected query.
        query: QueryId,
        /// Matches reported to the originator.
        reported: u32,
        /// Matching nodes actually reached by the traversal.
        reached: u32,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::TimeWentBackwards { prev, now } => {
                write!(f, "virtual time went backwards: {prev} -> {now}")
            }
            InvariantViolation::DuplicateDelivery { query, duplicates } => {
                write!(f, "query {query:?} delivered {duplicates} duplicate(s); expected exactly-once")
            }
            InvariantViolation::OverReported { query, reported, truth } => {
                write!(f, "query {query:?} reported {reported} matches but only {truth} existed")
            }
            InvariantViolation::SigmaUnderfilled { query, sigma, reported, truth } => write!(
                f,
                "query {query:?} stopped at {reported} matches; σ={sigma} with {truth} available"
            ),
            InvariantViolation::InconsistentStats { query, detail } => {
                write!(f, "query {query:?} has inconsistent stats: {detail}")
            }
            InvariantViolation::ReplyCycle { query, node } => {
                write!(f, "query {query:?} reply routing cycles through node {node}")
            }
            InvariantViolation::LeakedPending { node, pending } => {
                write!(f, "node {node} leaked {pending} pending quer(ies) past quiescence")
            }
            InvariantViolation::IncompleteQuery { query } => {
                write!(f, "query {query:?} never completed although the run quiesced")
            }
            InvariantViolation::ReportedInexact { query, reported, reached } => write!(
                f,
                "query {query:?} reported {reported} matches but reached {reached}; accounting must be exact"
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Strict,
    Relaxed,
}

/// Stateful checker asserting the protocol's global invariants over a
/// [`SimCluster`] (see the module docs for the invariant list and the
/// strict/relaxed split).
#[derive(Debug)]
pub struct InvariantChecker {
    mode: Mode,
    exact_reporting: bool,
    last_now: u64,
}

impl InvariantChecker {
    /// Full-strength checks for fault-free runs (implies exact reporting).
    pub fn strict() -> Self {
        InvariantChecker { mode: Mode::Strict, exact_reporting: true, last_now: 0 }
    }

    /// Fault-tolerant checks: duplicates / under-delivery / incompleteness
    /// are permitted, structural invariants are not.
    pub fn relaxed() -> Self {
        InvariantChecker { mode: Mode::Relaxed, exact_reporting: false, last_now: 0 }
    }

    /// Additionally require `reported == matched_reached` for every
    /// completed unbounded query. Correct for fault plans that duplicate
    /// or reorder messages without losing them: delivery may still reach
    /// every matching node, and attempt-tagged replies make the upstream
    /// accounting exactly-once, so any drift is a protocol bug.
    pub fn expect_exact_reporting(mut self) -> Self {
        self.exact_reporting = true;
        self
    }

    /// Invariants that must hold after *every* event.
    pub fn check_step(&mut self, cluster: &SimCluster) -> Result<(), InvariantViolation> {
        let now = cluster.now();
        if now < self.last_now {
            return Err(InvariantViolation::TimeWentBackwards { prev: self.last_now, now });
        }
        self.last_now = now;

        for (qid, stats) in cluster.queries_iter() {
            if self.mode == Mode::Strict && stats.duplicates > 0 {
                return Err(InvariantViolation::DuplicateDelivery {
                    query: *qid,
                    duplicates: stats.duplicates,
                });
            }
            if !stats.matched_reached.is_subset(&stats.receivers) {
                return Err(InvariantViolation::InconsistentStats {
                    query: *qid,
                    detail: "matched_reached contains a node that never received the query",
                });
            }
            if self.exact_reporting && stats.completed && stats.sigma.is_none() {
                let reached = stats.matched_reached.len() as u32;
                if stats.reported != reached {
                    return Err(InvariantViolation::ReportedInexact {
                        query: *qid,
                        reported: stats.reported,
                        reached,
                    });
                }
            }
            if self.mode == Mode::Strict {
                // Churn/restart can add matching nodes after the truth
                // snapshot, so these bounds only hold fault-free.
                if stats.matched_reached.len() as u32 > stats.truth {
                    return Err(InvariantViolation::InconsistentStats {
                        query: *qid,
                        detail: "more matching nodes reached than existed at issue time",
                    });
                }
                if stats.completed {
                    if stats.reported > stats.truth {
                        return Err(InvariantViolation::OverReported {
                            query: *qid,
                            reported: stats.reported,
                            truth: stats.truth,
                        });
                    }
                    if let Some(sigma) = stats.sigma {
                        if stats.reported < sigma.min(stats.truth) {
                            return Err(InvariantViolation::SigmaUnderfilled {
                                query: *qid,
                                sigma,
                                reported: stats.reported,
                                truth: stats.truth,
                            });
                        }
                    }
                }
            }
        }

        self.check_reply_acyclicity(cluster)
    }

    /// Invariants that additionally hold once the event queue has drained.
    pub fn check_quiescent(&mut self, cluster: &SimCluster) -> Result<(), InvariantViolation> {
        self.check_step(cluster)?;
        for (id, node) in cluster.selections_iter() {
            let pending = node.pending_len();
            if pending > 0 {
                return Err(InvariantViolation::LeakedPending { node: id, pending });
            }
        }
        if self.mode == Mode::Strict {
            for (qid, stats) in cluster.queries_iter() {
                if !stats.completed && cluster.point_of(qid.origin).is_some() {
                    return Err(InvariantViolation::IncompleteQuery { query: *qid });
                }
            }
        }
        Ok(())
    }

    /// Stitches every node's per-query `reply_to` edge into a graph and
    /// walks each chain: replies must drain toward an originator, never
    /// loop. (Each node has at most one upstream per query, so a cycle is
    /// detectable by following the chain with a visited set.)
    fn check_reply_acyclicity(&self, cluster: &SimCluster) -> Result<(), InvariantViolation> {
        let mut upstream: FastMap<QueryId, FastMap<NodeId, Option<NodeId>>> = FastMap::default();
        for (id, node) in cluster.selections_iter() {
            for (qid, up) in node.pending_upstreams() {
                upstream.entry(qid).or_default().insert(id, up);
            }
        }
        for (qid, edges) in &upstream {
            for &start in edges.keys() {
                let mut seen: FastSet<NodeId> = FastSet::default();
                let mut cur = start;
                seen.insert(cur);
                while let Some(&Some(next)) = edges.get(&cur) {
                    if !seen.insert(next) {
                        return Err(InvariantViolation::ReplyCycle { query: *qid, node: next });
                    }
                    cur = next;
                }
            }
        }
        Ok(())
    }
}
