use autosel_core::fasthash::FastSet;

use epigossip::NodeId;

/// Everything the paper's figures need to know about one query's execution.
///
/// `PartialEq` compares every field — the determinism regression tests rely
/// on two same-seed runs producing *identical* stats, not just close ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryStats {
    /// Virtual time the query was issued.
    pub issued_at: u64,
    /// Number of nodes matching at issue time (alive ones).
    pub truth: u32,
    /// The `σ` bound the query was issued with, if any. Recorded so the
    /// invariant checker can assert early-stopped queries report at most a
    /// bounded excess over `σ`.
    pub sigma: Option<u32>,
    /// Matching nodes that actually received the QUERY message (plus the
    /// origin if it matched) — the numerator of the paper's *delivery*.
    pub matched_reached: FastSet<NodeId>,
    /// QUERY deliveries to nodes that did **not** match — the paper's
    /// *routing overhead* (§6: "hops traveled by a query through nodes that
    /// did not match the query themselves").
    pub overhead: u64,
    /// Times any node received this query more than once (must be 0; §6).
    pub duplicates: u64,
    /// Total protocol messages (queries + replies) attributed to this query.
    pub messages: u64,
    /// Whether the originator observed completion.
    pub completed: bool,
    /// Virtual time the originator observed completion, if it did.
    pub completed_at: Option<u64>,
    /// Matches reported to the originator at completion.
    pub reported: u32,
    /// Every node that received the QUERY message (for duplicate detection).
    pub(crate) receivers: FastSet<NodeId>,
}

impl QueryStats {
    pub(crate) fn new(issued_at: u64, truth: u32) -> Self {
        QueryStats {
            issued_at,
            truth,
            sigma: None,
            matched_reached: FastSet::default(),
            overhead: 0,
            duplicates: 0,
            messages: 0,
            completed: false,
            completed_at: None,
            reported: 0,
            receivers: FastSet::default(),
        }
    }

    /// Wall-clock (virtual) time from issue to completion, if completed.
    pub fn latency(&self) -> Option<u64> {
        self.completed_at.map(|t| t.saturating_sub(self.issued_at))
    }

    /// Fraction of matching nodes reached in `[0,1]`; `1.0` when nothing
    /// matched (vacuous delivery).
    pub fn delivery(&self) -> f64 {
        if self.truth == 0 {
            1.0
        } else {
            self.matched_reached.len() as f64 / f64::from(self.truth)
        }
    }

    /// One flat JSON object per query, hand-rolled (no serde in this tree).
    /// Sets are reduced to their cardinality; `delivery` and other ratios
    /// are left to the consumer so the object stays integer-only and
    /// byte-stable across platforms.
    pub fn to_json(&self) -> String {
        let mut w = autosel_obs::json::ObjectWriter::new();
        w.u64_field("issued_at", self.issued_at);
        w.u64_field("truth", u64::from(self.truth));
        match self.sigma {
            Some(s) => w.u64_field("sigma", u64::from(s)),
            None => w.null_field("sigma"),
        }
        w.u64_field("matched_reached", self.matched_reached.len() as u64);
        w.u64_field("overhead", self.overhead);
        w.u64_field("duplicates", self.duplicates);
        w.u64_field("messages", self.messages);
        w.bool_field("completed", self.completed);
        match self.completed_at {
            Some(t) => w.u64_field("completed_at", t),
            None => w.null_field("completed_at"),
        }
        match self.latency() {
            Some(l) => w.u64_field("latency_ms", l),
            None => w.null_field("latency_ms"),
        }
        w.u64_field("reported", u64::from(self.reported));
        w.u64_field("receivers", self.receivers.len() as u64);
        w.finish()
    }

    /// A canonical, byte-stable rendering of every field (sets are sorted).
    /// Two runs are byte-identical iff their fingerprints are equal — this is
    /// what the golden-determinism tests and `sweepbench`'s serial-vs-parallel
    /// check compare, because `Debug` on the inner `HashSet`s has no stable
    /// order.
    pub fn fingerprint(&self) -> String {
        let mut matched: Vec<NodeId> = self.matched_reached.iter().copied().collect();
        matched.sort_unstable();
        let mut receivers: Vec<NodeId> = self.receivers.iter().copied().collect();
        receivers.sort_unstable();
        format!(
            "issued={};truth={};sigma={:?};matched={:?};overhead={};dups={};msgs={};done={};done_at={:?};reported={};recv={:?}",
            self.issued_at,
            self.truth,
            self.sigma,
            matched,
            self.overhead,
            self.duplicates,
            self.messages,
            self.completed,
            self.completed_at,
            self.reported,
            receivers,
        )
    }
}

/// A histogram over per-node values (message counts, link counts) —
/// the shape of Figs. 9 and 10(b).
#[derive(Debug, Clone)]
pub struct LoadHistogram {
    values: Vec<u64>,
}

impl LoadHistogram {
    /// Wraps raw per-node values.
    pub fn new(mut values: Vec<u64>) -> Self {
        values.sort_unstable();
        LoadHistogram { values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.values.last().copied().unwrap_or(0)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<u64>() as f64 / self.values.len() as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.values.is_empty() {
            return 0;
        }
        let idx = ((self.values.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        self.values[idx]
    }

    /// Buckets observations into `bins` ranges of `bin_width` and returns
    /// the *percentage of nodes* per bin — the exact y-axis of Fig. 9.
    /// The last bin absorbs the tail.
    pub fn percent_per_bin(&self, bins: usize, bin_width: u64) -> Vec<f64> {
        assert!(bins > 0 && bin_width > 0, "bins and width must be positive");
        let mut counts = vec![0u64; bins];
        for &v in &self.values {
            let b = ((v / bin_width) as usize).min(bins - 1);
            counts[b] += 1;
        }
        let n = self.values.len().max(1) as f64;
        counts.into_iter().map(|c| 100.0 * c as f64 / n).collect()
    }

    /// Normalizes values to percent-of-max and bins them into ten 10%-wide
    /// buckets — Fig. 9's "number of messages per node (%)" x-axis.
    pub fn percent_of_max_deciles(&self) -> Vec<f64> {
        let max = self.max().max(1);
        let mut counts = [0u64; 10];
        for &v in &self.values {
            let pct = (v * 100) / max;
            let bin = ((pct.saturating_sub(1)) / 10).min(9) as usize;
            counts[bin] += 1;
        }
        let n = self.values.len().max(1) as f64;
        counts.iter().map(|&c| 100.0 * c as f64 / n).collect()
    }

    /// The raw sorted values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_handles_empty_truth() {
        let s = QueryStats::new(0, 0);
        assert_eq!(s.delivery(), 1.0);
        let mut s = QueryStats::new(0, 4);
        s.matched_reached.insert(1);
        s.matched_reached.insert(2);
        assert_eq!(s.delivery(), 0.5);
    }

    #[test]
    fn stats_json_is_flat_and_stable() {
        let mut s = QueryStats::new(7, 4);
        s.sigma = Some(2);
        s.matched_reached.insert(1);
        s.matched_reached.insert(2);
        s.receivers.insert(1);
        s.receivers.insert(2);
        s.receivers.insert(3);
        s.overhead = 1;
        s.messages = 9;
        s.completed = true;
        s.completed_at = Some(19);
        s.reported = 2;
        assert_eq!(
            s.to_json(),
            "{\"issued_at\":7,\"truth\":4,\"sigma\":2,\"matched_reached\":2,\
             \"overhead\":1,\"duplicates\":0,\"messages\":9,\"completed\":true,\
             \"completed_at\":19,\"latency_ms\":12,\"reported\":2,\"receivers\":3}"
        );
        // Incomplete query: the option fields serialize as null.
        let s = QueryStats::new(0, 0);
        let parsed = autosel_obs::json::parse_object(&s.to_json()).expect("valid JSON");
        assert!(matches!(parsed.get("sigma"), Some(autosel_obs::json::JsonValue::Null)));
        assert!(matches!(parsed.get("latency_ms"), Some(autosel_obs::json::JsonValue::Null)));
    }

    #[test]
    fn histogram_stats() {
        let h = LoadHistogram::new(vec![5, 1, 3, 1]);
        assert_eq!(h.len(), 4);
        assert_eq!(h.max(), 5);
        assert_eq!(h.mean(), 2.5);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 5);
    }

    #[test]
    fn percent_per_bin_sums_to_100() {
        let h = LoadHistogram::new((0..100).collect());
        let bins = h.percent_per_bin(10, 10);
        assert_eq!(bins.len(), 10);
        assert!((bins.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((bins[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deciles_capture_tail() {
        // One hot node, many cold ones: cold mass lands in the low deciles.
        let mut v = vec![100u64];
        v.extend(std::iter::repeat_n(5, 99));
        let h = LoadHistogram::new(v);
        let d = h.percent_of_max_deciles();
        assert!((d[0] - 99.0).abs() < 1e-9, "{d:?}");
        assert!((d[9] - 1.0).abs() < 1e-9);
    }
}
