//! Baselines for the §4.1 design ablations: the *naive greedy* routing the
//! paper rejects ("dramatic latency and traffic overheads") and Zorilla-style
//! *flooding* over an unstructured overlay (§2).
//!
//! These operate on plain point sets — no protocol machinery — and report the
//! same overhead/delivery metrics as [`QueryStats`](crate::QueryStats), so a
//! bench can put all three approaches side by side.

use std::collections::VecDeque;

use autosel_core::fasthash::FastSet;

use attrspace::{CellCoord, Point, Query, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Metrics of one baseline search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AblationStats {
    /// Total messages transmitted.
    pub messages: u64,
    /// Query deliveries to non-matching nodes (comparable to the paper's
    /// routing overhead).
    pub overhead: u64,
    /// Matching nodes reached.
    pub reached: usize,
    /// Matching nodes in the population.
    pub truth: usize,
}

impl AblationStats {
    /// Fraction of matching nodes reached.
    pub fn delivery(&self) -> f64 {
        if self.truth == 0 {
            1.0
        } else {
            self.reached as f64 / self.truth as f64
        }
    }
}

/// Zorilla-style flooding: each node keeps `fanout` random links; the query
/// floods the entire overlay (unstructured overlays cannot target a region).
pub fn flood_search(
    points: &[Point],
    query: &Query,
    fanout: usize,
    origin: usize,
    seed: u64,
) -> AblationStats {
    assert!(origin < points.len(), "origin out of range");
    let n = points.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let links: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            let mut out = FastSet::default();
            while out.len() < fanout.min(n.saturating_sub(1)) {
                let j = rng.gen_range(0..n);
                if j != i {
                    out.insert(j);
                }
            }
            out.into_iter().collect()
        })
        .collect();

    let matches: Vec<bool> = points.iter().map(|p| query.matches(p)).collect();
    let truth = matches.iter().filter(|&&m| m).count();

    let mut seen = vec![false; n];
    let mut messages = 0u64;
    let mut overhead = 0u64;
    let mut reached = 0usize;
    let mut queue = VecDeque::from([origin]);
    seen[origin] = true;
    if matches[origin] {
        reached += 1;
    }
    while let Some(u) = queue.pop_front() {
        for &v in &links[u] {
            messages += 1;
            if seen[v] {
                continue; // duplicate receipt: pure waste
            }
            seen[v] = true;
            if matches[v] {
                reached += 1;
            } else {
                overhead += 1;
            }
            queue.push_back(v);
        }
    }
    AblationStats { messages, overhead, reached, truth }
}

/// The naive design of §4.1: every node links only to its most immediate
/// neighbor *per dimension* (predecessor and successor in attribute order).
/// A query is routed greedily toward the region, then spread along in-region
/// links. Without the hierarchical `N(l,k)` links the approach pays long
/// greedy walks and still cannot enumerate the region reliably.
pub fn greedy_coordinate_search(
    space: &Space,
    points: &[Point],
    query: &Query,
    origin: usize,
) -> AblationStats {
    let n = points.len();
    assert!(origin < n, "origin out of range");
    let coords: Vec<CellCoord> = points.iter().map(|p| space.cell_coord(p)).collect();
    let matches: Vec<bool> = points.iter().map(|p| query.matches(p)).collect();
    let truth = matches.iter().filter(|&&m| m).count();

    // Per-dimension value order: predecessor/successor links.
    let d = space.dims();
    let mut links: Vec<FastSet<usize>> = vec![FastSet::default(); n];
    for dim in 0..d {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (points[i].values()[dim], i));
        for w in order.windows(2) {
            links[w[0]].insert(w[1]);
            links[w[1]].insert(w[0]);
        }
    }

    let region = query.region();
    let dist = |i: usize| -> u64 {
        coords[i]
            .indices()
            .iter()
            .zip(region.intervals())
            .map(|(&c, &(lo, hi))| {
                if c < lo {
                    u64::from(lo - c)
                } else if c > hi {
                    u64::from(c - hi)
                } else {
                    0
                }
            })
            .sum()
    };

    let mut messages = 0u64;
    let mut overhead = 0u64;
    let mut reached = 0usize;
    let mut seen = vec![false; n];
    seen[origin] = true;
    if matches[origin] {
        reached += 1;
    } else if dist(origin) > 0 {
        // origin outside region, not counted as overhead (it issued it)
    }

    // Phase 1: greedy descent to the region.
    let mut cur = origin;
    while dist(cur) > 0 {
        let next = links[cur]
            .iter()
            .copied()
            .min_by_key(|&v| (dist(v), v))
            .filter(|&v| dist(v) < dist(cur));
        let Some(v) = next else {
            // Stuck in a local minimum: the search fails before reaching Q.
            return AblationStats { messages, overhead, reached, truth };
        };
        messages += 1;
        if !seen[v] {
            seen[v] = true;
            if matches[v] {
                reached += 1;
            } else {
                overhead += 1;
            }
        }
        cur = v;
    }

    // Phase 2: spread along links whose endpoints stay in the region.
    let mut queue = VecDeque::from([cur]);
    while let Some(u) = queue.pop_front() {
        for &v in &links[u] {
            if dist(v) > 0 {
                continue;
            }
            messages += 1;
            if seen[v] {
                continue;
            }
            seen[v] = true;
            if matches[v] {
                reached += 1;
            } else {
                overhead += 1;
            }
            queue.push_back(v);
        }
    }
    AblationStats { messages, overhead, reached, truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Placement;

    fn setup(n: usize, seed: u64) -> (Space, Vec<Point>) {
        let space = Space::uniform(3, 80, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let placement = Placement::Uniform { lo: 0, hi: 80 };
        let points = (0..n).map(|i| placement.draw(&space, i, &mut rng)).collect();
        (space, points)
    }

    #[test]
    fn flood_reaches_everything_at_high_cost() {
        let (space, points) = setup(300, 1);
        let query = Query::builder(&space).min("a0", 40).build().unwrap();
        let s = flood_search(&points, &query, 6, 0, 9);
        assert!(s.delivery() > 0.99, "flooding reaches all: {}", s.delivery());
        // Flooding touches (nearly) every node regardless of selectivity.
        assert!(s.messages as usize >= points.len(), "{} msgs", s.messages);
        assert!(s.overhead as usize > points.len() / 4);
    }

    #[test]
    fn greedy_walk_pays_long_paths() {
        let (space, points) = setup(400, 2);
        // A narrow query far from most nodes.
        let query = Query::builder(&space)
            .min("a0", 60)
            .min("a1", 60)
            .min("a2", 60)
            .build()
            .unwrap();
        let s = greedy_coordinate_search(&space, &points, &query, 0);
        assert!(s.truth > 0);
        // Either it fails to reach the region or pays a long walk.
        assert!(
            s.delivery() < 1.0 || s.overhead > 3,
            "delivery {} overhead {}",
            s.delivery(),
            s.overhead
        );
    }

    #[test]
    fn stats_delivery_vacuous() {
        let s = AblationStats { messages: 0, overhead: 0, reached: 0, truth: 0 };
        assert_eq!(s.delivery(), 1.0);
    }
}
