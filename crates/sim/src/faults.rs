//! Seeded, composable fault injection for [`SimCluster`](crate::SimCluster).
//!
//! A [`FaultPlan`] is a declarative description of everything that can go
//! wrong on the simulated network: per-message faults (drop, delay,
//! duplication, reordering) scoped to links, nodes or protocol layers and
//! gated on virtual-time windows; network partitions that heal; and timed
//! node crashes with optional restarts. The plan is consulted by the
//! cluster at its single delivery boundary (the internal `send` of
//! [`SimCluster`](crate::SimCluster) — every message, protocol and gossip
//! alike, funnels through it), so faults
//! compose with the [`LatencyModel`](crate::LatencyModel) instead of
//! replacing it.
//!
//! All randomness is drawn from the cluster's own seeded RNG: the same
//! seed and the same plan replay the exact same fault schedule, which is
//! what makes failing runs reproducible (see `docs/TESTING.md`).
//!
//! # Example
//!
//! ```
//! use overlay_sim::faults::{FaultPlan, Window};
//!
//! let plan = FaultPlan::new()
//!     .drop_all(0.05)                        // 5% uniform loss, forever
//!     .delay_window(Window::new(2_000, 6_000), 1.0, 50, 200)
//!     .crash(4_000, 7)                       // node 7 dies at t=4s…
//!     .restart(9_000, 7);                    // …and rejoins at t=9s
//! assert!(!plan.is_quiet());
//! ```

use std::collections::BTreeSet;

use epigossip::NodeId;
use rand::Rng;

/// A half-open virtual-time interval `[from, until)` gating a fault rule or
/// partition. `until = u64::MAX` means "never heals".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant (inclusive) the fault is active.
    pub from: u64,
    /// First instant (exclusive) the fault is over.
    pub until: u64,
}

impl Window {
    /// The whole timeline.
    pub const ALWAYS: Window = Window { from: 0, until: u64::MAX };

    /// A window `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `from > until`.
    pub fn new(from: u64, until: u64) -> Self {
        assert!(from <= until, "window ends before it starts");
        Window { from, until }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: u64) -> bool {
        self.from <= t && t < self.until
    }
}

/// Which messages a [`FaultRule`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Every message.
    All,
    /// Only messages on the directed link `from → to`.
    Link {
        /// Sender side of the faulty link.
        from: NodeId,
        /// Receiver side of the faulty link.
        to: NodeId,
    },
    /// Any message sent *or* received by this node (a flaky machine).
    Node(NodeId),
    /// QUERY/REPLY traffic only (gossip unaffected).
    Protocol,
    /// Membership gossip only (protocol unaffected).
    Gossip,
}

impl Scope {
    fn matches(&self, from: NodeId, to: NodeId, protocol: bool) -> bool {
        match *self {
            Scope::All => true,
            Scope::Link { from: f, to: t } => f == from && t == to,
            Scope::Node(n) => n == from || n == to,
            Scope::Protocol => protocol,
            Scope::Gossip => !protocol,
        }
    }
}

/// The effect a matching [`FaultRule`] applies to a message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Drop the message with probability `p`.
    Drop {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// With probability `p`, add a uniform extra delay in `[lo, hi]` ms on
    /// top of the latency model's sample.
    Delay {
        /// Probability the delay applies.
        p: f64,
        /// Minimum extra delay (ms).
        lo: u64,
        /// Maximum extra delay (ms).
        hi: u64,
    },
    /// With probability `p`, deliver `copies` extra copies of the message —
    /// the direct violation of the paper's exactly-once claim, caught by
    /// [`InvariantChecker::strict`](crate::InvariantChecker::strict).
    Duplicate {
        /// Probability the duplication applies.
        p: f64,
        /// Extra deliveries beyond the original.
        copies: u32,
    },
    /// With probability `p`, jitter the message by an independent uniform
    /// delay in `[0, window]` ms, breaking FIFO ordering between messages
    /// on the same link.
    Reorder {
        /// Probability the jitter applies.
        p: f64,
        /// Maximum jitter (ms).
        window: u64,
    },
}

fn check_probability(p: f64) {
    assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
}

/// One scoped, windowed fault: *when* ([`Window`]) × *what traffic*
/// ([`Scope`]) × *what happens* ([`Action`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// When the rule is active.
    pub window: Window,
    /// Which messages it applies to.
    pub scope: Scope,
    /// What it does to them.
    pub action: Action,
}

/// A network partition: while `window` is active, messages crossing the
/// boundary between `island` and the rest of the network are dropped
/// (both directions). Messages within the island — and within the
/// remainder — flow normally. The partition heals when the window closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// When the partition holds.
    pub window: Window,
    /// The nodes on one side of the split.
    pub island: BTreeSet<NodeId>,
}

impl Partition {
    fn severs(&self, t: u64, from: NodeId, to: NodeId) -> bool {
        self.window.contains(t) && (self.island.contains(&from) != self.island.contains(&to))
    }
}

/// What happens to a node at a [`NodeEvent`]'s firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEventKind {
    /// The node dies abruptly: no goodbye messages, in-flight messages to
    /// it are dropped, its protocol state is lost.
    Crash,
    /// A previously crashed node rejoins under the *same identity* at its
    /// old attribute values, with empty protocol state (the paper's node
    /// recovery, as opposed to churn's fresh identities). No-op if the
    /// node is not currently crashed.
    Restart,
}

/// A timed crash or restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeEvent {
    /// Virtual time the event fires.
    pub at: u64,
    /// The affected node.
    pub node: NodeId,
    /// Crash or restart.
    pub kind: NodeEventKind,
}

/// A composable description of every fault to inject into a run.
///
/// Build one with the fluent constructors, then install it with
/// [`SimCluster::set_fault_plan`](crate::SimCluster::set_fault_plan)
/// *before* issuing queries. Rules apply in insertion order; each message
/// is tested against every active rule, so e.g. a drop rule and a delay
/// rule both scoped to the same link compose naturally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    partitions: Vec<Partition>,
    node_events: Vec<NodeEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.rules.is_empty() && self.partitions.is_empty() && self.node_events.is_empty()
    }

    /// Adds an arbitrary rule (escape hatch for combinations the fluent
    /// constructors don't cover).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        let (Action::Drop { p }
        | Action::Delay { p, .. }
        | Action::Duplicate { p, .. }
        | Action::Reorder { p, .. }) = rule.action;
        check_probability(p);
        self.rules.push(rule);
        self
    }

    /// Uniform message loss with probability `p`, forever, all traffic.
    pub fn drop_all(self, p: f64) -> Self {
        self.rule(FaultRule { window: Window::ALWAYS, scope: Scope::All, action: Action::Drop { p } })
    }

    /// Message loss on the directed link `from → to`.
    pub fn drop_link(self, from: NodeId, to: NodeId, p: f64) -> Self {
        self.rule(FaultRule {
            window: Window::ALWAYS,
            scope: Scope::Link { from, to },
            action: Action::Drop { p },
        })
    }

    /// Message loss on everything sent or received by `node`.
    pub fn drop_node(self, node: NodeId, p: f64) -> Self {
        self.rule(FaultRule {
            window: Window::ALWAYS,
            scope: Scope::Node(node),
            action: Action::Drop { p },
        })
    }

    /// Message loss limited to a time window, all traffic.
    pub fn drop_window(self, window: Window, p: f64) -> Self {
        self.rule(FaultRule { window, scope: Scope::All, action: Action::Drop { p } })
    }

    /// Extra delay of `[lo, hi]` ms with probability `p`, forever.
    pub fn delay_all(self, p: f64, lo: u64, hi: u64) -> Self {
        self.delay_window(Window::ALWAYS, p, lo, hi)
    }

    /// Extra delay limited to a time window.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn delay_window(self, window: Window, p: f64, lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "delay range is inverted");
        self.rule(FaultRule { window, scope: Scope::All, action: Action::Delay { p, lo, hi } })
    }

    /// Duplicates protocol messages (`copies` extra deliveries) with
    /// probability `p` — the canonical exactly-once violation.
    pub fn duplicate_protocol(self, p: f64, copies: u32) -> Self {
        self.rule(FaultRule {
            window: Window::ALWAYS,
            scope: Scope::Protocol,
            action: Action::Duplicate { p, copies },
        })
    }

    /// FIFO-breaking jitter of up to `window_ms` with probability `p`.
    pub fn reorder_all(self, p: f64, window_ms: u64) -> Self {
        self.rule(FaultRule {
            window: Window::ALWAYS,
            scope: Scope::All,
            action: Action::Reorder { p, window: window_ms },
        })
    }

    /// Splits `island` from the rest of the network for `window`.
    pub fn partition<I: IntoIterator<Item = NodeId>>(mut self, window: Window, island: I) -> Self {
        self.partitions.push(Partition { window, island: island.into_iter().collect() });
        self
    }

    /// Crashes `node` at virtual time `at`.
    pub fn crash(mut self, at: u64, node: NodeId) -> Self {
        self.node_events.push(NodeEvent { at, node, kind: NodeEventKind::Crash });
        self
    }

    /// Restarts `node` (previously crashed) at virtual time `at`.
    pub fn restart(mut self, at: u64, node: NodeId) -> Self {
        self.node_events.push(NodeEvent { at, node, kind: NodeEventKind::Restart });
        self
    }

    /// The plan's timed crash/restart events (scheduled by the cluster
    /// when the plan is installed).
    pub fn node_events(&self) -> &[NodeEvent] {
        &self.node_events
    }

    /// Resolves one message against the plan: given the latency model's
    /// `base` delay, returns the relative delay of every copy to deliver.
    /// Empty means the message was dropped (or partitioned away); more
    /// than one entry means it was duplicated.
    #[cfg(test)]
    pub(crate) fn deliveries<R: Rng + ?Sized>(
        &self,
        now: u64,
        from: NodeId,
        to: NodeId,
        protocol: bool,
        base: u64,
        rng: &mut R,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        self.deliveries_into(now, from, to, protocol, base, rng, &mut out);
        out
    }

    /// [`Self::deliveries`] writing into a caller-owned buffer, so the
    /// per-message hot path ([`crate::SimCluster`]'s `send`) reuses one
    /// allocation for the life of the run.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn deliveries_into<R: Rng + ?Sized>(
        &self,
        now: u64,
        from: NodeId,
        to: NodeId,
        protocol: bool,
        base: u64,
        rng: &mut R,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        if self.partitions.iter().any(|p| p.severs(now, from, to)) {
            return;
        }
        out.push(base);
        for rule in &self.rules {
            if !rule.window.contains(now) || !rule.scope.matches(from, to, protocol) {
                continue;
            }
            match rule.action {
                Action::Drop { p } => {
                    if rng.gen_bool(p) {
                        out.clear();
                        return;
                    }
                }
                Action::Delay { p, lo, hi } => {
                    if rng.gen_bool(p) {
                        let extra = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
                        for d in out.iter_mut() {
                            *d += extra;
                        }
                    }
                }
                Action::Duplicate { p, copies } => {
                    if rng.gen_bool(p) {
                        // Copies trail the original by distinct offsets so
                        // they arrive as separate deliveries.
                        out.extend((1..=u64::from(copies)).map(|c| base + c));
                    }
                }
                Action::Reorder { p, window } => {
                    for d in out.iter_mut() {
                        if rng.gen_bool(p) {
                            *d += rng.gen_range(0..=window);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quiet_plan_passes_messages_through() {
        let plan = FaultPlan::new();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(plan.is_quiet());
        assert_eq!(plan.deliveries(0, 1, 2, true, 25, &mut rng), vec![25]);
    }

    #[test]
    fn drop_all_certain_loss_drops_everything() {
        let plan = FaultPlan::new().drop_all(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for t in 0..50 {
            assert!(plan.deliveries(t, 0, 1, true, 10, &mut rng).is_empty());
        }
    }

    #[test]
    fn windows_gate_rules() {
        let plan = FaultPlan::new().drop_window(Window::new(100, 200), 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(plan.deliveries(99, 0, 1, true, 5, &mut rng), vec![5]);
        assert!(plan.deliveries(100, 0, 1, true, 5, &mut rng).is_empty());
        assert!(plan.deliveries(199, 0, 1, true, 5, &mut rng).is_empty());
        assert_eq!(plan.deliveries(200, 0, 1, true, 5, &mut rng), vec![5]);
    }

    #[test]
    fn scopes_select_traffic() {
        let mut rng = StdRng::seed_from_u64(4);
        let link = FaultPlan::new().drop_link(3, 4, 1.0);
        assert!(link.deliveries(0, 3, 4, true, 1, &mut rng).is_empty());
        assert_eq!(link.deliveries(0, 4, 3, true, 1, &mut rng), vec![1], "directed");
        assert_eq!(link.deliveries(0, 3, 5, true, 1, &mut rng), vec![1]);

        let node = FaultPlan::new().drop_node(7, 1.0);
        assert!(node.deliveries(0, 7, 1, true, 1, &mut rng).is_empty());
        assert!(node.deliveries(0, 1, 7, false, 1, &mut rng).is_empty());
        assert_eq!(node.deliveries(0, 1, 2, true, 1, &mut rng), vec![1]);

        let gossip_only = FaultPlan::new().rule(FaultRule {
            window: Window::ALWAYS,
            scope: Scope::Gossip,
            action: Action::Drop { p: 1.0 },
        });
        assert_eq!(gossip_only.deliveries(0, 1, 2, true, 1, &mut rng), vec![1]);
        assert!(gossip_only.deliveries(0, 1, 2, false, 1, &mut rng).is_empty());
    }

    #[test]
    fn duplication_produces_extra_copies() {
        let plan = FaultPlan::new().duplicate_protocol(1.0, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let d = plan.deliveries(0, 0, 1, true, 10, &mut rng);
        assert_eq!(d, vec![10, 11, 12]);
        // Gossip is out of scope for duplicate_protocol.
        assert_eq!(plan.deliveries(0, 0, 1, false, 10, &mut rng), vec![10]);
    }

    #[test]
    fn delay_adds_within_bounds() {
        let plan = FaultPlan::new().delay_all(1.0, 50, 60);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let d = plan.deliveries(0, 0, 1, true, 10, &mut rng);
            assert_eq!(d.len(), 1);
            assert!((60..=70).contains(&d[0]), "delayed to {}", d[0]);
        }
    }

    #[test]
    fn partition_severs_across_but_not_within() {
        let plan = FaultPlan::new().partition(Window::new(0, 1_000), [1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(plan.deliveries(500, 1, 9, true, 1, &mut rng).is_empty());
        assert!(plan.deliveries(500, 9, 2, true, 1, &mut rng).is_empty());
        assert_eq!(plan.deliveries(500, 1, 2, true, 1, &mut rng), vec![1], "within island");
        assert_eq!(plan.deliveries(500, 8, 9, true, 1, &mut rng), vec![1], "within mainland");
        assert_eq!(plan.deliveries(1_000, 1, 9, true, 1, &mut rng), vec![1], "healed");
    }

    #[test]
    fn rules_compose_in_order() {
        // Delay then duplicate: copies trail the *base*, the original is
        // delayed — both effects visible at once.
        let plan = FaultPlan::new().delay_all(1.0, 100, 100).duplicate_protocol(1.0, 1);
        let mut rng = StdRng::seed_from_u64(8);
        let d = plan.deliveries(0, 0, 1, true, 10, &mut rng);
        assert_eq!(d, vec![110, 11]);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probability_is_rejected() {
        let _ = FaultPlan::new().drop_all(1.5);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let plan = FaultPlan::new().drop_all(0.3).delay_all(0.5, 10, 90).reorder_all(0.2, 40);
        let run = |seed: u64| -> Vec<Vec<u64>> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200u64).map(|t| plan.deliveries(t, t % 7, t % 5, t % 2 == 0, 20, &mut rng)).collect()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds diverge somewhere");
    }
}
