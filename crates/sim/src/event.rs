use std::cmp::Ordering;
use std::sync::Arc;

use autosel_core::Message;
use autosel_core::NodeProfile;
use epigossip::{GossipMessage, NodeId};

use crate::faults::NodeEventKind;

/// A payload in flight between two nodes. `Arc`-backed so that scheduling a
/// delivery (or a fault-injected duplicate) is a refcount bump instead of a
/// deep clone of the message body; the receiver unwraps the sole reference
/// at dispatch time without copying.
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    Protocol(Arc<Message>),
    Gossip(Arc<GossipMessage<NodeProfile>>),
}

/// A scheduled simulator event.
#[derive(Debug, Clone)]
pub(crate) enum EventKind {
    /// Deliver `payload` from `from` to `to`.
    Deliver { from: NodeId, to: NodeId, payload: Payload },
    /// Let `node` initiate its periodic gossip (self-rescheduling).
    GossipTick { node: NodeId },
    /// Check `node`'s protocol timeouts.
    PollTimeouts { node: NodeId },
    /// Tell `node` that its send to `peer` failed (dead destination) — the
    /// fail-fast transport feedback of a refused connection.
    SendFailed { node: NodeId, peer: NodeId },
    /// A timed crash or restart from the installed fault plan.
    NodeFault { node: NodeId, kind: NodeEventKind },
}

/// An event with its firing time and a tiebreaking sequence number so the
/// queue is a total, deterministic order.
#[derive(Debug)]
pub(crate) struct ScheduledEvent {
    pub at: u64,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Stable, *schedule-independent* identity of a queued event.
///
/// Sequence numbers are assigned in scheduling order, so the same logical
/// event (deliver B's reply for query q, attempt 2) gets a different `seq`
/// on every explored interleaving. A model checker needs to recognise "the
/// same choice" across executions — for sleep sets, for replaying a
/// recorded schedule, for minimizing a failing one — so delivery events
/// are keyed by their protocol-level identity (endpoints, query, direction,
/// attempt tag) and timer/fault events by node and firing time.
///
/// Two *duplicate* copies of one message deliberately share a key: they are
/// interchangeable for the protocol, and the explorer treats dispatching
/// either as the same choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKey {
    /// Deliver a protocol message. `query` is `None` for gossip payloads
    /// (never explored — the explorer requires gossip disabled).
    Deliver {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// The query the message belongs to (`None` for gossip).
        query: Option<autosel_core::QueryId>,
        /// `true` for a REPLY, `false` for a QUERY.
        reply: bool,
        /// The attempt tag carried by the message.
        attempt: u32,
    },
    /// A gossip self-tick.
    GossipTick {
        /// The ticking node.
        node: NodeId,
    },
    /// A `T(q)` timeout poll.
    PollTimeouts {
        /// The polled node.
        node: NodeId,
        /// The poll's firing time (distinguishes successive polls).
        at: u64,
    },
    /// Fail-fast feedback for a send to a dead peer.
    SendFailed {
        /// The sender being notified.
        node: NodeId,
        /// The dead destination.
        peer: NodeId,
    },
    /// A timed crash (`restart == false`) or restart from a fault plan.
    NodeFault {
        /// The affected node.
        node: NodeId,
        /// Whether this is a restart (else a crash).
        restart: bool,
        /// The scheduled firing time.
        at: u64,
    },
}

impl EventKey {
    pub(crate) fn of(ev: &ScheduledEvent) -> EventKey {
        match &ev.kind {
            EventKind::Deliver { from, to, payload } => {
                let (query, reply, attempt) = match payload {
                    Payload::Protocol(msg) => match msg.as_ref() {
                        Message::Query(q) => (Some(q.id), false, q.attempt),
                        Message::Reply(r) => (Some(r.id), true, r.attempt),
                    },
                    Payload::Gossip(_) => (None, false, 0),
                };
                EventKey::Deliver { from: *from, to: *to, query, reply, attempt }
            }
            EventKind::GossipTick { node } => EventKey::GossipTick { node: *node },
            EventKind::PollTimeouts { node } => {
                EventKey::PollTimeouts { node: *node, at: ev.at }
            }
            EventKind::SendFailed { node, peer } => {
                EventKey::SendFailed { node: *node, peer: *peer }
            }
            EventKind::NodeFault { node, kind } => EventKey::NodeFault {
                node: *node,
                restart: matches!(kind, NodeEventKind::Restart),
                at: ev.at,
            },
        }
    }

    /// The node whose state this event mutates when dispatched — the
    /// dependence relation for partial-order reduction: two queued events
    /// commute iff they target different nodes (each dispatch touches only
    /// the target's protocol state plus append-only global accounting).
    pub fn target(&self) -> NodeId {
        match *self {
            EventKey::Deliver { to, .. } => to,
            EventKey::GossipTick { node }
            | EventKey::PollTimeouts { node, .. }
            | EventKey::SendFailed { node, .. }
            | EventKey::NodeFault { node, .. } => node,
        }
    }

    /// Whether this is a message delivery (the choice points a model
    /// checker reorders; timers and faults are time-driven).
    pub fn is_deliver(&self) -> bool {
        matches!(self, EventKey::Deliver { .. })
    }
}

/// A snapshot descriptor of one event sitting in the simulator queue,
/// exposed to external schedulers ([`crate::Scheduler`]) and the
/// `autosel-analyze` explorer. `seq` is the handle for
/// [`crate::SimCluster::dispatch_queued`] and friends *within the current
/// state*; `key` is the stable identity that survives re-execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedEvent {
    /// Scheduled firing time (virtual ms).
    pub at: u64,
    /// Queue-order tiebreak and dispatch handle (schedule-dependent).
    pub seq: u64,
    /// Stable logical identity (schedule-independent).
    pub key: EventKey,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(at: u64, seq: u64) -> ScheduledEvent {
        ScheduledEvent { at, seq, kind: EventKind::PollTimeouts { node: 0 } }
    }

    #[test]
    fn heap_pops_earliest_first_with_fifo_ties() {
        let mut h = BinaryHeap::new();
        h.push(ev(5, 0));
        h.push(ev(1, 2));
        h.push(ev(1, 1));
        h.push(ev(3, 3));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| h.pop().map(|e| (e.at, e.seq))).collect();
        assert_eq!(order, vec![(1, 1), (1, 2), (3, 3), (5, 0)]);
    }
}
