use std::cmp::Ordering;
use std::sync::Arc;

use autosel_core::Message;
use autosel_core::NodeProfile;
use epigossip::{GossipMessage, NodeId};

use crate::faults::NodeEventKind;

/// A payload in flight between two nodes. `Arc`-backed so that scheduling a
/// delivery (or a fault-injected duplicate) is a refcount bump instead of a
/// deep clone of the message body; the receiver unwraps the sole reference
/// at dispatch time without copying.
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    Protocol(Arc<Message>),
    Gossip(Arc<GossipMessage<NodeProfile>>),
}

/// A scheduled simulator event.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver `payload` from `from` to `to`.
    Deliver { from: NodeId, to: NodeId, payload: Payload },
    /// Let `node` initiate its periodic gossip (self-rescheduling).
    GossipTick { node: NodeId },
    /// Check `node`'s protocol timeouts.
    PollTimeouts { node: NodeId },
    /// Tell `node` that its send to `peer` failed (dead destination) — the
    /// fail-fast transport feedback of a refused connection.
    SendFailed { node: NodeId, peer: NodeId },
    /// A timed crash or restart from the installed fault plan.
    NodeFault { node: NodeId, kind: NodeEventKind },
}

/// An event with its firing time and a tiebreaking sequence number so the
/// queue is a total, deterministic order.
#[derive(Debug)]
pub(crate) struct ScheduledEvent {
    pub at: u64,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(at: u64, seq: u64) -> ScheduledEvent {
        ScheduledEvent { at, seq, kind: EventKind::PollTimeouts { node: 0 } }
    }

    #[test]
    fn heap_pops_earliest_first_with_fifo_ties() {
        let mut h = BinaryHeap::new();
        h.push(ev(5, 0));
        h.push(ev(1, 2));
        h.push(ev(1, 1));
        h.push(ev(3, 3));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| h.pop().map(|e| (e.at, e.seq))).collect();
        assert_eq!(order, vec![(1, 1), (1, 2), (3, 3), (5, 0)]);
    }
}
