//! A bucketed calendar queue over virtual time — the simulator's event
//! queue at million-node scale.
//!
//! The classic calendar-queue idea (Brown 1988): hash events into
//! fixed-width time buckets ("days") arranged in a ring (a "year"), serve
//! the bucket the clock is in, and keep an overflow list for events beyond
//! the ring's horizon. Insertion and extraction are O(1) amortized instead
//! of the binary heap's O(log n) — and, unlike a heap, the structure never
//! moves cold events around, so a million queued gossip ticks cost nothing
//! until their day arrives.
//!
//! **Determinism contract.** [`CalendarQueue`] pops events in *exactly*
//! ascending `(at, seq)` order — the same total order the previous
//! `BinaryHeap<ScheduledEvent>` produced. The argument:
//!
//! * every event sits in the bucket of its own day (`at >> BUCKET_SHIFT`);
//!   nothing is ever clamped into a wrong day. Pushes carry `at ≥ now`, and
//!   the cursor rewinds (with horizon repair) when a driver schedules
//!   behind it — e.g. issuing a query while only a far-future gossip tick
//!   is queued — so the serving day never exceeds the earliest queued day;
//! * buckets are served in day order, and any event in a later day has a
//!   strictly larger `at` than every event of an earlier day;
//! * within the serving bucket, events are sorted by `(at, seq)` — a total
//!   order, since `seq` is unique — lazily, once, when the bucket comes up
//!   for service; later insertions into a sorted serving bucket go through
//!   an order-preserving binary-search insert.
//!
//! Ties on `at` therefore pop in scheduling (`seq`) order, byte-identical
//! to the heap's reversed `(at, seq)` comparator, which is what keeps the
//! pinned sweepbench digests and the golden-determinism fingerprints
//! unchanged across the swap. An equivalence proptest
//! (`crates/sim/tests/calendar_queue.rs`) drives both structures through
//! random schedule/dispatch/drop/duplicate sequences and asserts identical
//! pop order.
//!
//! **Bucket width.** `256 ms` per bucket, `512` buckets — a 131-second
//! horizon that covers every recurring delay the simulator schedules
//! (1–100 ms link latencies, 10 s gossip periods, 5–60 s query timeouts)
//! without touching the overflow list; only far-future fault-plan events
//! (crashes hours out) land there, and they are redistributed when the
//! cursor's year wraps. Widening buckets trades fewer empty-bucket visits
//! for longer in-bucket sorts; 256 ms keeps the serving bucket in the
//! hundreds of events even for million-node gossip populations.

use crate::event::ScheduledEvent;

/// log2 of the bucket width in virtual ms (256 ms days).
const BUCKET_SHIFT: u32 = 8;
/// Buckets in the ring (the "year"); must be a power of two.
const NUM_BUCKETS: usize = 512;

/// A calendar/ladder event queue popping in ascending `(at, seq)` order.
///
/// Semantically a drop-in replacement for `BinaryHeap<ScheduledEvent>`
/// with the reversed comparator; see the module docs for the equivalence
/// argument.
pub(crate) struct CalendarQueue {
    /// Ring of day buckets; bucket `d % NUM_BUCKETS` holds day `d`'s
    /// events while `cursor_day ≤ d < cursor_day + NUM_BUCKETS`.
    buckets: Vec<Vec<ScheduledEvent>>,
    /// Events with `day ≥ cursor_day + NUM_BUCKETS`, unsorted; rebased
    /// back into the ring when the cursor's year wraps.
    overflow: Vec<ScheduledEvent>,
    /// The day currently being served.
    cursor_day: u64,
    /// Whether the serving bucket is sorted descending by `(at, seq)`
    /// (popped from the back). Reset whenever the cursor advances or the
    /// bucket is disturbed by an unordered removal.
    serving_sorted: bool,
    /// Total queued events (ring + overflow).
    len: usize,
}

impl std::fmt::Debug for CalendarQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("cursor_day", &self.cursor_day)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

fn day(at: u64) -> u64 {
    at >> BUCKET_SHIFT
}

impl CalendarQueue {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            cursor_day: 0,
            serving_sorted: false,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an event. Pushes never precede virtual `now`, but they may
    /// precede the *cursor*: `peek_at`/`pop` advance the cursor to the
    /// earliest queued day, and a driver can then schedule fresh work at
    /// `now` (e.g. issue queries while only a far-future gossip tick is
    /// pending). Such pushes rewind the cursor — see [`rewind_to`].
    pub(crate) fn push(&mut self, ev: ScheduledEvent) {
        let d = day(ev.at);
        if self.len == 0 {
            // Empty queue: rebase the calendar directly onto the event's
            // day instead of walking the cursor there bucket by bucket.
            self.cursor_day = d;
            self.serving_sorted = false;
        } else if d < self.cursor_day {
            self.rewind_to(d);
        }
        self.len += 1;
        if d >= self.cursor_day + NUM_BUCKETS as u64 {
            self.overflow.push(ev);
            return;
        }
        let bucket = &mut self.buckets[(d % NUM_BUCKETS as u64) as usize];
        if d == self.cursor_day && self.serving_sorted {
            // Keep the serving bucket's descending (at, seq) order intact.
            let key = (ev.at, ev.seq);
            let pos = bucket
                .partition_point(|e| (e.at, e.seq) > key);
            bucket.insert(pos, ev);
        } else {
            bucket.push(ev);
        }
    }

    /// Moves the cursor back to day `d` after a push earlier than the
    /// serving day. Ring buckets behind the old cursor are empty (their
    /// events were popped), but shrinking the horizon to `d + NUM_BUCKETS`
    /// invalidates two placements, both repaired here: ring events beyond
    /// the new horizon are evicted to overflow, and overflow events now
    /// inside it are pulled into the ring. O(ring + overflow) — rewinds
    /// happen once per driver-scheduling batch, not per event.
    fn rewind_to(&mut self, d: u64) {
        let new_horizon = d + NUM_BUCKETS as u64;
        for bucket in &mut self.buckets {
            let mut i = 0;
            while i < bucket.len() {
                if day(bucket[i].at) >= new_horizon {
                    let ev = bucket.swap_remove(i);
                    self.overflow.push(ev);
                } else {
                    i += 1;
                }
            }
        }
        self.cursor_day = d;
        self.serving_sorted = false;
        self.rebase_overflow();
    }

    /// Advances the cursor to the first non-empty bucket and sorts it for
    /// service. After this, if `len > 0`, the next event to pop is the last
    /// element of the serving bucket.
    fn normalize(&mut self) {
        if self.len == 0 {
            return;
        }
        loop {
            let idx = (self.cursor_day % NUM_BUCKETS as u64) as usize;
            if !self.buckets[idx].is_empty() {
                if !self.serving_sorted {
                    // Descending, so pops are cheap back-removals. `(at,
                    // seq)` is a total order (seq unique): the sort is
                    // deterministic regardless of insertion order.
                    self.buckets[idx]
                        .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
                    self.serving_sorted = true;
                }
                return;
            }
            self.cursor_day += 1;
            self.serving_sorted = false;
            if self.cursor_day.is_multiple_of(NUM_BUCKETS as u64) && !self.overflow.is_empty() {
                self.rebase_overflow();
            }
            if self.ring_is_empty() {
                // Only overflow remains: jump straight to its earliest day.
                if self.overflow.is_empty() {
                    return; // len == 0 was handled above; defensive
                }
                let min_day = self.overflow.iter().map(|e| day(e.at)).min().expect("non-empty");
                self.cursor_day = min_day;
                self.rebase_overflow();
            }
        }
    }

    fn ring_is_empty(&self) -> bool {
        self.len == self.overflow.len()
    }

    /// Moves overflow events whose day now falls inside the ring into
    /// their buckets.
    fn rebase_overflow(&mut self) {
        let horizon = self.cursor_day + NUM_BUCKETS as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            let d = day(self.overflow[i].at);
            if d < horizon {
                let ev = self.overflow.swap_remove(i);
                let idx = (d % NUM_BUCKETS as u64) as usize;
                self.buckets[idx].push(ev);
                if d == self.cursor_day {
                    self.serving_sorted = false;
                }
            } else {
                i += 1;
            }
        }
    }

    /// The earliest queued firing time, or `None` when empty.
    pub(crate) fn peek_at(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.normalize();
        let idx = (self.cursor_day % NUM_BUCKETS as u64) as usize;
        self.buckets[idx].last().map(|e| e.at)
    }

    /// Removes and returns the earliest event (ascending `(at, seq)`).
    pub(crate) fn pop(&mut self) -> Option<ScheduledEvent> {
        if self.len == 0 {
            return None;
        }
        self.normalize();
        let idx = (self.cursor_day % NUM_BUCKETS as u64) as usize;
        let ev = self.buckets[idx].pop();
        if ev.is_some() {
            self.len -= 1;
        }
        ev
    }

    /// Iterates every queued event in unspecified order (callers sort by
    /// `(at, seq)` where order matters — `queued_events`, `state_hash`).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &ScheduledEvent> {
        self.buckets.iter().flatten().chain(self.overflow.iter())
    }

    /// Removes and returns the event with sequence handle `seq`, if queued.
    /// O(queue) — serves the explorer's take/drop surgery on small
    /// scenarios, exactly like the heap's rebuild did.
    pub(crate) fn remove_seq(&mut self, seq: u64) -> Option<ScheduledEvent> {
        let serving_idx = (self.cursor_day % NUM_BUCKETS as u64) as usize;
        for (idx, bucket) in self.buckets.iter_mut().enumerate() {
            if let Some(i) = bucket.iter().position(|e| e.seq == seq) {
                let ev = bucket.swap_remove(i);
                self.len -= 1;
                if idx == serving_idx {
                    // swap_remove disturbed the order; re-sort on next serve.
                    self.serving_sorted = false;
                }
                return Some(ev);
            }
        }
        if let Some(i) = self.overflow.iter().position(|e| e.seq == seq) {
            let ev = self.overflow.swap_remove(i);
            self.len -= 1;
            return Some(ev);
        }
        None
    }

    /// The queued event with handle `seq`, if any.
    pub(crate) fn find_seq(&self, seq: u64) -> Option<&ScheduledEvent> {
        self.iter().find(|e| e.seq == seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(at: u64, seq: u64) -> ScheduledEvent {
        ScheduledEvent { at, seq, kind: EventKind::PollTimeouts { node: 0 } }
    }

    fn drain(q: &mut CalendarQueue) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| q.pop().map(|e| (e.at, e.seq))).collect()
    }

    #[test]
    fn pops_earliest_first_with_fifo_ties() {
        let mut q = CalendarQueue::new();
        q.push(ev(5, 0));
        q.push(ev(1, 2));
        q.push(ev(1, 1));
        q.push(ev(3, 3));
        assert_eq!(drain(&mut q), vec![(1, 1), (1, 2), (3, 3), (5, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn crosses_bucket_and_year_boundaries_in_order() {
        let width = 1u64 << BUCKET_SHIFT;
        let year = width * NUM_BUCKETS as u64;
        let mut q = CalendarQueue::new();
        // Same bucket, next bucket, next year, and far overflow.
        let times = [3, width - 1, width, 2 * width + 7, year + 5, 3 * year + 1];
        for (i, &at) in times.iter().enumerate() {
            q.push(ev(at, i as u64 + 1));
        }
        let order = drain(&mut q);
        let ats: Vec<u64> = order.iter().map(|&(at, _)| at).collect();
        let mut sorted = ats.clone();
        sorted.sort_unstable();
        assert_eq!(ats, sorted);
        assert_eq!(order.len(), times.len());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = CalendarQueue::new();
        q.push(ev(10, 1));
        q.push(ev(20, 2));
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        // Push into the already-sorted serving bucket (same day as 20).
        q.push(ev(20, 3));
        q.push(ev(15, 4));
        assert_eq!(drain(&mut q), vec![(15, 4), (20, 2), (20, 3)]);
    }

    #[test]
    fn remove_and_find_by_seq() {
        let mut q = CalendarQueue::new();
        q.push(ev(10, 1));
        q.push(ev(1_000_000, 2)); // overflow at a fresh queue's horizon? (day 3906 < 512? no: overflow)
        q.push(ev(10, 3));
        assert_eq!(q.find_seq(2).map(|e| e.at), Some(1_000_000));
        assert_eq!(q.remove_seq(3).map(|e| e.at), Some(10));
        assert!(q.remove_seq(3).is_none());
        assert_eq!(q.len(), 2);
        assert_eq!(drain(&mut q), vec![(10, 1), (1_000_000, 2)]);
    }

    #[test]
    fn push_behind_cursor_rewinds_and_repairs_horizon() {
        let width = 1u64 << BUCKET_SHIFT;
        let year = width * NUM_BUCKETS as u64;
        let mut q = CalendarQueue::new();
        q.push(ev(1, 1));
        q.push(ev(year - width, 2)); // far-future tick, same year
        q.push(ev(2 * year, 3)); // overflow
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        // Cursor has advanced to day(year - width) via normalize; now the
        // driver schedules near-past-the-origin work, as issue_query does
        // while only a gossip tick is pending.
        assert_eq!(q.peek_at(), Some(year - width));
        q.push(ev(width, 4));
        assert_eq!(q.peek_at(), Some(width));
        assert_eq!(drain(&mut q), vec![(width, 4), (year - width, 2), (2 * year, 3)]);
    }

    #[test]
    fn empty_queue_rebases_to_far_future_push() {
        let mut q = CalendarQueue::new();
        q.push(ev(7, 1));
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        // Queue empty, cursor at day(7); a push eons later must not walk.
        q.push(ev(u64::from(u32::MAX) * 2, 2));
        assert_eq!(q.peek_at(), Some(u64::from(u32::MAX) * 2));
        assert_eq!(q.pop().map(|e| e.seq), Some(2));
        assert!(q.pop().is_none());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The queue is behaviorally identical to the `BinaryHeap` it
        /// replaced: any interleaving of schedules, pops, explorer-style
        /// drops and duplicates yields the exact same `(at, seq)` pop
        /// order and the same lengths throughout. `at` ranges past the
        /// ring horizon (512 × 256 ms) so rewinds, year crossings and
        /// overflow rebasing are all on the path.
        #[test]
        fn equivalent_to_binary_heap_reference(
            ops in proptest::collection::vec((0u8..10, 0u64..200_000u64), 1..250)
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            let mut cal = CalendarQueue::new();
            let mut heap: std::collections::BinaryHeap<ScheduledEvent> =
                std::collections::BinaryHeap::new();
            let mut next_seq = 0u64;
            for (op, at) in ops {
                match op {
                    0..=4 => {
                        // Schedule; pushes dominate so queues stay busy.
                        next_seq += 1;
                        cal.push(ev(at, next_seq));
                        heap.push(ev(at, next_seq));
                    }
                    5 | 6 => {
                        // Dispatch the earliest event.
                        let got = cal.pop().map(|e| (e.at, e.seq));
                        let want = heap.pop().map(|e| (e.at, e.seq));
                        prop_assert_eq!(got, want);
                    }
                    7 => {
                        prop_assert_eq!(cal.peek_at(), heap.peek().map(|e| e.at));
                    }
                    8 => {
                        // Drop a surviving event by handle (drop_queued).
                        let mut seqs: Vec<u64> = heap.iter().map(|e| e.seq).collect();
                        seqs.sort_unstable();
                        if !seqs.is_empty() {
                            let victim = seqs[(at as usize) % seqs.len()];
                            prop_assert!(cal.remove_seq(victim).is_some());
                            heap.retain(|e| e.seq != victim);
                        }
                    }
                    _ => {
                        // Duplicate an event at its own time, fresh handle
                        // (duplicate_queued).
                        let mut live: Vec<(u64, u64)> =
                            heap.iter().map(|e| (e.seq, e.at)).collect();
                        live.sort_unstable();
                        if !live.is_empty() {
                            let (_, t) = live[(at as usize) % live.len()];
                            next_seq += 1;
                            cal.push(ev(t, next_seq));
                            heap.push(ev(t, next_seq));
                        }
                    }
                }
                prop_assert_eq!(cal.len(), heap.len());
            }
            // Drain: the remaining pop order must match exactly.
            while let Some(want) = heap.pop() {
                let got = cal.pop().expect("calendar shorter than reference");
                prop_assert_eq!((got.at, got.seq), (want.at, want.seq));
            }
            prop_assert!(cal.pop().is_none());
        }
    }

    #[test]
    fn overflow_only_queue_jumps_not_walks() {
        let width = 1u64 << BUCKET_SHIFT;
        let year = width * NUM_BUCKETS as u64;
        let mut q = CalendarQueue::new();
        q.push(ev(1, 1));
        q.push(ev(100 * year, 2));
        q.push(ev(100 * year + 3, 3));
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        assert_eq!(drain(&mut q), vec![(100 * year, 2), (100 * year + 3, 3)]);
    }
}
