//! `gossip_health()` under the soak harness's two hardest arcs, isolated:
//! a healing partition and a flash crowd. Both tests pin the *recovery*
//! contract the soak bounds rely on — per-layer mean view size and mean
//! descriptor age return to near-baseline within a bounded number of
//! gossip rounds after the adversity ends — not just survival.

use attrspace::Space;
use epigossip::NodeId;
use overlay_sim::faults::Window;
use overlay_sim::{FaultPlan, GossipHealth, LatencyModel, Placement, SimCluster, SimConfig};

const GOSSIP_PERIOD_MS: u64 = 10_000;

fn gossip_config() -> SimConfig {
    SimConfig {
        latency: LatencyModel::Constant { ms: 5 },
        ..SimConfig::default()
    }
}

fn cluster(n: usize, seed: u64) -> SimCluster {
    let space = Space::uniform(5, 80, 3).expect("space");
    let mut sim = SimCluster::new(space, gossip_config(), seed);
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, n);
    sim
}

/// Max relative degradation the recovered state may show versus baseline:
/// view size ≥ 90%, mean age ≤ 150%.
fn assert_recovered(layer: &str, baseline: &GossipHealth, healed: &GossipHealth) {
    let (bv, hv) = (baseline.mean_view_size_x1000(), healed.mean_view_size_x1000());
    assert!(
        hv * 10 >= bv * 9,
        "{layer} view size did not recover: baseline {bv}, healed {hv} (x1000)"
    );
    let (ba, ha) = (baseline.mean_age_x1000(), healed.mean_age_x1000());
    assert!(
        ha * 2 <= ba * 3,
        "{layer} descriptor age did not recover: baseline {ba}, healed {ha} (x1000)"
    );
}

#[test]
fn partition_heals_within_bounded_rounds() {
    let mut sim = cluster(100, 11);
    // 25 rounds of warmup, then baseline.
    sim.run_until(25 * GOSSIP_PERIOD_MS);
    let (base_rnd, base_sem) = sim.gossip_health();
    assert!(base_rnd.mean_view_size_x1000() > 0, "warmup produced no random view");
    assert!(base_sem.mean_view_size_x1000() > 0, "warmup produced no semantic view");

    // Partition half the population away for 15 rounds, then heal.
    let island: Vec<NodeId> = sim.node_ids().iter().copied().filter(|id| id % 2 == 0).collect();
    let from = sim.now();
    let until = from + 15 * GOSSIP_PERIOD_MS;
    sim.set_fault_plan(FaultPlan::new().partition(Window::new(from, until), island));
    sim.run_until(until);

    // During the split, cross-island descriptors cannot refresh: the mean
    // age must visibly climb — otherwise the arc never stressed anything
    // and the recovery assertion below would be vacuous.
    let (split_rnd, _) = sim.gossip_health();
    assert!(
        split_rnd.mean_age_x1000() > base_rnd.mean_age_x1000(),
        "partition did not age the random layer: baseline {}, split {}",
        base_rnd.mean_age_x1000(),
        split_rnd.mean_age_x1000()
    );

    // Heal and give the overlay a bounded 30 rounds to re-mix.
    sim.run_until(until + 30 * GOSSIP_PERIOD_MS);
    let (healed_rnd, healed_sem) = sim.gossip_health();
    assert_recovered("random", &base_rnd, &healed_rnd);
    assert_recovered("semantic", &base_sem, &healed_sem);
}

#[test]
fn flash_crowd_is_absorbed_within_bounded_rounds() {
    let mut sim = cluster(80, 12);
    sim.run_until(25 * GOSSIP_PERIOD_MS);
    let (base_rnd, base_sem) = sim.gossip_health();
    let before = sim.len();

    // Flash crowd: +50% membership at one instant.
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, before / 2);
    assert_eq!(sim.len(), before + before / 2);

    // 30 rounds to absorb the newcomers.
    let t = sim.now();
    sim.run_until(t + 30 * GOSSIP_PERIOD_MS);
    let (after_rnd, after_sem) = sim.gossip_health();

    // Every node — newcomers included — gossips on both layers...
    assert_eq!(after_rnd.nodes, sim.len() as u64, "newcomers missing from the random layer");
    assert_eq!(after_sem.nodes, sim.len() as u64, "newcomers missing from the semantic layer");
    // ...and the per-node health statistics return to baseline, i.e. the
    // grown population is as well-mixed as the original one was.
    assert_recovered("random", &base_rnd, &after_rnd);
    assert_recovered("semantic", &base_sem, &after_sem);
}
