//! Fault-plan × seed sweep: delivery and overhead envelopes of the
//! selection protocol under adverse networks, partitions, massive failures
//! (§6.7 / Fig. 12) and churn (§6.6 / Fig. 11), with the invariant checker
//! auditing every single event.
//!
//! Every scenario runs under at least three seeds. Failures print the seed
//! and plan; to reproduce, re-run the one scenario with that seed (the
//! simulator replays identically — see `docs/TESTING.md`).

use attrspace::{Query, Space};
use overlay_sim::faults::{Action, FaultPlan, FaultRule, Scope, Window};
use overlay_sim::invariants::InvariantViolation;
use overlay_sim::{
    InvariantChecker, LatencyModel, Placement, QueryStats, SimCluster, SimConfig,
};

const SEEDS: [u64; 3] = [11, 42, 97];

/// Static-mode config with a `T(q)` short enough that loss-induced timeout
/// recovery resolves in bounded virtual time, yet comfortably above the
/// worst accumulated jitter of the delay/reorder plans (depth × ~100 ms),
/// so delay alone never trips a spurious timeout.
fn fault_config() -> SimConfig {
    let mut cfg = SimConfig::fast_static();
    cfg.protocol.query_timeout_ms = 8_000;
    cfg.latency = LatencyModel::Constant { ms: 5 };
    cfg
}

fn build(seed: u64, n: usize) -> (SimCluster, Space) {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut sim = SimCluster::new(space.clone(), fault_config(), seed);
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, n);
    sim.wire_oracle();
    (sim, space)
}

fn half_space_query(space: &Space) -> Query {
    Query::builder(space).min("a0", 40).build().unwrap()
}

/// Runs `queries` sequential queries under `plan`, checking invariants
/// after every event, and returns the per-query stats. `exact` arms the
/// exact-reporting check on a relaxed checker (strict always implies it) —
/// right for plans that duplicate/reorder but never lose messages.
fn run_plan(seed: u64, plan: &FaultPlan, strict: bool, exact: bool, queries: usize) -> Vec<QueryStats> {
    let (mut sim, space) = build(seed, 200);
    sim.set_fault_plan(plan.clone());
    let mut checker = if strict {
        InvariantChecker::strict()
    } else if exact {
        InvariantChecker::relaxed().expect_exact_reporting()
    } else {
        InvariantChecker::relaxed()
    };
    let mut out = Vec::new();
    for _ in 0..queries {
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, half_space_query(&space), None);
        sim.run_to_quiescence_checked(&mut checker)
            .unwrap_or_else(|v| panic!("invariant violated under seed {seed}: {v}"));
        out.push(sim.query_stats(qid).expect("tracked").clone());
        sim.forget_query(qid);
    }
    out
}

fn mean_delivery(stats: &[QueryStats]) -> f64 {
    stats.iter().map(QueryStats::delivery).sum::<f64>() / stats.len() as f64
}

/// The matrix proper: ≥8 distinct per-message fault plans × ≥3 seeds, with
/// per-plan delivery envelopes. Timeouts guarantee liveness, so *every*
/// query must complete no matter the plan.
#[test]
fn fault_matrix_delivery_envelopes() {
    // (name, plan, strict checker, exact reporting, per-seed minimum mean
    // delivery). Duplication/reorder plans never lose messages, so they run
    // with the exact-reporting invariant armed: `reported` must equal
    // `matched_reached` for every completed query (strict implies it).
    let plans: Vec<(&str, FaultPlan, bool, bool, f64)> = vec![
        ("quiet", FaultPlan::new(), true, true, 1.0),
        ("light-loss", FaultPlan::new().drop_all(0.02), false, false, 0.70),
        ("heavy-loss", FaultPlan::new().drop_all(0.15), false, false, 0.20),
        ("jitter", FaultPlan::new().delay_all(0.5, 10, 100), true, true, 1.0),
        ("reorder", FaultPlan::new().reorder_all(0.5, 100), true, true, 1.0),
        ("duplication", FaultPlan::new().duplicate_protocol(0.25, 1), false, true, 1.0),
        (
            "dup-reorder",
            FaultPlan::new().duplicate_protocol(0.5, 1).reorder_all(0.5, 100),
            false,
            true,
            1.0,
        ),
        ("flaky-node", FaultPlan::new().drop_node(7, 0.5), false, false, 0.55),
        ("late-loss", FaultPlan::new().drop_window(Window::new(40, u64::MAX), 0.05), false, false, 0.55),
        (
            "combo",
            FaultPlan::new().drop_all(0.05).delay_all(0.3, 20, 100).duplicate_protocol(0.1, 1),
            false,
            false,
            0.40,
        ),
    ];
    assert!(plans.len() >= 8, "the issue demands at least 8 distinct plans");

    let mut mean_by_plan: Vec<(&str, f64)> = Vec::new();
    for (name, plan, strict, exact, min_delivery) in &plans {
        let mut total = 0.0;
        for &seed in &SEEDS {
            let stats = run_plan(seed, plan, *strict, *exact, 4);
            let mean = mean_delivery(&stats);
            total += mean;
            assert!(
                mean >= *min_delivery,
                "plan {name} seed {seed}: mean delivery {mean:.3} under envelope {min_delivery}"
            );
            for st in &stats {
                assert!(st.completed, "plan {name} seed {seed}: a query never completed");
                assert!(
                    st.overhead <= st.messages,
                    "plan {name}: overhead {} exceeds total messages {}",
                    st.overhead,
                    st.messages
                );
                if *strict {
                    assert_eq!(st.duplicates, 0, "plan {name}: strict run saw duplicates");
                    assert_eq!(st.delivery(), 1.0, "plan {name}: strict run under-delivered");
                }
                if *exact {
                    assert_eq!(
                        st.reported,
                        st.matched_reached.len() as u32,
                        "plan {name} seed {seed}: reported drifted from matched_reached"
                    );
                }
            }
            if name.starts_with("dup") {
                assert!(
                    stats.iter().any(|s| s.duplicates > 0),
                    "plan {name} seed {seed}: duplication fault produced no duplicate receipts"
                );
            }
        }
        mean_by_plan.push((name, total / SEEDS.len() as f64));
    }

    // Degradation is monotone in loss rate (averaged over all seeds).
    let get = |n: &str| mean_by_plan.iter().find(|(p, _)| *p == n).unwrap().1;
    assert!(
        get("heavy-loss") <= get("light-loss") + 0.05,
        "heavier loss should not deliver better: heavy {:.3} vs light {:.3}",
        get("heavy-loss"),
        get("light-loss")
    );
    assert!(get("quiet") == 1.0);
}

/// Message loss is repaired by `T(q)` timeouts — the new timeout counter
/// must actually tick under loss and stay silent on clean runs.
#[test]
fn timeouts_fire_under_loss_only() {
    for &seed in &SEEDS {
        let (mut sim, space) = build(seed, 150);
        let origin = sim.random_node();
        sim.issue_query(origin, half_space_query(&space), None);
        sim.run_to_quiescence();
        assert_eq!(sim.timeouts_fired_total(), 0, "clean run fired timeouts");
        assert_eq!(sim.pending_total(), 0);

        sim.set_fault_plan(FaultPlan::new().drop_all(0.25));
        let origin = sim.random_node();
        sim.issue_query(origin, half_space_query(&space), None);
        sim.run_to_quiescence();
        assert!(
            sim.timeouts_fired_total() > 0,
            "seed {seed}: 25% loss should force timeout recovery"
        );
        assert_eq!(sim.pending_total(), 0, "timeout recovery must not leak state");
    }
}

/// A partition makes the far side unreachable; once it heals, delivery
/// returns to 100%.
#[test]
fn partition_severs_then_heals() {
    for &seed in &SEEDS {
        let (mut sim, space) = build(seed, 210);
        let ids = sim.node_ids().to_vec();
        let island: Vec<u64> = ids.iter().copied().take(70).collect();
        // The window must outlast the first query's timeout recovery (serial
        // 8 s waits): make it enormous and assert below that the query in
        // fact quiesced inside it.
        const HEAL_AT: u64 = 1_000_000;
        sim.set_fault_plan(
            FaultPlan::new().partition(Window::new(0, HEAL_AT), island.iter().copied()),
        );
        let mut checker = InvariantChecker::relaxed();

        // Mainland origin: the island's matching nodes are unreachable.
        let origin = *ids.last().unwrap();
        let qid = sim.issue_query(origin, half_space_query(&space), None);
        sim.run_to_quiescence_checked(&mut checker).expect("invariants under partition");
        let st = sim.query_stats(qid).unwrap().clone();
        assert!(st.completed, "seed {seed}: partitioned query must still terminate");
        assert!(sim.now() < HEAL_AT, "recovery outlived the partition window");
        assert!(st.delivery() < 1.0, "seed {seed}: partition cost nothing?");
        assert!(
            st.matched_reached.iter().all(|id| !island.contains(id)),
            "seed {seed}: reached across an active partition"
        );

        // After the heal: timed-out island links were evicted from mainland
        // routing tables during the partition, so re-wire the (static-mode)
        // oracle — the stand-in for the membership layer repairing the
        // overlay — and delivery returns to 100%.
        sim.run_until(HEAL_AT + 1);
        sim.wire_oracle();
        let origin = *ids.last().unwrap();
        let qid = sim.issue_query(origin, half_space_query(&space), None);
        sim.run_to_quiescence_checked(&mut checker).expect("invariants after heal");
        let st = sim.query_stats(qid).unwrap();
        assert!(st.completed);
        assert_eq!(st.delivery(), 1.0, "seed {seed}: delivery after heal");
    }
}

/// §6.7 / Fig. 12 massive failure: a timed crash of ~30% of the
/// population. With one chosen neighbor per `N(l,k)`, each dead neighbor
/// costs its whole subtree until the overlay is repaired, so un-repaired
/// delivery among survivors degrades sharply (and varies wildly with which
/// neighbors died — anywhere from ~0.1 to ~0.6 across seeds). The paper's
/// resilience claim is about the repaired overlay: every query still
/// *completes* with invariants intact, and a single repair round (oracle
/// re-wire, the membership layer's job) restores delivery to 100%.
#[test]
fn massive_failure_degrades_then_repair_restores_delivery() {
    for &seed in &SEEDS {
        let (mut sim, space) = build(seed, 200);
        let victims: Vec<u64> = sim.node_ids().iter().copied().filter(|id| id % 3 == 0).collect();
        let mut plan = FaultPlan::new();
        for &v in &victims {
            plan = plan.crash(1_000, v);
        }
        sim.set_fault_plan(plan);
        sim.run_until(2_000);
        assert_eq!(sim.len(), 200 - victims.len());
        assert_eq!(sim.crashed_ids(), victims);

        let mut checker = InvariantChecker::relaxed();
        let mut deliveries = Vec::new();
        for _ in 0..4 {
            let origin = sim.random_node();
            let qid = sim.issue_query(origin, half_space_query(&space), None);
            sim.run_to_quiescence_checked(&mut checker).expect("invariants after mass crash");
            let st = sim.query_stats(qid).unwrap();
            assert!(st.completed);
            deliveries.push(st.delivery());
            sim.forget_query(qid);
        }
        let mean = deliveries.iter().sum::<f64>() / deliveries.len() as f64;
        assert!(
            mean > 0.02,
            "seed {seed}: survivors reached {mean:.3} of each other — queries went nowhere"
        );
        assert!(mean < 1.0, "seed {seed}: losing 33% of the overlay cost nothing?");
        assert_eq!(sim.pending_total(), 0);

        // One repair round brings delivery among survivors back to 100%.
        sim.wire_oracle();
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, half_space_query(&space), None);
        sim.run_to_quiescence_checked(&mut checker).expect("invariants after repair");
        let st = sim.query_stats(qid).unwrap();
        assert_eq!(st.delivery(), 1.0, "seed {seed}: repair did not restore delivery");
    }
}

/// Crash + restart under the same identity: while down the node is routed
/// around; once restarted it is reachable again (with empty tables — it
/// answers, it does not forward far).
#[test]
fn crash_restart_rejoins_under_same_identity() {
    for &seed in &SEEDS {
        let (mut sim, space) = build(seed, 150);
        let victim = sim.node_ids()[10];
        sim.set_fault_plan(FaultPlan::new().crash(500, victim).restart(4_000, victim));
        let mut checker = InvariantChecker::relaxed();

        // While the victim is down: queries complete without it.
        sim.run_until(1_000);
        assert!(sim.point_of(victim).is_none(), "victim should be down");
        assert_eq!(sim.crashed_ids(), vec![victim]);
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, half_space_query(&space), None);
        sim.run_to_quiescence_checked(&mut checker).expect("invariants while down");
        assert!(sim.query_stats(qid).unwrap().completed);

        // After the restart: same id, same point. Fail-fast feedback made
        // peers evict the victim while it was down (and it came back with
        // empty tables), so re-wire the oracle — the membership layer's
        // repair — before measuring reachability.
        sim.run_until(5_000);
        assert!(sim.point_of(victim).is_some(), "victim should be back");
        assert!(sim.crashed_ids().is_empty());
        assert_eq!(sim.len(), 150);
        sim.wire_oracle();

        let all = Query::builder(&space).build().unwrap();
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, all, None);
        sim.run_to_quiescence_checked(&mut checker).expect("invariants after restart");
        let st = sim.query_stats(qid).unwrap();
        assert!(st.completed);
        if origin != victim {
            assert!(
                st.matched_reached.contains(&victim),
                "seed {seed}: restarted node never reached"
            );
        }
        assert!(st.delivery() > 0.8, "seed {seed}: delivery {:.3}", st.delivery());
    }
}

/// Fig. 11's shape: gossip-maintained overlay under continuous churn *and*
/// background message loss, with relaxed invariants audited throughout.
#[test]
fn churn_with_loss_keeps_routing_alive() {
    for &seed in &SEEDS {
        let space = Space::uniform(3, 80, 3).unwrap();
        let mut cfg = SimConfig {
            latency: LatencyModel::Constant { ms: 20 },
            ..SimConfig::default()
        };
        cfg.gossip.period_ms = 1_000;
        cfg.protocol.query_timeout_ms = 3_000;
        let mut sim = SimCluster::new(space.clone(), cfg, seed);
        let placement = Placement::Uniform { lo: 0, hi: 80 };
        sim.populate(&placement, 80);
        sim.set_fault_plan(FaultPlan::new().drop_all(0.02));
        let mut checker = InvariantChecker::relaxed();

        sim.run_until_checked(30_000, &mut checker).expect("invariants during warmup");
        sim.churn_step(0.05, &placement);
        sim.run_until_checked(40_000, &mut checker).expect("invariants during churn");

        let origin = sim.random_node();
        let qid = sim.issue_query(origin, half_space_query(&space), None);
        sim.run_until_checked(90_000, &mut checker).expect("invariants during query");
        let st = sim.query_stats(qid).unwrap();
        assert!(st.completed, "seed {seed}: churned query never completed");
        assert!(
            st.delivery() > 0.5,
            "seed {seed}: churn+loss delivery {:.3}",
            st.delivery()
        );
    }
}

/// Negative control: the strict checker must catch the injected
/// exactly-once violation (duplicated protocol messages), and report it as
/// such rather than as some downstream symptom.
#[test]
fn strict_checker_flags_injected_duplicates() {
    let (mut sim, space) = build(7, 200);
    sim.set_fault_plan(FaultPlan::new().duplicate_protocol(1.0, 1));
    let origin = sim.random_node();
    sim.issue_query(origin, half_space_query(&space), None);
    let err = sim
        .run_to_quiescence_checked(&mut InvariantChecker::strict())
        .expect_err("duplicated messages must violate exactly-once");
    assert!(
        matches!(err, InvariantViolation::DuplicateDelivery { .. }),
        "wrong violation reported: {err}"
    );
}

/// The same injected bug, surfaced the `#[should_panic]` way — what a
/// driver that simply `expect`s the checked run looks like when the
/// protocol breaks.
#[test]
#[should_panic(expected = "DuplicateDelivery")]
fn injected_duplicates_panic_a_strict_harness() {
    let (mut sim, space) = build(7, 200);
    sim.set_fault_plan(FaultPlan::new().duplicate_protocol(1.0, 1));
    let origin = sim.random_node();
    sim.issue_query(origin, half_space_query(&space), None);
    sim.run_to_quiescence_checked(&mut InvariantChecker::strict())
        .expect("exactly-once should hold");
}

/// The protocol itself shrugs duplicates off: a duplicated QUERY while the
/// subtree is in flight is suppressed (the eventual real REPLY answers it),
/// and one arriving after conclusion is answered by retransmitting the
/// cached final REPLY. Under a relaxed checker with exact reporting armed,
/// the same fault plan yields 100% delivery and a result set that contains
/// every matching node exactly once — no phantoms, no double counts, no
/// under-count.
#[test]
fn duplicates_do_not_corrupt_results() {
    for &seed in &SEEDS {
        let (mut sim, space) = build(seed, 200);
        sim.set_fault_plan(FaultPlan::new().duplicate_protocol(1.0, 1));
        let mut checker = InvariantChecker::relaxed().expect_exact_reporting();
        let origin = sim.random_node();
        let query = half_space_query(&space);
        let qid = sim.issue_query(origin, query.clone(), None);
        sim.run_to_quiescence_checked(&mut checker).expect("relaxed run");
        let st = sim.query_stats(qid).unwrap();
        assert!(st.completed);
        assert_eq!(st.delivery(), 1.0, "seed {seed}");
        assert_eq!(st.reported, st.truth, "duplicates must not change the answer");
        assert!(st.duplicates > 0, "every message was doubled; dedup must have fired");
        let matches = sim.query_result(qid).expect("enumeration completed");
        let mut ids: Vec<_> = matches.iter().map(|m| m.node).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), matches.len(), "a node was reported twice");
        assert!(matches.iter().all(|m| query.matches(&m.values)), "phantom match reported");
        assert_eq!(sim.pending_total(), 0);
    }
}

/// Exactly-once accounting under worst-case duplication (every protocol
/// message doubled): attempt-tagged replies let the upstream merge each
/// forward's subtree exactly once, duplicates arriving while the subtree is
/// in flight are suppressed rather than answered early, and duplicates
/// arriving after conclusion are answered from the bounded reply cache. Per
/// query, across the same pinned seeds that used to reproduce the
/// under-count: `reported == matched_reached == truth` and delivery is
/// 1.0 — with the exact-reporting invariant auditing every event on top.
#[test]
fn duplication_reports_exactly() {
    for &seed in &SEEDS {
        let (mut sim, space) = build(seed, 200);
        sim.set_fault_plan(FaultPlan::new().duplicate_protocol(1.0, 1));
        let mut checker = InvariantChecker::relaxed().expect_exact_reporting();
        for _ in 0..4 {
            let origin = sim.random_node();
            let qid = sim.issue_query(origin, half_space_query(&space), None);
            sim.run_to_quiescence_checked(&mut checker)
                .unwrap_or_else(|v| panic!("invariant violated under seed {seed}: {v}"));
            let st = sim.query_stats(qid).unwrap();
            assert!(st.completed, "seed {seed}: query never completed");
            assert!(st.duplicates > 0, "seed {seed}: plan injected no duplicates");
            // Delivery side: every matching node was reached.
            assert_eq!(st.delivery(), 1.0, "seed {seed}: duplication dented delivery");
            assert_eq!(
                st.matched_reached.len() as u32,
                st.truth,
                "seed {seed}: matched_reached must equal ground truth"
            );
            // Reporting side: exactly what was reached — no more, no less.
            assert_eq!(
                st.reported,
                st.matched_reached.len() as u32,
                "seed {seed}: reported {} != matched_reached {}",
                st.reported,
                st.matched_reached.len()
            );
            sim.forget_query(qid);
        }
    }
}

/// Count-mode totals must survive duplicated REPLY deliveries. A count
/// carries no node identities, so the upstream cannot dedup it the way
/// enumerate mode dedups matches — the waiting set is the only witness
/// that a subtree was already merged. Regression test: every reply link
/// into the origin is duplicated, and the reported total must still equal
/// the ground truth (it used to be added once per delivered copy).
#[test]
fn count_queries_stay_exact_under_reply_duplication() {
    for &seed in &SEEDS {
        let (mut sim, space) = build(seed, 200);
        let origin = sim.random_node();
        let mut plan = FaultPlan::new();
        for id in sim.node_ids().to_vec() {
            if id != origin {
                // Traffic on `id → origin` is exclusively REPLY messages:
                // the origin issues the query, so QUERY copies only ever
                // leave it (a forward back *to* the origin is answered
                // empty by its seen-set, which is also reply traffic).
                plan = plan.rule(FaultRule {
                    window: Window::ALWAYS,
                    scope: Scope::Link { from: id, to: origin },
                    action: Action::Duplicate { p: 1.0, copies: 1 },
                });
            }
        }
        sim.set_fault_plan(plan);
        let mut checker = InvariantChecker::relaxed();
        let qid = sim.issue_count_query(origin, half_space_query(&space));
        sim.run_to_quiescence_checked(&mut checker)
            .unwrap_or_else(|v| panic!("invariant violated under seed {seed}: {v}"));
        let st = sim.query_stats(qid).unwrap();
        assert!(st.completed, "seed {seed}: count query never completed");
        // `st.duplicates` only counts duplicate QUERY receipts; duplicated
        // replies are invisible to it. The origin having forwarded at all
        // (messages > 0) guarantees it received every reply twice.
        assert!(st.messages > 0, "seed {seed}: query never left the origin");
        assert!(st.truth > 1, "seed {seed}: trivial ground truth proves nothing");
        assert_eq!(
            st.reported, st.truth,
            "seed {seed}: duplicated replies were double-counted"
        );
    }
}
