//! Integration of the observability layer with the simulator: traces
//! reconstruct to one rooted tree per query, injected duplicates are
//! flagged at the offending hop, and — the contract everything else rests
//! on — installing an observer never perturbs the simulation itself.

use std::sync::Arc;

use attrspace::{Query, Space};
use autosel_obs::{jsonl::parse_trace, JsonlSink, ObsHandle, Registry, TraceTree};
use overlay_sim::faults::FaultPlan;
use overlay_sim::{LatencyModel, Placement, SimCluster, SimConfig};

fn traced_sim(seed: u64, n: usize) -> (SimCluster, Space, Arc<TraceTree>) {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut cfg = SimConfig::fast_static();
    cfg.protocol.query_timeout_ms = 8_000;
    cfg.latency = LatencyModel::Constant { ms: 5 };
    let mut sim = SimCluster::new(space.clone(), cfg, seed);
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, n);
    sim.wire_oracle();
    let tree = Arc::new(TraceTree::new());
    sim.set_observer(ObsHandle::new(tree.clone()));
    (sim, space, tree)
}

fn half_space_query(space: &Space) -> Query {
    Query::builder(space).min("a0", 40).build().unwrap()
}

#[test]
fn clean_run_reconstructs_one_rooted_tree_per_query() {
    let (mut sim, space, tree) = traced_sim(42, 100);
    let mut origins = Vec::new();
    for _ in 0..3 {
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, half_space_query(&space), None);
        sim.run_to_quiescence();
        origins.push((qid, origin));
        sim.forget_query(qid);
    }
    assert_eq!(tree.problems(), Vec::<String>::new());
    let queries = tree.queries();
    assert_eq!(queries.len(), 3);
    for (qid, origin) in origins {
        let qref = queries
            .iter()
            .find(|q| q.origin == qid.origin && q.seq == qid.seq)
            .copied()
            .unwrap_or_else(|| panic!("query {qid:?} missing from trace"));
        let qt = tree.query(qref).expect("trace recorded");
        assert_eq!(qt.root, origin, "root of the routing tree is the origin");
        assert!(qt.completed.is_some(), "origin observed completion");
        let s = tree.summary(qref).expect("summary");
        assert!(s.hops > 1, "query never left the origin");
        assert_eq!(s.duplicates, 0, "clean run must not flag duplicates");
        assert_eq!(s.timeouts, 0);
        assert_eq!(s.leaked, 0, "no pending state may leak");
    }
}

#[test]
fn duplication_faults_are_flagged_at_the_offending_hop() {
    let (mut sim, space, tree) = traced_sim(11, 100);
    sim.set_fault_plan(FaultPlan::new().duplicate_protocol(0.5, 1));
    let origin = sim.random_node();
    let qid = sim.issue_query(origin, half_space_query(&space), None);
    sim.run_to_quiescence();
    sim.forget_query(qid);

    // Duplicate deliveries are protocol-level noise, not trace corruption.
    assert_eq!(tree.problems(), Vec::<String>::new());
    let q = tree.queries()[0];
    let s = tree.summary(q).expect("summary");
    assert!(s.duplicates > 0, "seeded duplication produced no duplicate receipts");
    let rendered = tree.render(q).expect("render");
    assert!(rendered.contains("!dup("), "duplicate hops must be flagged inline:\n{rendered}");
}

/// The determinism contract: a traced run and an untraced run of the same
/// seed produce byte-identical per-query stats. Observers only *watch* —
/// they must never consume protocol randomness or reorder events. This is
/// what keeps `sweepbench` digests identical whether or not tracing is on.
#[test]
fn observers_do_not_perturb_the_simulation() {
    let run = |observe: bool| -> Vec<String> {
        let space = Space::uniform(3, 80, 3).unwrap();
        let mut sim = SimCluster::new(space.clone(), SimConfig::fast_static(), 7);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 120);
        sim.wire_oracle();
        if observe {
            // Heaviest stack available: metrics + trace + serialization.
            let mut fan = autosel_obs::Fanout::new();
            fan.push(Arc::new(Registry::new()));
            fan.push(Arc::new(TraceTree::new()));
            let (sink, _buf) = JsonlSink::shared_buffer();
            fan.push(Arc::new(sink));
            sim.set_observer(ObsHandle::of(fan));
        }
        let mut out = Vec::new();
        for _ in 0..4 {
            let origin = sim.random_node();
            let qid = sim.issue_query(origin, half_space_query(&space), None);
            sim.run_to_quiescence();
            out.push(sim.query_stats(qid).unwrap().fingerprint());
            sim.forget_query(qid);
        }
        out
    };
    assert_eq!(run(false), run(true), "observer presence changed the simulation");
}

/// JSONL round-trip: streaming events through the serializer and parser
/// rebuilds the exact same trace tree a live observer saw.
#[test]
fn jsonl_roundtrip_rebuilds_the_live_tree() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut sim = SimCluster::new(space.clone(), SimConfig::fast_static(), 97);
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 80);
    sim.wire_oracle();
    let live = Arc::new(TraceTree::new());
    let (sink, buf) = JsonlSink::shared_buffer();
    let mut fan = autosel_obs::Fanout::new();
    fan.push(live.clone());
    fan.push(Arc::new(sink));
    sim.set_observer(ObsHandle::of(fan));

    let origin = sim.random_node();
    let qid = sim.issue_query(origin, half_space_query(&space), None);
    sim.run_to_quiescence();
    sim.forget_query(qid);

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let events = parse_trace(&text).expect("recorded trace parses");
    assert!(!events.is_empty());
    let replayed = TraceTree::new();
    for ev in &events {
        replayed.apply(ev);
    }
    let q = live.queries()[0];
    assert_eq!(replayed.queries(), live.queries());
    assert_eq!(replayed.render(q), live.render(q), "replay diverged from live trace");
    assert_eq!(replayed.problems(), live.problems());
}

/// Gossip health gauges tick when the membership layer is on: the registry
/// sees per-round view sizes and the cluster aggregate reflects real links.
#[test]
fn gossip_rounds_feed_health_gauges() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut cfg = SimConfig::default();
    cfg.gossip.period_ms = 1_000;
    let mut sim = SimCluster::new(space, cfg, 5);
    let reg = Arc::new(Registry::new());
    sim.set_observer(ObsHandle::new(reg.clone()));
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 30);
    sim.run_until(20_000);

    assert!(reg.counter("event.gossip_round") > 0, "no gossip rounds observed");
    let sizes = reg.histogram("gossip.view_size.random").expect("random-layer gauge");
    assert!(sizes.count() > 0 && sizes.max() > 0, "random views never filled");
    let (random, semantic) = sim.gossip_health();
    assert_eq!(random.nodes, 30);
    assert!(random.links > 0, "no random-layer links after 20 virtual seconds");
    assert!(semantic.links > 0, "no semantic links after 20 virtual seconds");
    assert!(
        random.turnover >= random.links,
        "turnover counts every admission, so it can never trail the live link count"
    );
}
