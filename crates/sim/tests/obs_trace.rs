//! Integration of the observability layer with the simulator: traces
//! reconstruct to one rooted tree per query, injected duplicates are
//! flagged at the offending hop, and — the contract everything else rests
//! on — installing an observer never perturbs the simulation itself.

use std::sync::Arc;

use attrspace::{Query, Space};
use autosel_obs::{
    jsonl::parse_trace, FlightRecorder, JsonlSink, ObsHandle, Registry, TraceTree, WindowSpec,
};
use overlay_sim::faults::FaultPlan;
use overlay_sim::{InvariantChecker, LatencyModel, Placement, SimCluster, SimConfig};

fn traced_sim(seed: u64, n: usize) -> (SimCluster, Space, Arc<TraceTree>) {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut cfg = SimConfig::fast_static();
    cfg.protocol.query_timeout_ms = 8_000;
    cfg.latency = LatencyModel::Constant { ms: 5 };
    let mut sim = SimCluster::new(space.clone(), cfg, seed);
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, n);
    sim.wire_oracle();
    let tree = Arc::new(TraceTree::new());
    sim.set_observer(ObsHandle::new(tree.clone()));
    (sim, space, tree)
}

fn half_space_query(space: &Space) -> Query {
    Query::builder(space).min("a0", 40).build().unwrap()
}

#[test]
fn clean_run_reconstructs_one_rooted_tree_per_query() {
    let (mut sim, space, tree) = traced_sim(42, 100);
    let mut origins = Vec::new();
    for _ in 0..3 {
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, half_space_query(&space), None);
        sim.run_to_quiescence();
        origins.push((qid, origin));
        sim.forget_query(qid);
    }
    assert_eq!(tree.problems(), Vec::<String>::new());
    let queries = tree.queries();
    assert_eq!(queries.len(), 3);
    for (qid, origin) in origins {
        let qref = queries
            .iter()
            .find(|q| q.origin == qid.origin && q.seq == qid.seq)
            .copied()
            .unwrap_or_else(|| panic!("query {qid:?} missing from trace"));
        let qt = tree.query(qref).expect("trace recorded");
        assert_eq!(qt.root, origin, "root of the routing tree is the origin");
        assert!(qt.completed.is_some(), "origin observed completion");
        let s = tree.summary(qref).expect("summary");
        assert!(s.hops > 1, "query never left the origin");
        assert_eq!(s.duplicates, 0, "clean run must not flag duplicates");
        assert_eq!(s.timeouts, 0);
        assert_eq!(s.leaked, 0, "no pending state may leak");
    }
}

#[test]
fn duplication_faults_are_flagged_at_the_offending_hop() {
    let (mut sim, space, tree) = traced_sim(11, 100);
    sim.set_fault_plan(FaultPlan::new().duplicate_protocol(0.5, 1));
    let origin = sim.random_node();
    let qid = sim.issue_query(origin, half_space_query(&space), None);
    sim.run_to_quiescence();
    sim.forget_query(qid);

    // Duplicate deliveries are protocol-level noise, not trace corruption.
    assert_eq!(tree.problems(), Vec::<String>::new());
    let q = tree.queries()[0];
    let s = tree.summary(q).expect("summary");
    assert!(s.duplicates > 0, "seeded duplication produced no duplicate receipts");
    let rendered = tree.render(q).expect("render");
    assert!(rendered.contains("!dup("), "duplicate hops must be flagged inline:\n{rendered}");
}

/// The determinism contract: a traced run and an untraced run of the same
/// seed produce byte-identical per-query stats. Observers only *watch* —
/// they must never consume protocol randomness or reorder events. This is
/// what keeps `sweepbench` digests identical whether or not tracing is on.
#[test]
fn observers_do_not_perturb_the_simulation() {
    let run = |observe: bool| -> Vec<String> {
        let space = Space::uniform(3, 80, 3).unwrap();
        let mut sim = SimCluster::new(space.clone(), SimConfig::fast_static(), 7);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 120);
        sim.wire_oracle();
        if observe {
            // Heaviest stack available: windowed metrics + flight ring +
            // trace + serialization.
            let mut fan = autosel_obs::Fanout::new();
            fan.push(Arc::new(Registry::with_windows(WindowSpec::new(500, 16))));
            fan.push(Arc::new(FlightRecorder::new(256)));
            fan.push(Arc::new(TraceTree::new()));
            let (sink, _buf) = JsonlSink::shared_buffer();
            fan.push(Arc::new(sink));
            sim.set_observer(ObsHandle::of(fan));
        }
        let mut out = Vec::new();
        for _ in 0..4 {
            let origin = sim.random_node();
            let qid = sim.issue_query(origin, half_space_query(&space), None);
            sim.run_to_quiescence();
            out.push(sim.query_stats(qid).unwrap().fingerprint());
            sim.forget_query(qid);
        }
        out
    };
    assert_eq!(run(false), run(true), "observer presence changed the simulation");
}

/// JSONL round-trip: streaming events through the serializer and parser
/// rebuilds the exact same trace tree a live observer saw.
#[test]
fn jsonl_roundtrip_rebuilds_the_live_tree() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut sim = SimCluster::new(space.clone(), SimConfig::fast_static(), 97);
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 80);
    sim.wire_oracle();
    let live = Arc::new(TraceTree::new());
    let (sink, buf) = JsonlSink::shared_buffer();
    let mut fan = autosel_obs::Fanout::new();
    fan.push(live.clone());
    fan.push(Arc::new(sink));
    sim.set_observer(ObsHandle::of(fan));

    let origin = sim.random_node();
    let qid = sim.issue_query(origin, half_space_query(&space), None);
    sim.run_to_quiescence();
    sim.forget_query(qid);

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let events = parse_trace(&text).expect("recorded trace parses");
    assert!(!events.is_empty());
    let replayed = TraceTree::new();
    for ev in &events {
        replayed.apply(ev);
    }
    let q = live.queries()[0];
    assert_eq!(replayed.queries(), live.queries());
    assert_eq!(replayed.render(q), live.render(q), "replay diverged from live trace");
    assert_eq!(replayed.problems(), live.problems());
}

/// Windowed metrics under virtual time are fully deterministic: the
/// registry feeds its sliding windows from event timestamps (never a wall
/// clock), so two same-seed runs render byte-identical windowed snapshots —
/// rates, windowed quantiles and all.
#[test]
fn windowed_snapshots_are_virtual_time_deterministic() {
    let run = || -> String {
        let space = Space::uniform(3, 80, 3).unwrap();
        let mut sim = SimCluster::new(space.clone(), SimConfig::fast_static(), 23);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 100);
        sim.wire_oracle();
        let reg = Arc::new(Registry::with_windows(WindowSpec::new(1_000, 8)));
        sim.set_observer(ObsHandle::new(reg.clone()));
        for _ in 0..3 {
            let origin = sim.random_node();
            let qid = sim.issue_query(origin, half_space_query(&space), None);
            sim.run_to_quiescence();
            sim.forget_query(qid);
        }
        // Snapshot at the run's own virtual end time: same events, same
        // timestamps, same window contents.
        reg.window_snapshot(sim.now()).render()
    };
    let a = run();
    assert!(a.contains("event.query_issued"), "windows never saw the event stream:\n{a}");
    assert_eq!(a, run(), "windowed snapshot depends on something besides the event stream");
}

/// The flight-recorder post-mortem path: a duplication fault trips the
/// strict invariant checker, and the recorder — installed alongside the
/// registry via `add_observers` — holds the last K events leading up to
/// the violation, dumpable as JSONL that the closed-schema trace parser
/// accepts. Bounded memory: the ring kept at most K of the many more
/// events the run emitted, and exactly the most recent ones, in order.
#[test]
fn invariant_violation_dumps_a_parseable_flight_recording() {
    const K: usize = 64;
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut cfg = SimConfig::fast_static();
    cfg.protocol.query_timeout_ms = 8_000;
    cfg.latency = LatencyModel::Constant { ms: 5 };
    let mut sim = SimCluster::new(space.clone(), cfg, 11);
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 100);
    sim.wire_oracle();
    let flight = Arc::new(FlightRecorder::new(K));
    let reg = Arc::new(Registry::new());
    sim.add_observers(vec![flight.clone(), reg.clone()]);

    // Fill the ring with healthy traffic first — the recorder is always-on,
    // not armed by the fault — so the dump shows the lead-up, not just the
    // crash site.
    for _ in 0..2 {
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, half_space_query(&space), None);
        sim.run_to_quiescence();
        sim.forget_query(qid);
    }

    // Duplicate every protocol message once: the strict checker forbids
    // duplicate deliveries, so the run must halt at the first one.
    sim.set_fault_plan(FaultPlan::new().duplicate_protocol(1.0, 1));
    let origin = sim.random_node();
    let _ = sim.issue_query(origin, half_space_query(&space), None);
    let violation = sim
        .run_to_quiescence_checked(&mut InvariantChecker::strict())
        .expect_err("seeded duplication must trip the strict checker");
    let rendered = violation.to_string();
    assert!(rendered.contains("duplicate"), "unexpected violation: {rendered}");

    // The ring is a bounded window onto a larger stream…
    assert_eq!(flight.len(), K, "expected a full ring at the violation point");
    assert!(
        flight.total_seen() > K as u64,
        "run too small to exercise wraparound ({} events)",
        flight.total_seen()
    );
    assert_eq!(flight.dropped(), flight.total_seen() - K as u64);

    // …whose dump is ordinary trace JSONL: closed schema, monotone-ish
    // event times, parseable by the same parser as a full trace.
    let mut dump = Vec::new();
    let lines = flight.dump_jsonl(&mut dump).expect("in-memory dump");
    assert_eq!(lines, K as u64);
    let events = parse_trace(std::str::from_utf8(&dump).unwrap()).expect("dump parses");
    assert_eq!(events.len(), K);
    assert!(
        events.windows(2).all(|w| w[0].at() <= w[1].at()),
        "flight dump out of order"
    );
    // The ring held the *most recent* events: its newest timestamp is the
    // newest the registry saw anywhere.
    let newest = events.last().unwrap().at();
    assert_eq!(newest, sim.now(), "ring tail should sit at the violating instant");
}

/// Gossip health gauges tick when the membership layer is on: the registry
/// sees per-round view sizes and the cluster aggregate reflects real links.
#[test]
fn gossip_rounds_feed_health_gauges() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut cfg = SimConfig::default();
    cfg.gossip.period_ms = 1_000;
    let mut sim = SimCluster::new(space, cfg, 5);
    let reg = Arc::new(Registry::new());
    sim.set_observer(ObsHandle::new(reg.clone()));
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 30);
    sim.run_until(20_000);

    assert!(reg.counter("event.gossip_round") > 0, "no gossip rounds observed");
    let sizes = reg.histogram("gossip.view_size.random").expect("random-layer gauge");
    assert!(sizes.count() > 0 && sizes.max() > 0, "random views never filled");
    let (random, semantic) = sim.gossip_health();
    assert_eq!(random.nodes, 30);
    assert!(random.links > 0, "no random-layer links after 20 virtual seconds");
    assert!(semantic.links > 0, "no semantic links after 20 virtual seconds");
    assert!(
        random.turnover >= random.links,
        "turnover counts every admission, so it can never trail the live link count"
    );
}
