//! The simulator is a measurement instrument: identical seeds must replay
//! identically, across populations, gossip, churn and queries.

use attrspace::{Query, Space};
use overlay_sim::{FaultPlan, LatencyModel, Placement, QueryStats, SimCluster, SimConfig};

fn run_scenario(seed: u64) -> (Vec<u64>, f64, u64, u64) {
    let space = Space::uniform(4, 80, 3).unwrap();
    let mut cfg = SimConfig {
        latency: LatencyModel::Uniform { lo_ms: 5, hi_ms: 50 },
        ..SimConfig::default()
    };
    cfg.gossip.period_ms = 1_000;
    let placement = Placement::Uniform { lo: 0, hi: 80 };
    let mut sim = SimCluster::new(space.clone(), cfg, seed);
    sim.populate(&placement, 80);
    sim.run_until(12_000);
    sim.churn_step(0.05, &placement);
    sim.run_until(18_000);

    let query = Query::builder(&space).min("a1", 30).build().unwrap();
    let origin = sim.random_node();
    let qid = sim.issue_query(origin, query, None);
    sim.run_until(60_000);
    let st = sim.query_stats(qid).unwrap();
    let ids = sim.node_ids().to_vec();
    (ids, st.delivery(), st.messages, st.overhead)
}

#[test]
fn identical_seeds_replay_identically() {
    let a = run_scenario(424242);
    let b = run_scenario(424242);
    assert_eq!(a, b, "same seed must give bit-identical runs");
}

#[test]
fn different_seeds_diverge() {
    let a = run_scenario(1);
    let b = run_scenario(2);
    // Populations share sizes but node placements and traffic differ.
    assert_ne!((a.2, a.3), (b.2, b.3), "different seeds should differ");
}

/// Fault injection draws from the cluster's own seeded RNG, so the same
/// seed and the same [`FaultPlan`] must replay to *identical* per-query
/// stats — every field, including which nodes were reached and how many
/// duplicates landed. This is what makes a failing fault-matrix seed a
/// reproducible bug report (see `docs/TESTING.md`).
#[test]
fn same_seed_and_fault_plan_replay_identical_stats() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let plan = FaultPlan::new()
        .drop_all(0.10)
        .delay_all(0.3, 10, 80)
        .duplicate_protocol(0.2, 1)
        .crash(5_000, 3)
        .restart(40_000, 3);
    let run = |seed: u64| -> Vec<QueryStats> {
        let mut cfg = SimConfig::fast_static();
        cfg.protocol.query_timeout_ms = 8_000;
        cfg.latency = LatencyModel::Constant { ms: 5 };
        let mut sim = SimCluster::new(space.clone(), cfg, seed);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 150);
        sim.wire_oracle();
        sim.set_fault_plan(plan.clone());
        let query = Query::builder(&space).min("a0", 40).build().unwrap();
        let mut out = Vec::new();
        for _ in 0..3 {
            let origin = sim.random_node();
            let qid = sim.issue_query(origin, query.clone(), None);
            sim.run_to_quiescence();
            out.push(sim.query_stats(qid).unwrap().clone());
        }
        out
    };
    let a = run(31337);
    assert_eq!(a, run(31337), "same seed + same plan must be byte-identical");
    assert_ne!(a, run(31338), "a different seed draws a different fault schedule");
}

#[test]
fn oracle_wiring_is_deterministic_too() {
    let space = Space::uniform(5, 80, 3).unwrap();
    let build = || {
        let mut sim = SimCluster::new(space.clone(), SimConfig::fast_static(), 9);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 250);
        sim.wire_oracle();
        let query = Query::builder(&space).min("a0", 40).build().unwrap();
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, query, Some(50));
        sim.run_to_quiescence();
        let st = sim.query_stats(qid).unwrap();
        (st.messages, st.overhead, st.reported, st.latency())
    };
    assert_eq!(build(), build());
}
