//! The simulator is a measurement instrument: identical seeds must replay
//! identically, across populations, gossip, churn and queries.

use attrspace::{Query, Space};
use overlay_sim::{LatencyModel, Placement, SimCluster, SimConfig};

fn run_scenario(seed: u64) -> (Vec<u64>, f64, u64, u64) {
    let space = Space::uniform(4, 80, 3).unwrap();
    let mut cfg = SimConfig {
        latency: LatencyModel::Uniform { lo_ms: 5, hi_ms: 50 },
        ..SimConfig::default()
    };
    cfg.gossip.period_ms = 1_000;
    let placement = Placement::Uniform { lo: 0, hi: 80 };
    let mut sim = SimCluster::new(space.clone(), cfg, seed);
    sim.populate(&placement, 80);
    sim.run_until(12_000);
    sim.churn_step(0.05, &placement);
    sim.run_until(18_000);

    let query = Query::builder(&space).min("a1", 30).build().unwrap();
    let origin = sim.random_node();
    let qid = sim.issue_query(origin, query, None);
    sim.run_until(60_000);
    let st = sim.query_stats(qid).unwrap();
    let mut ids = sim.node_ids();
    ids.sort_unstable();
    (ids, st.delivery(), st.messages, st.overhead)
}

#[test]
fn identical_seeds_replay_identically() {
    let a = run_scenario(424242);
    let b = run_scenario(424242);
    assert_eq!(a, b, "same seed must give bit-identical runs");
}

#[test]
fn different_seeds_diverge() {
    let a = run_scenario(1);
    let b = run_scenario(2);
    // Populations share sizes but node placements and traffic differ.
    assert_ne!((a.2, a.3), (b.2, b.3), "different seeds should differ");
}

#[test]
fn oracle_wiring_is_deterministic_too() {
    let space = Space::uniform(5, 80, 3).unwrap();
    let build = || {
        let mut sim = SimCluster::new(space.clone(), SimConfig::fast_static(), 9);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 250);
        sim.wire_oracle();
        let query = Query::builder(&space).min("a0", 40).build().unwrap();
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, query, Some(50));
        sim.run_to_quiescence();
        let st = sim.query_stats(qid).unwrap();
        (st.messages, st.overhead, st.reported, st.latency())
    };
    assert_eq!(build(), build());
}
