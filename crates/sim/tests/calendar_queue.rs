//! Digest parity between the calendar-queue simulator and the pinned
//! benchmark trajectory.
//!
//! `BENCH_sim.json` pins a per-N digest of 40 best-case queries against an
//! oracle-wired static cluster (see `sweepbench`); those digests survived
//! the `BinaryHeap` → calendar-queue migration byte-for-byte, and this
//! test keeps them surviving: it replays the N=1000 point in-process and
//! asserts the exact pinned value. Any hot-path data structure that
//! perturbs event order, RNG draw order or iteration order moves this
//! digest — failing here, not silently in the bench file.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use attrspace::Space;
use overlay_sim::workload::best_case_query;
use overlay_sim::{Placement, SimCluster, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The `current`-tag N=1000 digest in `BENCH_sim.json`. Re-pin together
/// with the bench file (and state why) if a change intentionally alters
/// execution order.
const PINNED_N1000_DIGEST: u64 = 0x022c_8805_bf06_2b8c;

/// Mirrors `sweepbench::single_run(1000, 42)`: same space, placement,
/// workload constants (f = 0.125, σ = 50 — `bench::experiments` defaults,
/// inlined because sim does not depend on bench) and hashing scheme.
#[test]
fn full_run_digest_matches_pinned_bench_entry() {
    let space = Space::uniform(5, 80, 3).expect("space");
    let placement = Placement::Uniform { lo: 0, hi: 80 };
    let mut sim = SimCluster::new(space.clone(), SimConfig::fast_static(), 42);
    sim.populate(&placement, 1000);
    sim.wire_oracle();

    let mut rng = StdRng::seed_from_u64(42 ^ 0x51EE_BE7C);
    let mut hasher = DefaultHasher::new();
    for _ in 0..40 {
        let q = best_case_query(&space, 0.125, &mut rng);
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, q, Some(50));
        sim.run_to_quiescence();
        sim.query_stats(qid).expect("stats").fingerprint().hash(&mut hasher);
        sim.forget_query(qid);
    }
    assert_eq!(
        hasher.finish(),
        PINNED_N1000_DIGEST,
        "simulation digest diverged from the pinned BENCH_sim.json N=1000 entry; \
         if intentional, re-pin the bench file and this constant together"
    );
}
