//! Robustness beyond the paper's failure models: random message loss and
//! the timeout backstop. The paper assumes reliable links between live
//! nodes (TCP); these tests quantify what happens when that assumption is
//! relaxed.

use attrspace::{Query, Space};
use overlay_sim::{LatencyModel, Placement, SimCluster, SimConfig};

fn lossy_config(loss: f64) -> SimConfig {
    SimConfig {
        latency: LatencyModel::Lossy { lo_ms: 1, hi_ms: 5, loss },
        protocol: autosel_core::ProtocolConfig {
            query_timeout_ms: 2_000,
            ..Default::default()
        },
        gossip_enabled: false,
        ..SimConfig::default()
    }
}

/// One lost QUERY abandons its subtree, but `T(q)` unfreezes the waiting
/// node and the traversal continues — partial delivery, full termination.
#[test]
fn queries_terminate_under_message_loss() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut sim = SimCluster::new(space.clone(), lossy_config(0.02), 18);
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 500);
    sim.wire_oracle();

    let mut total_delivery = 0.0;
    let queries = 10;
    for _ in 0..queries {
        let q = Query::builder(&space).min("a0", 40).build().unwrap();
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, q, None);
        sim.run_to_quiescence();
        let st = sim.query_stats(qid).unwrap();
        total_delivery += st.delivery();
        sim.forget_query(qid);
    }
    let mean = total_delivery / queries as f64;
    assert!(mean > 0.7, "2% loss should not devastate delivery: {mean:.3}");
    assert!(mean < 1.0 + 1e-9);
}

/// Heavy loss degrades delivery monotonically but never wedges the system:
/// every query still terminates (no event-queue leak, no stuck pending).
#[test]
fn heavy_loss_degrades_gracefully() {
    let space = Space::uniform(3, 80, 3).unwrap();
    let mut deliveries = Vec::new();
    for &loss in &[0.0, 0.05, 0.25] {
        let mut sim = SimCluster::new(space.clone(), lossy_config(loss), 23);
        sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 300);
        sim.wire_oracle();
        let q = Query::builder(&space).min("a0", 30).build().unwrap();
        let mut sum = 0.0;
        for _ in 0..5 {
            let origin = sim.random_node();
            let qid = sim.issue_query(origin, q.clone(), None);
            sim.run_to_quiescence();
            sum += sim.query_stats(qid).unwrap().delivery();
            sim.forget_query(qid);
        }
        deliveries.push(sum / 5.0);
    }
    assert!((deliveries[0] - 1.0).abs() < 1e-9, "no loss → perfect");
    assert!(deliveries[1] > deliveries[2], "more loss, less delivery");
    assert!(deliveries[2] > 0.05, "even 25% loss finds something");
}

/// With σ set, lost branches cost extra time but the threshold is still
/// usually met — the redundancy σ-overshoot buys in practice.
#[test]
fn sigma_queries_usually_fill_under_loss() {
    let space = Space::uniform(5, 80, 3).unwrap();
    let mut sim = SimCluster::new(space.clone(), lossy_config(0.05), 29);
    sim.populate(&Placement::Uniform { lo: 0, hi: 80 }, 1_000);
    sim.wire_oracle();
    let mut filled = 0;
    for _ in 0..10 {
        let q = Query::builder(&space).min("a0", 20).build().unwrap();
        let origin = sim.random_node();
        let qid = sim.issue_query(origin, q, Some(20));
        sim.run_to_quiescence();
        if sim.query_stats(qid).unwrap().reported >= 20 {
            filled += 1;
        }
        sim.forget_query(qid);
    }
    assert!(filled >= 7, "σ met in only {filled}/10 lossy runs");
}
