//! Availability sessions: volunteer hosts are not merely *churning at a
//! rate* — they come and go on heavy-tailed session lengths (the XtremLab
//! measurements the paper cites (its reference 5) exist precisely to characterize this).
//! This module turns a synthetic host population into a deterministic
//! join/leave schedule that a simulator can replay, giving the churn
//! experiments realistic *per-host* dynamics instead of a uniform rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::lognormal;
use crate::Host;

/// One membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// Host `host` comes online (by trace index).
    Join {
        /// Index into the host population.
        host: usize,
    },
    /// Host `host` goes offline ungracefully.
    Leave {
        /// Index into the host population.
        host: usize,
    },
}

/// A time-ordered join/leave schedule over a host population.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// `(time in seconds, event)`, sorted by time.
    events: Vec<(u64, SessionEvent)>,
}

impl Schedule {
    /// Generates a schedule over `horizon_s` seconds: each host alternates
    /// online sessions (log-normal around its `uptime_hours`) and offline
    /// gaps (log-normal around `offline_mean_s`). Hosts start online with
    /// probability equal to their availability.
    ///
    /// Deterministic per seed.
    pub fn generate(hosts: &[Host], horizon_s: u64, offline_mean_s: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for (i, h) in hosts.iter().enumerate() {
            let online_mean_s = (h.uptime_hours.max(1) * 3600) as f64;
            let mu_on = online_mean_s.ln();
            let mu_off = (offline_mean_s.max(1) as f64).ln();
            let mut t = 0u64;
            let mut online = rng.gen_range(0..100u64) < h.availability_pct;
            if online {
                events.push((0, SessionEvent::Join { host: i }));
            }
            while t < horizon_s {
                let mu = if online { mu_on } else { mu_off };
                let dur = lognormal(&mut rng, mu, 0.7).clamp(60.0, horizon_s as f64) as u64;
                t = t.saturating_add(dur);
                if t >= horizon_s {
                    break;
                }
                online = !online;
                events.push((
                    t,
                    if online {
                        SessionEvent::Join { host: i }
                    } else {
                        SessionEvent::Leave { host: i }
                    },
                ));
            }
        }
        events.sort_by_key(|&(t, _)| t);
        Schedule { events }
    }

    /// All events in time order.
    pub fn events(&self) -> &[(u64, SessionEvent)] {
        &self.events
    }

    /// Events in the half-open window `[from_s, to_s)`.
    pub fn window(&self, from_s: u64, to_s: u64) -> impl Iterator<Item = &(u64, SessionEvent)> {
        self.events
            .iter()
            .skip_while(move |&&(t, _)| t < from_s)
            .take_while(move |&&(t, _)| t < to_s)
    }

    /// Number of hosts online at time `t_s` (prefix scan).
    pub fn online_at(&self, t_s: u64) -> usize {
        let mut online = std::collections::HashSet::new();
        for &(t, ev) in &self.events {
            if t > t_s {
                break;
            }
            match ev {
                SessionEvent::Join { host } => {
                    online.insert(host);
                }
                SessionEvent::Leave { host } => {
                    online.remove(&host);
                }
            }
        }
        online.len()
    }

    /// Mean churn rate: membership changes per host per `interval_s`.
    pub fn churn_rate(&self, hosts: usize, horizon_s: u64, interval_s: u64) -> f64 {
        if hosts == 0 || horizon_s == 0 {
            return 0.0;
        }
        let intervals = horizon_s as f64 / interval_s as f64;
        self.events.len() as f64 / hosts as f64 / intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostGenerator;

    fn hosts(n: usize) -> Vec<Host> {
        HostGenerator::new(4).take(n).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let h = hosts(50);
        let a = Schedule::generate(&h, 10_000, 3_600, 7);
        let b = Schedule::generate(&h, 10_000, 3_600, 7);
        assert_eq!(a.events(), b.events());
        let c = Schedule::generate(&h, 10_000, 3_600, 8);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn events_are_time_ordered_and_alternating() {
        let h = hosts(30);
        let s = Schedule::generate(&h, 50_000, 1_800, 1);
        let mut last = 0;
        for &(t, _) in s.events() {
            assert!(t >= last);
            last = t;
        }
        // Per host: joins and leaves strictly alternate.
        for i in 0..h.len() {
            let mut online = false;
            for &(_, ev) in s.events() {
                match ev {
                    SessionEvent::Join { host } if host == i => {
                        assert!(!online, "double join for host {i}");
                        online = true;
                    }
                    SessionEvent::Leave { host } if host == i => {
                        assert!(online, "leave before join for host {i}");
                        online = false;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn majority_online_for_available_population() {
        let h = hosts(200);
        let s = Schedule::generate(&h, 100_000, 1_800, 2);
        let mid = s.online_at(50_000);
        assert!(mid > 40, "only {mid}/200 online at the midpoint");
        assert!(mid <= 200);
    }

    #[test]
    fn window_selects_subrange() {
        let h = hosts(40);
        let s = Schedule::generate(&h, 30_000, 1_200, 3);
        let total = s.events().len();
        let windowed: usize = s.window(0, 30_000).count();
        assert_eq!(windowed, total);
        let early: usize = s.window(0, 1).count();
        assert!(early <= total);
        for &(t, _) in s.window(5_000, 10_000) {
            assert!((5_000..10_000).contains(&t));
        }
    }

    #[test]
    fn churn_rate_is_positive_and_sane() {
        let h = hosts(100);
        let s = Schedule::generate(&h, 200_000, 1_800, 5);
        let rate = s.churn_rate(100, 200_000, 10);
        assert!(rate > 0.0, "some churn must occur");
        assert!(rate < 1.0, "hosts do not flap every 10 s: {rate}");
    }
}
