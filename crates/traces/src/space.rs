use attrspace::{Dimension, Space, SpaceError};

use crate::ATTRIBUTE_NAMES;

/// Builds a [`Space`] over the 16 host attributes whose bucket boundaries
/// are *quantiles* of the supplied sample — the paper's non-uniform cell
/// ranges for skewed value distributions (§4.1: "One cell may range over
/// memory between 0 and 128 MB, and another one between 4 GB and 8 GB").
///
/// Each dimension gets `2^max_level` buckets holding roughly equal node
/// counts; where a value is so popular that quantiles collide (e.g. 87%
/// Windows), boundaries are nudged upward to stay strictly increasing, so
/// popular values concentrate in one bucket exactly as real skew demands.
///
/// # Errors
///
/// Returns an error if the sample is empty, rows have the wrong arity, or a
/// dimension's values are so degenerate that no strictly increasing boundary
/// set exists.
pub fn fit_space(rows: &[Vec<u64>], max_level: u8) -> Result<Space, SpaceError> {
    let d = ATTRIBUTE_NAMES.len();
    if rows.is_empty() || rows.iter().any(|r| r.len() != d) {
        return Err(SpaceError::WrongArity {
            got: rows.first().map_or(0, |r| r.len()),
            expected: d,
        });
    }
    let buckets = 1usize << max_level;
    let mut builder = Space::builder().max_level(max_level);
    for (k, name) in ATTRIBUTE_NAMES.iter().enumerate() {
        let mut col: Vec<u64> = rows.iter().map(|r| r[k]).collect();
        col.sort_unstable();
        let mut boundaries = Vec::with_capacity(buckets - 1);
        // Boundaries must be ≥ 1 (a 0 boundary would make bucket 0
        // unreachable) and strictly increasing even on degenerate columns.
        let mut last: u64 = 0;
        for q in 1..buckets {
            let idx = q * col.len() / buckets;
            let b = col[idx.min(col.len() - 1)].max(last + 1);
            boundaries.push(b);
            last = b;
        }
        builder = builder.dimension(Dimension::with_boundaries(*name, boundaries)?);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostGenerator;

    #[test]
    fn quantile_buckets_are_roughly_balanced() {
        let rows: Vec<Vec<u64>> = HostGenerator::new(5).take(4000).map(|h| h.to_values()).collect();
        let space = fit_space(&rows, 3).unwrap();
        assert_eq!(space.dims(), 16);
        // For a continuous attribute (disk_gb, index 4) buckets should hold
        // roughly n/8 hosts each.
        let dim = &space.dimensions()[4];
        let mut counts = [0usize; 8];
        for r in &rows {
            counts[dim.bucket(r[4]) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (rows.len() / 16..rows.len() / 4).contains(c),
                "bucket {i} holds {c} of {}",
                rows.len()
            );
        }
    }

    #[test]
    fn degenerate_columns_still_build() {
        // os_family: 87% zeros — quantile boundaries collide and must be
        // nudged; the space must still build and classify.
        let rows: Vec<Vec<u64>> = HostGenerator::new(6).take(2000).map(|h| h.to_values()).collect();
        let space = fit_space(&rows, 3).unwrap();
        let os = &space.dimensions()[8];
        assert_eq!(os.bucket(0), 0, "windows lands in bucket 0");
        assert!(os.boundaries().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(fit_space(&[], 3).is_err());
        assert!(fit_space(&[vec![1, 2]], 3).is_err());
    }

    #[test]
    fn all_rows_are_valid_points() {
        let rows: Vec<Vec<u64>> = HostGenerator::new(7).take(500).map(|h| h.to_values()).collect();
        let space = fit_space(&rows, 2).unwrap();
        for r in &rows {
            let p = space.point(r).unwrap();
            let c = space.cell_coord(&p);
            assert!(c.indices().iter().all(|&i| i < 4));
        }
    }
}
