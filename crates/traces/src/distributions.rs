//! Small, dependency-free samplers for the skewed marginals of
//! volunteer-computing host populations.

use rand::Rng;

/// A standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal sample: `exp(mu + sigma * N(0,1))`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Zipf distribution over ranks `0..n` with exponent `s`, sampled by inverse
/// CDF over a precomputed table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the table for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .into_iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    /// Samples a rank in `0..n` (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A categorical distribution over `u64` values with explicit weights —
/// for OS families, CPU vendors and similar enumerations.
#[derive(Debug, Clone)]
pub struct CategoricalU64 {
    values: Vec<u64>,
    cdf: Vec<f64>,
}

impl CategoricalU64 {
    /// Builds the distribution from `(value, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or total weight is not positive.
    pub fn new(pairs: &[(u64, f64)]) -> Self {
        assert!(!pairs.is_empty(), "empty categorical");
        let total: f64 = pairs.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "total weight must be positive");
        let mut acc = 0.0;
        let mut values = Vec::with_capacity(pairs.len());
        let mut cdf = Vec::with_capacity(pairs.len());
        for (v, w) in pairs {
            acc += w / total;
            values.push(*v);
            cdf.push(acc);
        }
        CategoricalU64 { values, cdf }
    }

    /// Samples one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let i = self.cdf.partition_point(|&c| c < u).min(self.values.len() - 1);
        self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rank0_dominates() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
        assert!(counts[0] > 2_500, "rank 0 got {}", counts[0]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((1_700..2_300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let c = CategoricalU64::new(&[(7, 0.9), (13, 0.1)]);
        let mut rng = StdRng::seed_from_u64(2);
        let sevens = (0..5_000).filter(|_| c.sample(&mut rng) == 7).count();
        assert!((4_300..4_700).contains(&sevens), "{sevens}");
    }

    #[test]
    fn lognormal_is_skewed_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..20_000).map(|_| lognormal(&mut rng, 0.0, 1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[samples.len() / 2];
        assert!(mean > median, "right skew: mean {mean} median {median}");
        // E[lognormal(0,1)] = e^0.5 ≈ 1.65.
        assert!((mean - 1.65).abs() < 0.15, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
