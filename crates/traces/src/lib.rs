//! # synthtrace — synthetic volunteer-computing host traces
//!
//! The paper's load-distribution comparison (Fig. 9b) uses node attributes
//! from the **XtremLab** BOINC traces — "node properties seen for more than
//! 10,000 hosts in BOINC projects", which "are highly skewed". Those traces
//! are no longer distributed, so this crate synthesizes statistically
//! equivalent host populations:
//!
//! * 16 hardware/software attributes per host ([`Host`],
//!   [`ATTRIBUTE_NAMES`]) with heavily skewed marginals — log-normal sizes,
//!   Zipf-like categorical popularity (e.g. the overwhelming Windows share of
//!   2000s BOINC), power-of-two RAM ladders — and realistic correlations
//!   (more cores ⇒ more RAM ⇒ faster benchmark);
//! * a deterministic, seedable [`HostGenerator`];
//! * [`fit_space`] — builds an [`attrspace::Space`] whose per-dimension
//!   bucket boundaries are *quantiles* of an observed sample, exercising the
//!   paper's non-uniform cell boundaries (§4.1) exactly as a deployment
//!   facing skewed data would;
//! * [`scenario`] — a seeded, composable scenario DSL (session churn,
//!   flash crowds, diurnal load, correlated region failures, per-region
//!   latency matrices) compiled onto the simulator's fault/workload
//!   surfaces, plus the long-horizon [`scenario::SoakRunner`].
//!
//! What matters for reproducing Fig. 9(b) is only the *skew* of the
//! marginals: SWORD-style DHT mappings concentrate popular attribute values
//! onto few registry nodes, producing the heavy-tailed load the paper plots,
//! while self-representation spreads load by construction. The synthetic
//! marginals preserve that property; see DESIGN.md §4.
//!
//! ```
//! use synthtrace::{fit_space, HostGenerator};
//!
//! let hosts: Vec<_> = HostGenerator::new(42).take(1000).collect();
//! let rows: Vec<Vec<u64>> = hosts.iter().map(|h| h.to_values()).collect();
//! let space = fit_space(&rows, 3).expect("valid sample");
//! assert_eq!(space.dims(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod boinc;
mod distributions;
pub mod scenario;
pub mod sessions;
mod space;

pub use boinc::{Host, HostGenerator, ATTRIBUTE_NAMES};
pub use distributions::{lognormal, standard_normal, CategoricalU64, Zipf};
pub use space::fit_space;
