//! The synthetic BOINC host-population model. Parameter choices follow the
//! published shape of mid-2000s volunteer-computing populations (XtremLab /
//! SETI@home host censuses): overwhelmingly Windows, 1–2 cores, power-of-two
//! RAM concentrated at 256 MB–1 GB, log-normal disk sizes, DSL-dominated
//! bandwidth — i.e. *highly skewed marginals*, which is the property Fig. 9b
//! depends on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::{lognormal, CategoricalU64, Zipf};

/// Names of the 16 attributes, in the order [`Host::to_values`] emits them.
pub const ATTRIBUTE_NAMES: [&str; 16] = [
    "cpu_cores",
    "cpu_mhz",
    "ram_mb",
    "swap_mb",
    "disk_gb",
    "disk_free_gb",
    "bandwidth_down_kbps",
    "bandwidth_up_kbps",
    "os_family",
    "cpu_vendor",
    "fpops_mips",
    "iops_mips",
    "mem_bw_mbps",
    "uptime_hours",
    "availability_pct",
    "timezone_offset",
];

/// One synthetic volunteer host: 16 skewed, partially correlated attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Host {
    /// Physical CPU cores (1–16, Zipf-popular at 1–2).
    pub cpu_cores: u64,
    /// Clock speed in MHz.
    pub cpu_mhz: u64,
    /// RAM in MB, snapped to power-of-two ladders.
    pub ram_mb: u64,
    /// Swap in MB (correlated with RAM).
    pub swap_mb: u64,
    /// Total disk in GB (log-normal).
    pub disk_gb: u64,
    /// Free disk in GB (fraction of total).
    pub disk_free_gb: u64,
    /// Downstream bandwidth in kb/s (bimodal: DSL vs LAN).
    pub bandwidth_down_kbps: u64,
    /// Upstream bandwidth in kb/s.
    pub bandwidth_up_kbps: u64,
    /// OS family code (0 = Windows, 1 = Linux, 2 = macOS, 3 = other).
    pub os_family: u64,
    /// CPU vendor code (0 = Intel, 1 = AMD, 2 = other).
    pub cpu_vendor: u64,
    /// Whetstone-style float benchmark (MIPS, correlated with MHz × cores).
    pub fpops_mips: u64,
    /// Dhrystone-style int benchmark (MIPS).
    pub iops_mips: u64,
    /// Memory bandwidth (MB/s).
    pub mem_bw_mbps: u64,
    /// Mean uptime per session (hours, log-normal).
    pub uptime_hours: u64,
    /// Fraction of wall-clock the host is available (0–100).
    pub availability_pct: u64,
    /// Timezone offset in hours + 12 (0–24 — roughly population-weighted).
    pub timezone_offset: u64,
}

impl Host {
    /// The attribute vector in [`ATTRIBUTE_NAMES`] order — ready for
    /// [`attrspace::Space::point`].
    pub fn to_values(&self) -> Vec<u64> {
        vec![
            self.cpu_cores,
            self.cpu_mhz,
            self.ram_mb,
            self.swap_mb,
            self.disk_gb,
            self.disk_free_gb,
            self.bandwidth_down_kbps,
            self.bandwidth_up_kbps,
            self.os_family,
            self.cpu_vendor,
            self.fpops_mips,
            self.iops_mips,
            self.mem_bw_mbps,
            self.uptime_hours,
            self.availability_pct,
            self.timezone_offset,
        ]
    }
}

/// Deterministic, seedable generator of [`Host`]s; implements [`Iterator`].
#[derive(Debug)]
pub struct HostGenerator {
    rng: StdRng,
    cores: Zipf,
    os: CategoricalU64,
    vendor: CategoricalU64,
    tz: CategoricalU64,
}

impl HostGenerator {
    /// Creates a generator; equal seeds yield equal host sequences.
    pub fn new(seed: u64) -> Self {
        HostGenerator {
            rng: StdRng::seed_from_u64(seed),
            // ranks 0..5 → 1,2,4,8,16 cores; exponent tuned so ~60% 1-core.
            cores: Zipf::new(5, 1.6),
            // 2000s BOINC: Windows-dominated.
            os: CategoricalU64::new(&[(0, 0.87), (1, 0.08), (2, 0.04), (3, 0.01)]),
            vendor: CategoricalU64::new(&[(0, 0.72), (1, 0.26), (2, 0.02)]),
            tz: CategoricalU64::new(&[
                (7, 0.05),  // UTC-5 … dense North-America/Europe band
                (6, 0.10),
                (5, 0.15),
                (4, 0.10),
                (10, 0.08),
                (11, 0.12),
                (12, 0.20), // UTC 0
                (13, 0.12),
                (14, 0.05),
                (20, 0.02),
                (21, 0.01),
            ]),
        }
    }

    fn gen_host(&mut self) -> Host {
        let rng = &mut self.rng;
        let cores = 1u64 << self.cores.sample(rng); // 1,2,4,8,16
        let mhz = (lognormal(rng, 7.7, 0.35).clamp(300.0, 6_000.0)) as u64; // ~2.2 GHz median
        // RAM: ladder of powers of two, correlated with cores.
        let ram_exp = ((lognormal(rng, 0.0, 0.5) * 512.0 * cores as f64).log2())
            .round()
            .clamp(7.0, 16.0);
        let ram_mb = 1u64 << ram_exp as u32;
        let swap_mb = ram_mb * if rng.gen_bool(0.7) { 2 } else { 1 };
        let disk_gb = (lognormal(rng, 4.4, 0.8).clamp(4.0, 4_000.0)) as u64; // median ~80 GB
        let disk_free_gb = (disk_gb as f64 * rng.gen_range(0.05..0.9)) as u64;
        // Bandwidth: 85% consumer DSL, 15% campus/LAN hosts.
        let (down, up) = if rng.gen_bool(0.85) {
            let d = lognormal(rng, 7.0, 0.5).clamp(128.0, 10_000.0); // ~1.1 Mb/s
            (d as u64, (d / rng.gen_range(4.0..12.0)) as u64)
        } else {
            let d = lognormal(rng, 10.5, 0.4).clamp(10_000.0, 1_000_000.0);
            (d as u64, (d / 2.0) as u64)
        };
        let os_family = self.os.sample(rng);
        let cpu_vendor = self.vendor.sample(rng);
        // Benchmarks correlate with clock and core count, with noise.
        let fpops = (mhz as f64 * rng.gen_range(0.6..1.2)) as u64;
        let iops = (mhz as f64 * rng.gen_range(0.9..1.8)) as u64;
        let mem_bw = (ram_mb as f64).sqrt() as u64 * (100 + rng.gen_range(0..100u64));
        let uptime_hours = (lognormal(rng, 2.0, 1.0).clamp(0.0, 2_000.0)) as u64; // median ~7h
        let availability_pct = (100.0 * (1.0 - (-(uptime_hours as f64) / 24.0).exp()))
            .clamp(1.0, 100.0) as u64;
        let timezone_offset = self.tz.sample(rng);

        Host {
            cpu_cores: cores,
            cpu_mhz: mhz,
            ram_mb,
            swap_mb,
            disk_gb,
            disk_free_gb,
            bandwidth_down_kbps: down,
            bandwidth_up_kbps: up,
            os_family,
            cpu_vendor,
            fpops_mips: fpops,
            iops_mips: iops,
            mem_bw_mbps: mem_bw,
            uptime_hours,
            availability_pct,
            timezone_offset,
        }
    }
}

impl Iterator for HostGenerator {
    type Item = Host;

    fn next(&mut self) -> Option<Host> {
        Some(self.gen_host())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u64) -> Vec<Host> {
        HostGenerator::new(seed).take(n).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(sample(50, 9), sample(50, 9));
        assert_ne!(sample(50, 9), sample(50, 10));
    }

    #[test]
    fn sixteen_attributes_in_declared_order() {
        let h = sample(1, 0).pop().unwrap();
        let v = h.to_values();
        assert_eq!(v.len(), ATTRIBUTE_NAMES.len());
        assert_eq!(v[0], h.cpu_cores);
        assert_eq!(v[8], h.os_family);
        assert_eq!(v[15], h.timezone_offset);
    }

    #[test]
    fn marginals_are_skewed_like_boinc() {
        let hosts = sample(5_000, 1);
        let one_core = hosts.iter().filter(|h| h.cpu_cores == 1).count();
        assert!(one_core > 2_500, "1-core hosts dominate: {one_core}");
        let windows = hosts.iter().filter(|h| h.os_family == 0).count();
        assert!(windows > 4_000, "windows dominates: {windows}");
        // Disk sizes heavy-tailed: p99 well above median.
        let mut disks: Vec<u64> = hosts.iter().map(|h| h.disk_gb).collect();
        disks.sort_unstable();
        let median = disks[disks.len() / 2];
        let p99 = disks[disks.len() * 99 / 100];
        assert!(p99 > 5 * median, "disk tail: median {median}, p99 {p99}");
    }

    #[test]
    fn correlations_hold_in_aggregate() {
        let hosts = sample(4_000, 2);
        let avg_ram = |pred: &dyn Fn(&Host) -> bool| {
            let sel: Vec<&Host> = hosts.iter().filter(|h| pred(h)).collect();
            sel.iter().map(|h| h.ram_mb).sum::<u64>() as f64 / sel.len().max(1) as f64
        };
        let small = avg_ram(&|h| h.cpu_cores <= 2);
        let big = avg_ram(&|h| h.cpu_cores >= 8);
        assert!(big > 2.0 * small, "RAM grows with cores: {small} vs {big}");
    }

    #[test]
    fn ram_is_power_of_two() {
        for h in sample(500, 3) {
            assert!(h.ram_mb.is_power_of_two(), "{}", h.ram_mb);
            assert!((128..=65536).contains(&h.ram_mb));
        }
    }
}
