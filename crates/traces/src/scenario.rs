//! A seeded, composable scenario DSL and long-horizon soak runner.
//!
//! The paper's robustness claim — selection quality is "insensitive to
//! churn" (§6, Fig. 13) — deserves more than short fault-matrix arcs. This
//! module turns adverse conditions into *components* that compose into one
//! [`ScenarioSpec`]:
//!
//! * **session churn** — per-host heavy-tailed on/off sessions from
//!   [`crate::sessions`], replayed as same-identity crash/restart pairs;
//! * **flash crowds** — correlated mass joins of fresh identities over a
//!   short ramp (the D3-Tree "mass join" stressor);
//! * **diurnal load** — sinusoidal query-rate modulation around a base
//!   rate, integrated deterministically (no RNG) into issue instants;
//! * **correlated failure domains** — a whole rack/region partitioned away
//!   (healing) or crash-restarted together;
//! * **heterogeneous region latency** — a per-region-pair delay matrix
//!   compiled to [`LatencyModel::Regions`];
//! * **message-level faults** — windowed duplication / loss riding on the
//!   [`FaultPlan`] surface.
//!
//! [`ScenarioSpec::compile`] lowers the composition onto the existing
//! simulator surfaces: a time-sorted [`ArcEvent`] stream (membership +
//! query issues, applied by the runner), a [`FaultPlan`] (message faults
//! and partitions), and an optional latency override. Compilation
//! canonically *sorts* the component list first, so composition is
//! order-insensitive by construction: `a.b.c` and `c.a.b` compile to
//! byte-identical streams (the determinism proptests pin this).
//!
//! [`SoakRunner`] then drives a gossip-enabled [`SimCluster`] through the
//! compiled arc with the [`InvariantChecker`] armed — strict where the
//! scenario permits (see [`ScenarioSpec::strictness`]) — sampling health
//! gauges at fixed virtual-time intervals into [`SoakSample`]s. The
//! `soak` bench binary wraps this into a JSONL timeline with bounds
//! checking; `docs/TESTING.md` ("Scenarios & soaks") documents the grammar
//! and the per-family strictness table.

use attrspace::Space;
use autosel_core::fasthash::Fnv64;
use autosel_core::QueryId;
use epigossip::NodeId;
use overlay_sim::faults::{Action, FaultPlan, FaultRule, Scope, Window};
use overlay_sim::workload::best_case_query;
use overlay_sim::{
    InvariantChecker, InvariantViolation, LatencyModel, Placement, QueryStats, SimCluster,
    SimConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::sessions::{Schedule, SessionEvent};
use crate::{Host, HostGenerator};

/// One adverse condition layered onto a scenario. All parameters are
/// integers (probabilities in percent / permille) so components derive a
/// total order — the canonical sort behind order-insensitive composition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// Per-host availability sessions ([`crate::sessions::Schedule`]):
    /// leaves crash the node, joins restart it under the same identity.
    SessionChurn {
        /// Mean offline gap in seconds (log-normal around it).
        offline_mean_s: u64,
    },
    /// `joins` fresh identities arrive spread evenly over
    /// `[at_ms, at_ms + ramp_ms]` (relative to arc start).
    FlashCrowd {
        /// Ramp start, ms after the warmup ends.
        at_ms: u64,
        /// Number of joining nodes.
        joins: u32,
        /// Ramp length in ms (0 = all at once).
        ramp_ms: u64,
    },
    /// Sinusoidal query-rate modulation:
    /// `rate(t) = base · (1 + amplitude · sin(2πt/period))`.
    Diurnal {
        /// Base rate in queries per virtual hour.
        base_per_hour: u32,
        /// Peak-to-base swing in percent (100 = rate doubles at peak).
        amplitude_pct: u32,
        /// Modulation period in ms.
        period_ms: u64,
    },
    /// One failure domain (nodes with `id % regions == region` among the
    /// initial population) fails together for `[from_ms, until_ms)`.
    RegionOutage {
        /// Number of failure domains the population is striped across.
        regions: u32,
        /// Which domain fails.
        region: u32,
        /// Outage start, ms after the warmup ends.
        from_ms: u64,
        /// Outage end (exclusive), ms after the warmup ends.
        until_ms: u64,
        /// `true`: a healing partition (nodes stay up, cross-boundary
        /// messages drop). `false`: the region crashes and restarts.
        partition: bool,
    },
    /// Heterogeneous per-region delay matrix, compiled to
    /// [`LatencyModel::Regions`] (node → region by `id % regions`).
    RegionLatency {
        /// Number of regions.
        regions: u32,
        /// Flattened `regions × regions` rows of `(lo_ms, hi_ms)`.
        matrix: Vec<(u64, u64)>,
    },
    /// Protocol-message duplication over the whole arc.
    Duplication {
        /// Duplication probability in percent.
        p_pct: u32,
        /// Extra copies per duplicated message.
        copies: u32,
    },
    /// Uniform message loss over the whole arc.
    Loss {
        /// Loss probability in percent.
        p_pct: u32,
    },
    /// Fig. 13-style repeated decimation: every `interval_ms`, kill
    /// `permille`/1000 of the surviving population, `waves` times, no
    /// replacement.
    Decimation {
        /// Number of decimation waves.
        waves: u32,
        /// Wave spacing in ms.
        interval_ms: u64,
        /// Fraction killed per wave, in permille.
        permille: u32,
    },
}

/// How hard the [`InvariantChecker`] may press on a scenario family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Strictness {
    /// No faults, fixed membership: every §6 claim must hold
    /// ([`InvariantChecker::strict`]).
    Strict,
    /// Membership may grow (flash crowds) or messages may duplicate, but
    /// nothing is ever lost: issue-time truth bounds lapse, yet
    /// attempt-tagged replies keep result accounting exactly-once
    /// ([`InvariantChecker::relaxed`] + exact reporting).
    RelaxedExact,
    /// Crashes, partitions or losses can legitimately lose subtrees and
    /// re-deliver after restarts ([`InvariantChecker::relaxed`]).
    Relaxed,
}

/// The built-in scenario family names accepted by
/// [`ScenarioSpec::family`] (and the `soak` binary's `--family`).
pub const FAMILIES: &[&str] = &["churn", "flash", "diurnal", "outage", "composed"];

/// A composable, seedable description of a long-horizon adverse run.
///
/// Build with [`ScenarioSpec::new`] plus the fluent component methods,
/// then [`compile`](Self::compile) and hand to a [`SoakRunner`] — or use a
/// named [`family`](Self::family) preset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    n0: u32,
    horizon_ms: u64,
    warmup_ms: u64,
    probe_every_ms: u64,
    components: Vec<Component>,
}

impl ScenarioSpec {
    /// A bare scenario: `n0` initial nodes, an arc of `horizon_ms` virtual
    /// milliseconds after a 250 s gossip warmup, probe queries every 30 s,
    /// no adverse components.
    pub fn new(n0: u32, horizon_ms: u64) -> Self {
        ScenarioSpec {
            n0,
            horizon_ms,
            warmup_ms: 250_000,
            probe_every_ms: 30_000,
            components: Vec::new(),
        }
    }

    /// A named preset over the same knobs — the per-family smoke surface.
    /// Returns `None` for unknown names; see [`FAMILIES`].
    pub fn family(name: &str, n0: u32, horizon_ms: u64) -> Option<Self> {
        let spec = ScenarioSpec::new(n0, horizon_ms);
        Some(match name {
            "churn" => spec.session_churn(1_800),
            "flash" => spec.flash_crowd(horizon_ms / 4, n0 / 2, 60_000),
            "diurnal" => spec.diurnal(240, 80, horizon_ms.max(2) / 2),
            "outage" => spec
                .region_latency(2, &[(5, 5), (40, 80), (40, 80), (5, 5)])
                .region_partition(4, 1, horizon_ms / 4, horizon_ms / 2),
            "composed" => spec
                .session_churn(1_800)
                .flash_crowd(horizon_ms / 3, n0 / 4, 60_000)
                .diurnal(240, 80, horizon_ms.max(2) / 2)
                .region_latency(2, &[(5, 5), (40, 80), (40, 80), (5, 5)])
                .region_partition(4, 1, horizon_ms / 4, horizon_ms / 2),
            _ => return None,
        })
    }

    /// Overrides the gossip warmup run before the arc starts.
    pub fn warmup_ms(mut self, ms: u64) -> Self {
        self.warmup_ms = ms;
        self
    }

    /// Overrides the baseline probe-query interval (0 disables probes;
    /// load then comes only from [`Component::Diurnal`]).
    pub fn probe_every_ms(mut self, ms: u64) -> Self {
        self.probe_every_ms = ms;
        self
    }

    /// Adds a raw [`Component`] (the fluent methods below are sugar).
    pub fn component(mut self, c: Component) -> Self {
        self.components.push(c);
        self
    }

    /// Adds [`Component::SessionChurn`].
    pub fn session_churn(self, offline_mean_s: u64) -> Self {
        self.component(Component::SessionChurn { offline_mean_s })
    }

    /// Adds [`Component::FlashCrowd`].
    pub fn flash_crowd(self, at_ms: u64, joins: u32, ramp_ms: u64) -> Self {
        self.component(Component::FlashCrowd { at_ms, joins, ramp_ms })
    }

    /// Adds [`Component::Diurnal`].
    ///
    /// # Panics
    ///
    /// Panics if `period_ms` is zero.
    pub fn diurnal(self, base_per_hour: u32, amplitude_pct: u32, period_ms: u64) -> Self {
        assert!(period_ms > 0, "diurnal period must be positive");
        self.component(Component::Diurnal { base_per_hour, amplitude_pct, period_ms })
    }

    /// Adds a healing-partition [`Component::RegionOutage`].
    pub fn region_partition(self, regions: u32, region: u32, from_ms: u64, until_ms: u64) -> Self {
        self.component(Component::RegionOutage {
            regions,
            region,
            from_ms,
            until_ms,
            partition: true,
        })
    }

    /// Adds a crash-and-restart [`Component::RegionOutage`].
    pub fn region_crash(self, regions: u32, region: u32, from_ms: u64, until_ms: u64) -> Self {
        self.component(Component::RegionOutage {
            regions,
            region,
            from_ms,
            until_ms,
            partition: false,
        })
    }

    /// Adds [`Component::RegionLatency`] from `regions × regions` row-major
    /// `(lo_ms, hi_ms)` cells.
    ///
    /// # Panics
    ///
    /// Panics unless `matrix.len() == regions²` with `regions ≥ 1`.
    pub fn region_latency(self, regions: u32, matrix: &[(u64, u64)]) -> Self {
        assert!(regions >= 1, "at least one region");
        assert_eq!(matrix.len(), (regions * regions) as usize, "matrix must be regions²");
        self.component(Component::RegionLatency { regions, matrix: matrix.to_vec() })
    }

    /// Adds [`Component::Duplication`].
    pub fn duplication(self, p_pct: u32, copies: u32) -> Self {
        self.component(Component::Duplication { p_pct, copies })
    }

    /// Adds [`Component::Loss`].
    pub fn loss(self, p_pct: u32) -> Self {
        self.component(Component::Loss { p_pct })
    }

    /// Adds [`Component::Decimation`].
    pub fn decimation(self, waves: u32, interval_ms: u64, permille: u32) -> Self {
        self.component(Component::Decimation { waves, interval_ms, permille })
    }

    /// Initial population size.
    pub fn n0(&self) -> u32 {
        self.n0
    }

    /// Arc length in virtual ms (excluding warmup).
    pub fn horizon(&self) -> u64 {
        self.horizon_ms
    }

    /// The components, in insertion order (compilation sorts them).
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The strongest checker this composition can honestly face:
    ///
    /// | family ingredients | strictness |
    /// |---|---|
    /// | diurnal load, region latency only | [`Strictness::Strict`] |
    /// | + flash crowds or duplication | [`Strictness::RelaxedExact`] |
    /// | + churn, outages, loss or decimation | [`Strictness::Relaxed`] |
    pub fn strictness(&self) -> Strictness {
        let mut s = Strictness::Strict;
        for c in &self.components {
            let c_level = match c {
                Component::Diurnal { .. } | Component::RegionLatency { .. } => Strictness::Strict,
                Component::FlashCrowd { .. } | Component::Duplication { .. } => {
                    Strictness::RelaxedExact
                }
                Component::SessionChurn { .. }
                | Component::RegionOutage { .. }
                | Component::Loss { .. }
                | Component::Decimation { .. } => Strictness::Relaxed,
            };
            s = s.max(c_level);
        }
        s
    }

    /// The armed [`InvariantChecker`] matching [`Self::strictness`].
    pub fn checker(&self) -> InvariantChecker {
        match self.strictness() {
            Strictness::Strict => InvariantChecker::strict(),
            Strictness::RelaxedExact => InvariantChecker::relaxed().expect_exact_reporting(),
            Strictness::Relaxed => InvariantChecker::relaxed(),
        }
    }

    /// Compiles the composition down to the simulator's surfaces: a
    /// time-sorted [`ArcEvent`] stream, a [`FaultPlan`], and an optional
    /// latency override. Deterministic per `(spec, seed)`; components are
    /// canonically sorted first, so insertion order never matters.
    pub fn compile(&self, seed: u64) -> CompiledScenario {
        let mut comps = self.components.clone();
        comps.sort();
        let start = self.warmup_ms;
        let end = self.warmup_ms + self.horizon_ms;
        let mut events: Vec<(u64, ArcEvent)> = Vec::new();
        let mut plan = FaultPlan::new();
        let mut latency = None;

        if self.probe_every_ms > 0 {
            let mut t = start;
            while t < end {
                events.push((t, ArcEvent::Query));
                t += self.probe_every_ms;
            }
        }

        for c in &comps {
            match c {
                Component::SessionChurn { offline_mean_s } => {
                    let hosts: Vec<Host> =
                        HostGenerator::new(seed).take(self.n0 as usize).collect();
                    let sched = Schedule::generate(
                        &hosts,
                        self.horizon_ms / 1000,
                        *offline_mean_s,
                        seed,
                    );
                    // Hosts that are offline at t = 0 start the arc crashed.
                    let mut online = vec![false; self.n0 as usize];
                    for &(t_s, ev) in sched.events() {
                        if t_s == 0 {
                            if let SessionEvent::Join { host } = ev {
                                online[host] = true;
                            }
                        }
                    }
                    for (host, up) in online.iter().enumerate() {
                        if !up {
                            events.push((start, ArcEvent::Crash { node: host as NodeId }));
                        }
                    }
                    for &(t_s, ev) in sched.events() {
                        if t_s == 0 {
                            continue; // initial state, handled above
                        }
                        let t = start + t_s * 1000;
                        if t >= end {
                            break;
                        }
                        events.push(match ev {
                            SessionEvent::Join { host } => {
                                (t, ArcEvent::Restart { node: host as NodeId })
                            }
                            SessionEvent::Leave { host } => {
                                (t, ArcEvent::Crash { node: host as NodeId })
                            }
                        });
                    }
                }
                Component::FlashCrowd { at_ms, joins, ramp_ms } => {
                    // Spread the joins over 1 s steps across the ramp,
                    // remainder front-loaded.
                    let steps = (ramp_ms / 1000).max(1);
                    let base = joins / steps as u32;
                    let extra = u64::from(*joins) % steps;
                    for s in 0..steps {
                        let count = base + u32::from(s < extra);
                        if count > 0 {
                            events.push((start + at_ms + s * 1000, ArcEvent::Join { count }));
                        }
                    }
                }
                Component::Diurnal { base_per_hour, amplitude_pct, period_ms } => {
                    // Deterministic rate integration at 1 s ticks: no RNG,
                    // so the issue instants are part of the compiled
                    // stream's byte identity.
                    let base_per_s = f64::from(*base_per_hour) / 3_600.0;
                    let amp = f64::from(*amplitude_pct) / 100.0;
                    let mut acc = 0.0f64;
                    let mut t = start;
                    while t < end {
                        let phase = ((t - start) % period_ms) as f64 / *period_ms as f64;
                        let rate = base_per_s
                            * (1.0 + amp * (std::f64::consts::TAU * phase).sin()).max(0.0);
                        acc += rate;
                        while acc >= 1.0 {
                            events.push((t, ArcEvent::Query));
                            acc -= 1.0;
                        }
                        t += 1000;
                    }
                }
                Component::RegionOutage { regions, region, from_ms, until_ms, partition } => {
                    let r = u64::from((*regions).max(1));
                    let members = (0..u64::from(self.n0))
                        .filter(|id| id % r == u64::from(*region))
                        .collect::<Vec<NodeId>>();
                    // Clamp both edges to the arc; a window starting at or
                    // past the horizon (or inverted) compiles to nothing
                    // rather than panicking on a degenerate `Window`.
                    let w_from = (start + from_ms).min(end);
                    let w_until = (start + until_ms).min(end);
                    if w_from >= w_until {
                        continue;
                    }
                    let window = Window::new(w_from, w_until);
                    if *partition {
                        plan = plan.partition(window, members);
                    } else {
                        for id in members {
                            events.push((window.from, ArcEvent::Crash { node: id }));
                            events.push((window.until, ArcEvent::Restart { node: id }));
                        }
                    }
                }
                Component::RegionLatency { regions, matrix } => {
                    latency = Some(LatencyModel::Regions {
                        regions: u64::from(*regions),
                        matrix: matrix.clone(),
                    });
                }
                Component::Duplication { p_pct, copies } => {
                    plan = plan.rule(FaultRule {
                        window: Window::new(start, end),
                        scope: Scope::Protocol,
                        action: Action::Duplicate {
                            p: f64::from((*p_pct).min(100)) / 100.0,
                            copies: *copies,
                        },
                    });
                }
                Component::Loss { p_pct } => {
                    plan = plan.rule(FaultRule {
                        window: Window::new(start, end),
                        scope: Scope::All,
                        action: Action::Drop { p: f64::from((*p_pct).min(100)) / 100.0 },
                    });
                }
                Component::Decimation { waves, interval_ms, permille } => {
                    for w in 0..u64::from(*waves) {
                        let t = start + w * interval_ms;
                        if t < end {
                            events.push((t, ArcEvent::KillPermille { permille: *permille }));
                        }
                    }
                }
            }
        }

        events.sort_unstable();
        CompiledScenario {
            n0: self.n0,
            warmup_ms: self.warmup_ms,
            horizon_ms: self.horizon_ms,
            strictness: self.strictness(),
            events,
            plan,
            latency,
        }
    }
}

/// One membership or workload event of a compiled arc, applied by the
/// [`SoakRunner`] at its absolute virtual-time stamp. Message-level faults
/// live in the [`FaultPlan`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArcEvent {
    /// Crash `node` (identity remembered; a later [`ArcEvent::Restart`]
    /// brings it back).
    Crash {
        /// The affected node.
        node: NodeId,
    },
    /// Restart a previously crashed node (no-op if alive).
    Restart {
        /// The affected node.
        node: NodeId,
    },
    /// `count` fresh identities join at this instant.
    Join {
        /// Number of joining nodes.
        count: u32,
    },
    /// Kill `permille`/1000 of the surviving population, no replacement.
    KillPermille {
        /// Fraction killed, in permille.
        permille: u32,
    },
    /// Issue one probe query from a random alive origin.
    Query,
}

/// The lowered form of a [`ScenarioSpec`]: everything a runner (or a test)
/// needs, with a content [`digest`](Self::digest) for byte-identity checks.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// Initial population size.
    pub n0: u32,
    /// Gossip warmup before the arc (absolute arc times start here).
    pub warmup_ms: u64,
    /// Arc length in ms.
    pub horizon_ms: u64,
    /// The checker level the source spec earned.
    pub strictness: Strictness,
    /// Time-sorted `(absolute virtual ms, event)` stream.
    pub events: Vec<(u64, ArcEvent)>,
    /// Message-level faults and partitions.
    pub plan: FaultPlan,
    /// Latency override (`None`: the runner's 5 ms constant default).
    pub latency: Option<LatencyModel>,
}

impl CompiledScenario {
    /// FNV-1a digest over the full compiled content — two compilations are
    /// byte-identical iff their digests match (the determinism proptests'
    /// oracle, cheap enough for CI logs).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.word(u64::from(self.n0));
        h.word(self.warmup_ms);
        h.word(self.horizon_ms);
        h.word(self.strictness as u64);
        h.word(self.events.len() as u64);
        for (t, ev) in &self.events {
            h.word(*t);
            match *ev {
                ArcEvent::Crash { node } => {
                    h.word(1);
                    h.word(node);
                }
                ArcEvent::Restart { node } => {
                    h.word(2);
                    h.word(node);
                }
                ArcEvent::Join { count } => {
                    h.word(3);
                    h.word(u64::from(count));
                }
                ArcEvent::KillPermille { permille } => {
                    h.word(4);
                    h.word(u64::from(permille));
                }
                ArcEvent::Query => h.word(5),
            }
        }
        // The plan and latency have float fields; their derived Debug forms
        // are exact (no rounding), so hashing the rendering is faithful.
        for part in [format!("{:?}", self.plan), format!("{:?}", self.latency)] {
            for b in part.as_bytes() {
                h.word(u64::from(*b));
            }
        }
        h.finish()
    }

    /// The armed checker for this compilation (see
    /// [`ScenarioSpec::checker`]).
    pub fn checker(&self) -> InvariantChecker {
        match self.strictness {
            Strictness::Strict => InvariantChecker::strict(),
            Strictness::RelaxedExact => InvariantChecker::relaxed().expect_exact_reporting(),
            Strictness::Relaxed => InvariantChecker::relaxed(),
        }
    }
}

/// One fixed-interval timeline reading of a soak run. All integer (×1000
/// fixed-point where fractional) so timelines are byte-stable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoakSample {
    /// Virtual time of the reading, ms.
    pub t_ms: u64,
    /// Alive nodes.
    pub alive: u64,
    /// Crashed (restartable) nodes.
    pub crashed: u64,
    /// Simulator event-queue depth (backlog gauge).
    pub queued: u64,
    /// In-flight query records summed over alive nodes.
    pub pending: u64,
    /// Cumulative `T(q)` timeouts fired.
    pub timeouts: u64,
    /// Cumulative duplicate receipts over open queries.
    pub duplicates: u64,
    /// Random (CYCLON) layer: mean view size ×1000.
    pub rnd_view_x1000: u64,
    /// Random layer: mean descriptor age ×1000.
    pub rnd_age_x1000: u64,
    /// Semantic layer: mean view size ×1000.
    pub sem_view_x1000: u64,
    /// Semantic layer: mean descriptor age ×1000.
    pub sem_age_x1000: u64,
    /// Combined view turnover summed over alive nodes (a gauge, not a
    /// cumulative counter: crashes remove their node's contribution).
    pub turnover: u64,
    /// Queries issued so far.
    pub issued: u64,
    /// Queries harvested (measured 120 s after issue) so far.
    pub harvested: u64,
    /// Mean delivery ×1000 over queries harvested since the previous
    /// sample (0 when none were).
    pub delivery_x1000: u64,
}

impl SoakSample {
    /// Folds this sample into `h` (timeline byte-identity checks).
    pub fn digest_into(&self, h: &mut Fnv64) {
        for w in [
            self.t_ms,
            self.alive,
            self.crashed,
            self.queued,
            self.pending,
            self.timeouts,
            self.duplicates,
            self.rnd_view_x1000,
            self.rnd_age_x1000,
            self.sem_view_x1000,
            self.sem_age_x1000,
            self.turnover,
            self.issued,
            self.harvested,
            self.delivery_x1000,
        ] {
            h.word(w);
        }
    }
}

/// FNV-1a digest of a whole timeline (see [`SoakSample::digest_into`]).
pub fn timeline_digest(samples: &[SoakSample]) -> u64 {
    let mut h = Fnv64::new();
    h.word(samples.len() as u64);
    for s in samples {
        s.digest_into(&mut h);
    }
    h.finish()
}

/// Queries are harvested (stats read, delivery recorded, then forgotten)
/// this long after issue — the measurement lag of Figs. 11–13.
pub const HARVEST_AFTER_MS: u64 = 120_000;

/// Drives a gossip-enabled [`SimCluster`] through a compiled scenario with
/// the scenario's [`InvariantChecker`] armed, harvesting probe queries and
/// sampling health gauges at a fixed virtual-time interval.
///
/// Deterministic per `(spec, seed)`: same seed, same spec — byte-identical
/// timeline, probes and [`QueryStats`].
#[derive(Debug)]
pub struct SoakRunner {
    sim: SimCluster,
    compiled: CompiledScenario,
    checker: InvariantChecker,
    placement: Placement,
    qrng: StdRng,
    cursor: usize,
    open: Vec<(u64, QueryId)>,
    issued: u64,
    harvested: u64,
    probes: Vec<(u64, u64)>,
}

/// The query selectivity every probe targets (`f` of §6: an eighth of the
/// population matches in expectation).
const PROBE_SELECTIVITY: f64 = 0.125;

impl SoakRunner {
    /// Compiles `spec` and builds the cluster: Table 1 space, gossip on
    /// (10 s period), 30 s `T(q)`, the compiled latency model (5 ms
    /// constant when none), population placed uniformly, fault plan
    /// installed. Nothing has run yet.
    pub fn new(spec: &ScenarioSpec, seed: u64) -> Self {
        let compiled = spec.compile(seed);
        let space = Space::uniform(5, 80, 3).expect("Table 1 space");
        let mut cfg = SimConfig {
            latency: compiled
                .latency
                .clone()
                .unwrap_or(LatencyModel::Constant { ms: 5 }),
            ..SimConfig::default()
        };
        cfg.gossip.period_ms = 10_000;
        cfg.protocol.query_timeout_ms = 30_000;
        let placement = Placement::Uniform { lo: 0, hi: 80 };
        let mut sim = SimCluster::new(space, cfg, seed);
        sim.populate(&placement, compiled.n0 as usize);
        sim.set_fault_plan(compiled.plan.clone());
        SoakRunner {
            sim,
            checker: compiled.checker(),
            compiled,
            placement,
            qrng: StdRng::seed_from_u64(seed ^ 0x50a4), // probe shapes only
            cursor: 0,
            open: Vec::new(),
            issued: 0,
            harvested: 0,
            probes: Vec::new(),
        }
    }

    /// The underlying cluster (read-only; the runner owns its schedule).
    pub fn sim(&self) -> &SimCluster {
        &self.sim
    }

    /// The compiled scenario this runner executes.
    pub fn compiled(&self) -> &CompiledScenario {
        &self.compiled
    }

    /// `(issue time ms, delivery ×1000)` for every harvested probe.
    pub fn probes(&self) -> &[(u64, u64)] {
        &self.probes
    }

    /// Runs the whole arc — warmup, events, drain — sampling every
    /// `sample_every_ms`. See [`run_with`](Self::run_with).
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`], with the cluster left at the
    /// violating instant.
    pub fn run(&mut self, sample_every_ms: u64) -> Result<Vec<SoakSample>, InvariantViolation> {
        self.run_with(sample_every_ms, |_| {})
    }

    /// [`run`](Self::run) with a harvest hook: `on_harvest` sees every
    /// probe's final [`QueryStats`] (aggregation, CSV rows, `stats-json`).
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    pub fn run_with(
        &mut self,
        sample_every_ms: u64,
        on_harvest: impl FnMut(&QueryStats),
    ) -> Result<Vec<SoakSample>, InvariantViolation> {
        self.run_hooks(sample_every_ms, on_harvest, |_| {})
    }

    /// Installs an observability sink on the cluster — e.g. an
    /// [`autosel_obs::Registry`] sampled by the `on_sample` hook of
    /// [`run_hooks`](Self::run_hooks).
    pub fn set_observer(&mut self, obs: autosel_obs::ObsHandle) {
        self.sim.set_observer(obs);
    }

    /// The full-control variant: `on_harvest` as in
    /// [`run_with`](Self::run_with); `on_sample` fires at every timeline
    /// sample *at that virtual instant* — the place to read an installed
    /// obs registry and emit a merged timeline record.
    ///
    /// The checker is armed across warmup, arc and drain; quiescence
    /// invariants (no leaked pending state) are asserted once the drain
    /// completes.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    pub fn run_hooks(
        &mut self,
        sample_every_ms: u64,
        mut on_harvest: impl FnMut(&QueryStats),
        mut on_sample: impl FnMut(&SoakSample),
    ) -> Result<Vec<SoakSample>, InvariantViolation> {
        let sample_every = sample_every_ms.max(1_000);
        let end = self.compiled.warmup_ms + self.compiled.horizon_ms;
        let mut samples = Vec::new();
        let mut last_harvest_count = 0u64;
        let mut last_delivery_bucket: (u64, u64) = (0, 0); // (sum_x1000, n)
        let mut next_sample = self.compiled.warmup_ms;

        // 1 s ticks: every compiled event time is second-aligned, so each
        // event applies at exactly its stamp, between checked run slices.
        let mut t = 0u64;
        while t < end {
            t += 1_000;
            self.sim.run_until_checked(t, &mut self.checker)?;
            while self.cursor < self.compiled.events.len()
                && self.compiled.events[self.cursor].0 <= t
            {
                let (_, ev) = self.compiled.events[self.cursor];
                self.cursor += 1;
                self.apply(ev);
                self.sim.check_invariants(&mut self.checker)?;
            }
            let bucket = self.harvest(t, &mut on_harvest);
            last_delivery_bucket.0 += bucket.0;
            last_delivery_bucket.1 += bucket.1;
            if t >= next_sample {
                let s = self.sample(t, last_harvest_count, last_delivery_bucket);
                on_sample(&s);
                samples.push(s);
                last_harvest_count = self.harvested;
                last_delivery_bucket = (0, 0);
                next_sample = t + sample_every;
            }
        }

        // Drain: let every open probe reach its harvest lag, then give the
        // protocol a full T(q) backstop to clear pending state.
        let last_due = self.open.iter().map(|&(at, _)| at + HARVEST_AFTER_MS).max();
        let mut t = end;
        let drain_until = last_due.unwrap_or(end).max(end) + 60_000;
        while t < drain_until {
            t += 1_000;
            self.sim.run_until_checked(t, &mut self.checker)?;
            let bucket = self.harvest(t, &mut on_harvest);
            last_delivery_bucket.0 += bucket.0;
            last_delivery_bucket.1 += bucket.1;
        }
        let s = self.sample(t, last_harvest_count, last_delivery_bucket);
        on_sample(&s);
        samples.push(s);
        self.checker.check_quiescent(&self.sim)?;
        Ok(samples)
    }

    fn apply(&mut self, ev: ArcEvent) {
        match ev {
            ArcEvent::Crash { node } => self.sim.crash(node),
            ArcEvent::Restart { node } => {
                self.sim.restart(node);
            }
            ArcEvent::Join { count } => self.sim.populate(&self.placement, count as usize),
            ArcEvent::KillPermille { permille } => {
                self.sim.kill_fraction(f64::from(permille.min(1000)) / 1000.0);
            }
            ArcEvent::Query => {
                if self.sim.is_empty() {
                    return; // everything is down; nothing to ask
                }
                let q = best_case_query(self.sim.space(), PROBE_SELECTIVITY, &mut self.qrng);
                let origin = self.sim.random_node();
                let qid = self.sim.issue_query(origin, q, None);
                self.open.push((self.sim.now(), qid));
                self.issued += 1;
            }
        }
    }

    /// Harvests probes `HARVEST_AFTER_MS` past issue; returns the
    /// `(delivery_x1000 sum, count)` bucket of this tick's harvests.
    fn harvest(&mut self, t: u64, on_harvest: &mut impl FnMut(&QueryStats)) -> (u64, u64) {
        let mut bucket = (0u64, 0u64);
        let mut i = 0;
        while i < self.open.len() {
            let (at, qid) = self.open[i];
            if t >= at + HARVEST_AFTER_MS {
                self.open.remove(i);
                let stats = self.sim.query_stats(qid).expect("tracked probe");
                let delivery = (stats.delivery() * 1000.0).round() as u64;
                on_harvest(stats);
                self.probes.push((at, delivery));
                self.sim.forget_query(qid);
                self.harvested += 1;
                bucket.0 += delivery;
                bucket.1 += 1;
            } else {
                i += 1;
            }
        }
        bucket
    }

    fn sample(&self, t: u64, _prev_harvested: u64, bucket: (u64, u64)) -> SoakSample {
        let (random, semantic) = self.sim.gossip_health();
        SoakSample {
            t_ms: t,
            alive: self.sim.len() as u64,
            crashed: self.sim.crashed_ids().len() as u64,
            queued: self.sim.queued_len() as u64,
            pending: self.sim.pending_total() as u64,
            timeouts: self.sim.timeouts_fired_total(),
            duplicates: self.sim.total_duplicates(),
            rnd_view_x1000: random.mean_view_size_x1000(),
            rnd_age_x1000: random.mean_age_x1000(),
            sem_view_x1000: semantic.mean_view_size_x1000(),
            sem_age_x1000: semantic.mean_age_x1000(),
            turnover: random.turnover + semantic.turnover,
            issued: self.issued,
            harvested: self.harvested,
            delivery_x1000: bucket.0.checked_div(bucket.1).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sort_canonically() {
        let a = ScenarioSpec::new(50, 600_000)
            .session_churn(1_800)
            .diurnal(240, 80, 300_000)
            .flash_crowd(100_000, 20, 30_000);
        let b = ScenarioSpec::new(50, 600_000)
            .flash_crowd(100_000, 20, 30_000)
            .diurnal(240, 80, 300_000)
            .session_churn(1_800);
        assert_eq!(a.compile(7).digest(), b.compile(7).digest());
        assert_eq!(a.compile(7).events, b.compile(7).events);
    }

    #[test]
    fn strictness_table() {
        let base = ScenarioSpec::new(40, 300_000);
        assert_eq!(base.clone().strictness(), Strictness::Strict);
        assert_eq!(base.clone().diurnal(120, 50, 100_000).strictness(), Strictness::Strict);
        assert_eq!(
            base.clone().flash_crowd(0, 10, 0).strictness(),
            Strictness::RelaxedExact
        );
        assert_eq!(base.clone().duplication(5, 1).strictness(), Strictness::RelaxedExact);
        assert_eq!(base.clone().session_churn(600).strictness(), Strictness::Relaxed);
        assert_eq!(
            base.clone().duplication(5, 1).loss(2).strictness(),
            Strictness::Relaxed
        );
        assert_eq!(
            base.region_partition(4, 0, 0, 100_000).strictness(),
            Strictness::Relaxed
        );
    }

    #[test]
    fn families_resolve_and_unknown_is_none() {
        for name in FAMILIES {
            assert!(ScenarioSpec::family(name, 60, 600_000).is_some(), "{name}");
        }
        assert!(ScenarioSpec::family("nope", 60, 600_000).is_none());
    }

    #[test]
    fn compiled_events_are_time_sorted_and_windowed() {
        let spec = ScenarioSpec::new(60, 600_000)
            .session_churn(1_800)
            .flash_crowd(150_000, 12, 30_000)
            .decimation(3, 200_000, 100);
        let c = spec.compile(11);
        let mut last = 0;
        for &(t, _) in &c.events {
            assert!(t >= last, "events out of order");
            last = t;
            assert!(t >= c.warmup_ms && t <= c.warmup_ms + c.horizon_ms);
        }
        assert!(c.events.iter().any(|(_, e)| matches!(e, ArcEvent::Join { .. })));
        assert!(c.events.iter().any(|(_, e)| matches!(e, ArcEvent::KillPermille { .. })));
        assert!(c.events.iter().any(|(_, e)| matches!(e, ArcEvent::Query)));
    }

    #[test]
    fn diurnal_issue_count_tracks_base_rate() {
        // 1 virtual hour at 240/h, no probes: within integration rounding
        // of 240 issues.
        let spec = ScenarioSpec::new(10, 3_600_000)
            .probe_every_ms(0)
            .diurnal(240, 0, 1_800_000);
        let c = spec.compile(0);
        let queries = c.events.iter().filter(|(_, e)| matches!(e, ArcEvent::Query)).count();
        assert!((239..=241).contains(&queries), "got {queries}");
    }

    #[test]
    fn short_strict_soak_passes_with_checker_armed() {
        let spec = ScenarioSpec::new(40, 240_000).warmup_ms(60_000).diurnal(120, 80, 120_000);
        let mut runner = SoakRunner::new(&spec, 42);
        let samples = runner.run(60_000).expect("strict soak clean");
        assert!(samples.len() >= 3);
        let last = samples.last().unwrap();
        assert_eq!(last.pending, 0, "drained");
        assert!(last.harvested > 0 && last.harvested == last.issued);
        assert!(runner.probes().iter().all(|&(_, d)| d <= 1000));
    }
}
