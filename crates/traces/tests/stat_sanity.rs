//! Statistical sanity of the synthetic workload generators under pinned
//! seeds: the session schedule really is heavy-tailed, offline gaps track
//! their configured mean, the base distributions have the shapes their
//! names promise, and the scenario DSL's diurnal modulation actually
//! modulates at its configured amplitude. All bounds are generous — these
//! are shape checks, not golden values — but every run is deterministic,
//! so a regression that flattens a tail or mis-scales a rate fails
//! reliably instead of flaking.

use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtrace::scenario::{ArcEvent, ScenarioSpec};
use synthtrace::sessions::{Schedule, SessionEvent};
use synthtrace::{lognormal, HostGenerator, Zipf};

fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Per-host durations between each Join and its matching Leave (open
/// sessions at the horizon are discarded — they are right-censored).
fn online_session_lengths(schedule: &Schedule) -> Vec<u64> {
    let mut open: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    let mut lengths = Vec::new();
    for &(t, ev) in schedule.events() {
        match ev {
            SessionEvent::Join { host } => {
                open.insert(host, t);
            }
            SessionEvent::Leave { host } => {
                if let Some(start) = open.remove(&host) {
                    lengths.push(t - start);
                }
            }
        }
    }
    lengths
}

#[test]
fn session_lengths_are_heavy_tailed() {
    let hosts: Vec<_> = HostGenerator::new(42).take(400).collect();
    // A week-long horizon so even long sessions close and enter the sample.
    let schedule = Schedule::generate(&hosts, 7 * 86_400, 3_600, 42);
    let mut lengths = online_session_lengths(&schedule);
    assert!(lengths.len() > 500, "expected a big sample, got {}", lengths.len());
    lengths.sort_unstable();
    let p50 = percentile(&lengths, 0.50);
    let p90 = percentile(&lengths, 0.90);
    let p99 = percentile(&lengths, 0.99);
    // Log-normal sessions (σ = 0.7) over a population whose per-host means
    // themselves spread over orders of magnitude: the aggregate tail is
    // much heavier than any exponential — p99 sits far above the median.
    assert!(p90 >= 2 * p50, "tail too light: p50={p50}s p90={p90}s");
    assert!(p99 >= 5 * p50, "tail too light: p50={p50}s p99={p99}s");
    // And the body is sane: typical sessions are hours, not seconds/weeks.
    assert!((600..=86_400).contains(&p50), "implausible median session: {p50}s");
}

#[test]
fn offline_gaps_track_the_configured_mean() {
    let hosts: Vec<_> = HostGenerator::new(7).take(300).collect();
    let offline_mean_s = 1_800;
    let schedule = Schedule::generate(&hosts, 7 * 86_400, offline_mean_s, 7);
    // Leave → next Join of the same host = one offline gap.
    let mut last_leave: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    let mut gaps = Vec::new();
    for &(t, ev) in schedule.events() {
        match ev {
            SessionEvent::Leave { host } => {
                last_leave.insert(host, t);
            }
            SessionEvent::Join { host } => {
                if let Some(start) = last_leave.remove(&host) {
                    gaps.push(t - start);
                }
            }
        }
    }
    assert!(gaps.len() > 500, "expected many gaps, got {}", gaps.len());
    gaps.sort_unstable();
    // The gap distribution is log-normal with median e^µ = offline_mean
    // (clamped below at 60 s); the sample median must sit near it.
    let p50 = percentile(&gaps, 0.50);
    assert!(
        (offline_mean_s / 2..=offline_mean_s * 2).contains(&p50),
        "offline gap median {p50}s drifted from configured mean {offline_mean_s}s"
    );
}

#[test]
fn lognormal_median_is_exp_mu() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut xs: Vec<u64> = (0..20_000)
        .map(|_| lognormal(&mut rng, 1000f64.ln(), 0.7) as u64)
        .collect();
    xs.sort_unstable();
    let p50 = percentile(&xs, 0.50);
    assert!((800..=1_250).contains(&p50), "log-normal median drifted: {p50}");
    // σ = 0.7 ⇒ p90/p50 = e^{1.28·0.7} ≈ 2.45.
    let p90 = percentile(&xs, 0.90);
    assert!(
        (2 * p50..=3 * p50).contains(&p90),
        "log-normal spread drifted: p50={p50} p90={p90}"
    );
}

#[test]
fn zipf_concentrates_mass_on_the_head() {
    let mut rng = StdRng::seed_from_u64(2);
    let zipf = Zipf::new(1_000, 1.0);
    let n = 20_000;
    let mut counts = vec![0u64; 1_000];
    for _ in 0..n {
        counts[zipf.sample(&mut rng)] += 1;
    }
    // Under uniform sampling each rank gets 0.1%; Zipf(s=1) gives the top
    // rank ~13% and the top ten ~39%.
    assert!(counts[0] > n / 20, "head too light: rank 0 drew {}/{n}", counts[0]);
    let top10: u64 = counts[..10].iter().sum();
    assert!(top10 > n / 4, "top-10 mass too light: {top10}/{n}");
    assert!(counts[500] < counts[0] / 10, "tail rank as popular as the head");
}

/// Counts the diurnal Query events of a probe-free compiled arc, bucketed
/// into `buckets` equal time slices.
fn diurnal_buckets(base_per_hour: u32, amplitude_pct: u32, buckets: usize) -> Vec<u64> {
    let period = 3_600_000;
    let spec = ScenarioSpec::new(50, period)
        .probe_every_ms(0)
        .diurnal(base_per_hour, amplitude_pct, period);
    let compiled = spec.compile(3);
    let start = compiled.warmup_ms;
    let mut counts = vec![0u64; buckets];
    for &(t, ref ev) in &compiled.events {
        if matches!(ev, ArcEvent::Query) {
            let idx = ((t - start) as usize * buckets / period as usize).min(buckets - 1);
            counts[idx] += 1;
        }
    }
    counts
}

#[test]
fn diurnal_amplitude_shapes_the_rate() {
    // One full period split into quarters: the sine peaks in the first
    // quarter (phase 0..π/2..π) and troughs in the third.
    let counts = diurnal_buckets(720, 80, 4);
    let total: u64 = counts.iter().sum();
    assert!((715..=725).contains(&total), "base rate drifted: {total} events/hour");
    let peak = counts[0].max(counts[1]);
    let trough = counts[2].min(counts[3]);
    // amplitude 80% ⇒ quarter-integrated peak/trough ratio ≈ (1+0.51)/(1-0.51).
    assert!(
        peak as f64 >= 2.0 * trough as f64,
        "amplitude 80% barely modulates: peak {peak} vs trough {trough}"
    );

    // Zero amplitude ⇒ flat rate: every quarter within a few events.
    let flat = diurnal_buckets(720, 0, 4);
    let (lo, hi) = (flat.iter().min().unwrap(), flat.iter().max().unwrap());
    assert!(hi - lo <= 2, "amplitude 0 must be flat, got {flat:?}");
}

#[test]
fn flash_crowd_join_totals_are_exact() {
    for joins in [1u32, 7, 30, 121] {
        let spec = ScenarioSpec::new(50, 600_000)
            .probe_every_ms(0)
            .flash_crowd(100_000, joins, 45_000);
        let compiled = spec.compile(5);
        let total: u64 = compiled
            .events
            .iter()
            .filter_map(|(_, ev)| match ev {
                ArcEvent::Join { count } => Some(u64::from(*count)),
                _ => None,
            })
            .sum();
        assert_eq!(total, u64::from(joins), "ramp lost or invented joins");
    }
}
