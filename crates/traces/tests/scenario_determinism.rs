//! Determinism properties of the scenario DSL: identical `(spec, seed)`
//! pairs compile to byte-identical event streams, composition order is
//! insensitive where documented (components are canonically sorted before
//! compilation), and a full soak run — simulator, probes, and sampled
//! timeline included — reproduces exactly under a pinned seed.

use proptest::prelude::*;
use synthtrace::scenario::{timeline_digest, ScenarioSpec, SoakRunner, FAMILIES};

/// Decodes one generated `(code, a, b)` triple into a DSL component,
/// covering every order-insensitive builder (all but `region_latency`,
/// whose matrix argument would need its own generator; it gets a
/// dedicated case below).
fn add_component(spec: ScenarioSpec, code: u8, a: u64, b: u64) -> ScenarioSpec {
    match code % 7 {
        0 => spec.session_churn(600 + a % 3_600),
        1 => spec.flash_crowd(a % 300_000, (b % 30) as u32 + 1, b % 120_000),
        2 => spec.diurnal(60 + (a % 600) as u32, (b % 100) as u32, 60_000 + b % 300_000),
        3 => {
            let regions = 2 + (a % 3) as u32;
            spec.region_partition(regions, (b % u64::from(regions)) as u32, a % 100_000, 100_000 + b % 200_000)
        }
        4 => spec.duplication((a % 20) as u32, (b % 2) as u32 + 1),
        5 => spec.loss((a % 10) as u32),
        6 => spec.decimation((a % 3) as u32 + 1, 60_000 + b % 120_000, (b % 200) as u32),
        _ => unreachable!(),
    }
}

fn build_spec(n0: u32, horizon_ms: u64, parts: &[(u8, u64, u64)]) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(n0, horizon_ms);
    for &(code, a, b) in parts {
        spec = add_component(spec, code, a, b);
    }
    spec
}

proptest! {
    /// Same spec, same seed ⇒ byte-identical compiled arcs (events, plan,
    /// latency, strictness — everything the digest covers), for any
    /// component mix.
    #[test]
    fn same_spec_same_seed_compiles_byte_identically(
        n0 in 2u32..80,
        horizon_ms in 60_000u64..900_000,
        seed in any::<u64>(),
        parts in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..6),
    ) {
        let a = build_spec(n0, horizon_ms, &parts).compile(seed);
        let b = build_spec(n0, horizon_ms, &parts).compile(seed);
        prop_assert_eq!(a.events.clone(), b.events.clone());
        prop_assert_eq!(a.strictness, b.strictness);
        prop_assert_eq!(a.digest(), b.digest());
    }

    /// Component insertion order does not matter: compilation canonically
    /// sorts components, so any rotation of the same mix compiles to the
    /// same digest.
    #[test]
    fn composition_order_is_insensitive(
        n0 in 2u32..80,
        horizon_ms in 60_000u64..900_000,
        seed in any::<u64>(),
        parts in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..6),
        rot in any::<usize>(),
    ) {
        let mut rotated = parts.clone();
        rotated.rotate_left(rot % parts.len());
        let a = build_spec(n0, horizon_ms, &parts).compile(seed);
        let b = build_spec(n0, horizon_ms, &rotated).compile(seed);
        prop_assert_eq!(a.events.clone(), b.events.clone());
        prop_assert_eq!(a.digest(), b.digest());
    }

    /// Different seeds must not collide on churn-bearing arcs (the seed
    /// drives session sampling; a collision would mean the seed is
    /// ignored).
    #[test]
    fn churn_compilation_uses_the_seed(seed in any::<u64>()) {
        let spec = || ScenarioSpec::new(30, 600_000).session_churn(1_200);
        let a = spec().compile(seed);
        let b = spec().compile(seed.wrapping_add(1));
        prop_assert_eq!(a.digest(), spec().compile(seed).digest());
        // Sessions are seed-driven, so adjacent seeds virtually always
        // produce different schedules; tolerate the astronomically
        // unlikely collision by comparing events, not digests.
        prop_assert!(a.events != b.events || a.digest() == b.digest());
    }
}

/// Region latency matrices participate in the digest and in order
/// insensitivity like every other component.
#[test]
fn region_latency_composes_order_insensitively() {
    let m = [(5, 5), (40, 80), (40, 80), (5, 5)];
    let a = ScenarioSpec::new(40, 300_000)
        .region_latency(2, &m)
        .session_churn(900)
        .compile(9);
    let b = ScenarioSpec::new(40, 300_000)
        .session_churn(900)
        .region_latency(2, &m)
        .compile(9);
    assert_eq!(a.digest(), b.digest());
}

/// Every named family compiles deterministically under a pinned seed.
#[test]
fn families_compile_deterministically() {
    for family in FAMILIES {
        let spec = ScenarioSpec::family(family, 50, 600_000).expect("known family");
        let a = spec.compile(1337);
        let b = spec.compile(1337);
        assert_eq!(a.digest(), b.digest(), "family {family} compiled non-deterministically");
    }
}

/// The full runner — simulator, probe issue/harvest, health sampling —
/// reproduces exactly: two runs of the same `(spec, seed)` yield the same
/// sampled timeline, the same probe deliveries, and the same per-query
/// stats fingerprints.
#[test]
fn full_soak_run_reproduces_under_pinned_seed() {
    let run = || {
        let spec = ScenarioSpec::new(30, 240_000)
            .warmup_ms(60_000)
            .probe_every_ms(60_000)
            .session_churn(1_800)
            .diurnal(120, 60, 120_000);
        let mut runner = SoakRunner::new(&spec, 4242);
        let mut fingerprints = Vec::new();
        let samples = runner
            .run_with(60_000, |st| fingerprints.push(st.fingerprint()))
            .expect("clean arc");
        (timeline_digest(&samples), runner.probes().to_vec(), fingerprints)
    };
    let (digest_a, probes_a, fp_a) = run();
    let (digest_b, probes_b, fp_b) = run();
    assert_eq!(digest_a, digest_b, "sampled timelines diverged");
    assert_eq!(probes_a, probes_b, "probe deliveries diverged");
    assert_eq!(fp_a, fp_b, "harvested query stats diverged");
    assert!(!fp_a.is_empty(), "the arc must harvest at least one probe");
}
