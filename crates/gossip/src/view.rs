use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Descriptor, NodeId};

/// A bounded partial view: at most `capacity` descriptors, at most one per
/// peer id. This is the data structure underlying both gossip layers.
///
/// Lookups scan the entry vector linearly: views are small (capacity ~20),
/// so a scan over one cache line of ids beats maintaining a side
/// `HashMap<NodeId, usize>` — which at a million nodes cost more memory
/// than the descriptors themselves and had to be repaired on every
/// swap-remove.
#[derive(Debug, Clone)]
pub struct View<P> {
    entries: Vec<Descriptor<P>>,
    capacity: usize,
    /// Monotone count of ids that *entered* the view (were not present the
    /// instant before). The overlay-health replacement-rate gauge: drivers
    /// read consecutive values and report the delta per gossip round.
    turnover: u64,
}

impl<P> View<P> {
    /// Creates an empty view holding at most `capacity` descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        View { entries: Vec::with_capacity(capacity), capacity, turnover: 0 }
    }

    /// Maximum number of descriptors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Monotone count of distinct entries that have joined the view over
    /// its lifetime (each id counts once per *entry*, so an id that leaves
    /// and comes back counts again). Never reset; subtract two readings to
    /// get a replacement rate.
    pub fn turnover(&self) -> u64 {
        self.turnover
    }

    /// Mean descriptor age in fixed-point thousandths of a round (integer
    /// so the observability schema stays float-free); 0 when empty.
    pub fn mean_age_x1000(&self) -> u64 {
        if self.entries.is_empty() {
            return 0;
        }
        let sum: u64 = self.entries.iter().map(|d| u64::from(d.age)).sum();
        sum * 1000 / self.entries.len() as u64
    }

    /// Current number of descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Position of `id`'s descriptor, if present.
    fn position(&self, id: NodeId) -> Option<usize> {
        self.entries.iter().position(|d| d.id == id)
    }

    /// Whether the view holds a descriptor for `id`.
    pub fn contains(&self, id: NodeId) -> bool {
        self.position(id).is_some()
    }

    /// The descriptor for `id`, if present.
    pub fn get(&self, id: NodeId) -> Option<&Descriptor<P>> {
        self.position(id).map(|i| &self.entries[i])
    }

    /// Iterates over the descriptors in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Descriptor<P>> {
        self.entries.iter()
    }

    /// Increments every descriptor's age by one round.
    pub fn increase_ages(&mut self) {
        for d in &mut self.entries {
            d.age = d.age.saturating_add(1);
        }
    }

    /// Inserts or replaces the descriptor for `d.id`. When the view is full
    /// and `d.id` is new, the *oldest* entry is evicted (age-based healing).
    /// When replacing, the fresher (lower-age) descriptor wins.
    pub fn insert(&mut self, d: Descriptor<P>) {
        if let Some(i) = self.position(d.id) {
            if d.age <= self.entries[i].age {
                self.entries[i] = d;
            }
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(d);
            self.turnover += 1;
            return;
        }
        if let Some(i) = self.oldest_index() {
            if d.age <= self.entries[i].age {
                self.entries[i] = d;
                self.turnover += 1;
            }
        }
    }

    /// Removes and returns the descriptor for `id`.
    pub fn remove(&mut self, id: NodeId) -> Option<Descriptor<P>> {
        let i = self.position(id)?;
        Some(self.entries.swap_remove(i))
    }

    /// The id of the oldest descriptor (CYCLON's shuffle-partner choice).
    pub fn oldest(&self) -> Option<NodeId> {
        self.oldest_index().map(|i| self.entries[i].id)
    }

    fn oldest_index(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.age)
            .map(|(i, _)| i)
    }

    /// All peer ids currently in the view.
    pub fn ids(&self) -> Vec<NodeId> {
        self.entries.iter().map(|d| d.id).collect()
    }

    /// A uniformly random descriptor.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Descriptor<P>> {
        self.entries.choose(rng)
    }
}

impl<P: Clone> View<P> {
    /// Up to `n` distinct random descriptors, optionally excluding one id
    /// (CYCLON excludes the shuffle partner from the sent subset).
    pub fn random_subset<R: Rng + ?Sized>(
        &self,
        n: usize,
        exclude: Option<NodeId>,
        rng: &mut R,
    ) -> Vec<Descriptor<P>> {
        let mut pool: Vec<&Descriptor<P>> = self
            .entries
            .iter()
            .filter(|d| Some(d.id) != exclude)
            .collect();
        pool.shuffle(rng);
        pool.into_iter().take(n).cloned().collect()
    }

    /// CYCLON's merge rule: for each received descriptor (skipping our own id
    /// and known peers, where only a fresher age is kept), fill empty slots
    /// first, then overwrite slots whose descriptor was just *sent* to the
    /// peer, and drop the rest.
    pub fn merge_shuffle(
        &mut self,
        received: Vec<Descriptor<P>>,
        sent: &[NodeId],
        self_id: NodeId,
    ) {
        let mut replaceable: Vec<NodeId> = sent.to_vec();
        for d in received {
            if d.id == self_id {
                continue;
            }
            if let Some(i) = self.position(d.id) {
                if d.age < self.entries[i].age {
                    self.entries[i] = d;
                }
                continue;
            }
            if self.entries.len() < self.capacity {
                self.entries.push(d);
                self.turnover += 1;
                continue;
            }
            while let Some(victim) = replaceable.pop() {
                if let Some(i) = self.position(victim) {
                    self.entries[i] = d.clone();
                    self.turnover += 1;
                    break;
                }
            }
            // View full and nothing replaceable: the descriptor is dropped.
        }
    }

    /// All descriptors, cloned (used to pool candidates across layers).
    pub fn to_vec(&self) -> Vec<Descriptor<P>> {
        self.entries.clone()
    }

    /// Drops every descriptor and re-inserts from `entries` (bounded by
    /// capacity; later duplicates are ignored). Used by selector-driven
    /// layers after re-ranking.
    pub fn replace_all(&mut self, entries: Vec<Descriptor<P>>) {
        let previous: Vec<NodeId> = self.ids();
        self.entries.clear();
        for d in entries {
            if self.entries.len() == self.capacity {
                break;
            }
            if !self.contains(d.id) {
                if !previous.contains(&d.id) {
                    self.turnover += 1;
                }
                self.entries.push(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(id: NodeId, age: u32) -> Descriptor<u8> {
        Descriptor { id, profile: 0, age }
    }

    #[test]
    fn insert_dedupes_by_id_keeping_fresher() {
        let mut v = View::new(4);
        v.insert(d(1, 5));
        v.insert(d(1, 2));
        assert_eq!(v.get(1).unwrap().age, 2);
        v.insert(d(1, 9)); // staler: ignored
        assert_eq!(v.get(1).unwrap().age, 2);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn insert_full_evicts_oldest_if_staler() {
        let mut v = View::new(2);
        v.insert(d(1, 5));
        v.insert(d(2, 1));
        v.insert(d(3, 0)); // evicts id 1 (oldest)
        assert!(!v.contains(1));
        assert!(v.contains(2) && v.contains(3));
        v.insert(d(4, 9)); // older than current oldest: dropped
        assert!(!v.contains(4));
    }

    #[test]
    fn remove_keeps_lookup_consistent() {
        let mut v = View::new(4);
        for i in 1..=4 {
            v.insert(d(i, i as u32));
        }
        assert!(v.remove(2).is_some());
        assert!(v.remove(2).is_none());
        assert_eq!(v.len(), 3);
        for i in [1u64, 3, 4] {
            assert_eq!(v.get(i).unwrap().id, i);
        }
    }

    #[test]
    fn oldest_picks_max_age() {
        let mut v = View::new(4);
        v.insert(d(1, 3));
        v.insert(d(2, 7));
        v.insert(d(3, 5));
        assert_eq!(v.oldest(), Some(2));
    }

    #[test]
    fn random_subset_excludes_and_bounds() {
        let mut v = View::new(8);
        for i in 1..=6 {
            v.insert(d(i, 0));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = v.random_subset(3, Some(4), &mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|x| x.id != 4));
        let all = v.random_subset(100, None, &mut rng);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn merge_shuffle_fills_then_replaces_sent() {
        let mut v = View::new(3);
        v.insert(d(1, 4));
        v.insert(d(2, 1));
        // We sent descriptor 1 away; merge three received entries.
        v.merge_shuffle(vec![d(10, 0), d(11, 0), d(12, 0)], &[1], 99);
        assert_eq!(v.len(), 3);
        assert!(v.contains(10)); // filled the empty slot
        assert!(v.contains(2)); // untouched: was not sent
        assert!(!v.contains(1)); // replaced by 11 or 12
        // Exactly one of 11/12 placed, the other dropped.
        assert_eq!([11, 12].iter().filter(|&&i| v.contains(i)).count(), 1);
    }

    #[test]
    fn merge_shuffle_skips_self_and_known() {
        let mut v = View::new(3);
        v.insert(d(1, 4));
        v.merge_shuffle(vec![d(99, 0), d(1, 9)], &[], 99);
        assert!(!v.contains(99));
        assert_eq!(v.get(1).unwrap().age, 4, "staler duplicate ignored");
        v.merge_shuffle(vec![d(1, 0)], &[], 99);
        assert_eq!(v.get(1).unwrap().age, 0, "fresher duplicate adopted");
    }

    #[test]
    fn replace_all_bounds_and_dedupes() {
        let mut v = View::new(2);
        v.replace_all(vec![d(1, 0), d(1, 5), d(2, 0), d(3, 0)]);
        assert_eq!(v.len(), 2);
        assert!(v.contains(1) && v.contains(2));
        assert_eq!(v.get(1).unwrap().age, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: View<u8> = View::new(0);
    }

    #[test]
    fn turnover_counts_entries_not_refreshes() {
        let mut v = View::new(2);
        v.insert(d(1, 5));
        v.insert(d(2, 1));
        assert_eq!(v.turnover(), 2);
        v.insert(d(1, 0)); // refresh of a known id: no turnover
        assert_eq!(v.turnover(), 2);
        v.insert(d(3, 0)); // evicts oldest → one replacement
        assert_eq!(v.turnover(), 3);
        // replace_all: id 3 survives, id 9 is new → +1.
        v.replace_all(vec![d(3, 0), d(9, 0)]);
        assert_eq!(v.turnover(), 4);
        // An id that left and comes back counts again.
        v.replace_all(vec![d(1, 0)]);
        assert_eq!(v.turnover(), 5);
    }

    #[test]
    fn mean_age_is_fixed_point_thousandths() {
        let mut v = View::new(4);
        assert_eq!(v.mean_age_x1000(), 0);
        v.insert(d(1, 1));
        v.insert(d(2, 2));
        assert_eq!(v.mean_age_x1000(), 1500);
    }
}
