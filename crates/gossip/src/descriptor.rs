use std::fmt;

/// Globally unique node identifier.
///
/// Deployments map this to a transport address; the simulator uses it as an
/// array index. Churned nodes re-enter under a *fresh* id, exactly as in the
/// paper's churn experiments (§6.6).
pub type NodeId = u64;

/// A gossip view entry: a peer's identity, its *profile* (for resource
/// selection: the peer's attribute values / cell coordinate), and an age in
/// gossip rounds used by CYCLON to prefer shuffling with — and eventually
/// evicting — the stalest entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Descriptor<P> {
    /// The peer's identifier.
    pub id: NodeId,
    /// Application payload describing the peer.
    pub profile: P,
    /// Rounds since this descriptor was created by its subject.
    pub age: u32,
}

impl<P> Descriptor<P> {
    /// Creates a fresh (age 0) descriptor.
    pub fn new(id: NodeId, profile: P) -> Self {
        Descriptor { id, profile, age: 0 }
    }

    /// A copy with age reset to zero (used when a node advertises itself).
    pub fn refreshed(&self) -> Self
    where
        P: Clone,
    {
        Descriptor { id: self.id, profile: self.profile.clone(), age: 0 }
    }
}

impl<P: fmt::Debug> fmt::Display for Descriptor<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}(age {}, {:?})", self.id, self.age, self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refreshed_resets_age_only() {
        let mut d = Descriptor::new(7, "x");
        d.age = 12;
        let r = d.refreshed();
        assert_eq!(r.id, 7);
        assert_eq!(r.profile, "x");
        assert_eq!(r.age, 0);
        assert_eq!(d.age, 12);
    }

    #[test]
    fn display_mentions_id_and_age() {
        let d = Descriptor { id: 3, profile: 9u32, age: 2 };
        assert_eq!(d.to_string(), "#3(age 2, 9)");
    }
}
