use std::fmt;
use std::sync::Arc;

use autosel_obs::{Event, ObsHandle};
use rand::Rng;

use crate::{Cyclon, Descriptor, GossipConfig, NodeId, Selector, Vicinity};

/// Which gossip layer a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Bottom layer: CYCLON random peer sampling.
    Random,
    /// Top layer: selector-driven semantic proximity.
    Semantic,
}

/// A gossip wire message. Requests carry the sender's current profile so the
/// semantic layer can rank its reply from the requester's vantage point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipMessage<P> {
    /// Gossip initiation carrying a batch of descriptors.
    Request {
        /// Target layer.
        layer: Layer,
        /// The initiator's current profile.
        from_profile: P,
        /// Descriptors offered by the initiator.
        batch: Vec<Descriptor<P>>,
    },
    /// Reply to a [`GossipMessage::Request`].
    Response {
        /// Target layer.
        layer: Layer,
        /// Descriptors returned by the responder.
        batch: Vec<Descriptor<P>>,
    },
}

/// A node's complete two-layer gossip state (§5 of the paper): CYCLON
/// underneath for connectivity and randomness, a [`Vicinity`] layer on top
/// for semantic links, with the random layer continuously feeding candidates
/// to the semantic one.
///
/// Sans-IO: [`tick`](Self::tick) and [`handle`](Self::handle) return the
/// messages to transmit; the caller owns clocks and sockets.
pub struct GossipStack<P> {
    cyclon: Cyclon<P>,
    vicinity: Vicinity<P>,
    config: GossipConfig,
    next_gossip_at: u64,
    profile: P,
    /// Observability sink; null by default.
    obs: ObsHandle,
    /// Turnover readings at the previous emitted round, per layer
    /// (random, semantic) — consecutive deltas are the replacement rate.
    last_turnover: [u64; 2],
}

impl<P: fmt::Debug> fmt::Debug for GossipStack<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GossipStack")
            .field("id", &self.cyclon.id())
            .field("random", &self.cyclon.view().len())
            .field("semantic", &self.vicinity.view().len())
            .finish_non_exhaustive()
    }
}

impl<P: Clone> GossipStack<P> {
    /// Creates a stack for node `id` with the given profile and selector.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`GossipConfig::validate`].
    pub fn new(
        id: NodeId,
        profile: P,
        config: GossipConfig,
        selector: impl Selector<P> + 'static,
    ) -> Self {
        Self::with_selector(id, profile, config, Arc::new(selector))
    }

    /// Like [`new`](Self::new) but sharing an already-allocated selector.
    pub fn with_selector(
        id: NodeId,
        profile: P,
        config: GossipConfig,
        selector: Arc<dyn Selector<P>>,
    ) -> Self {
        config.validate();
        GossipStack {
            cyclon: Cyclon::new(id, profile.clone(), config.cyclon_view, config.cyclon_shuffle),
            vicinity: Vicinity::new(
                id,
                profile.clone(),
                config.semantic_view,
                config.semantic_shuffle,
                selector,
            ),
            config,
            next_gossip_at: 0,
            profile,
            obs: ObsHandle::null(),
            last_turnover: [0; 2],
        }
    }

    /// Installs an observability sink (null by default). Each gossip round
    /// then emits one [`Event::GossipRound`] per layer carrying the view
    /// size, mean descriptor age and replacement rate — the overlay-health
    /// gauges of the paper's Fig. 10/11 discussion.
    pub fn set_observer(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.cyclon.id()
    }

    /// This node's current profile.
    pub fn profile(&self) -> &P {
        &self.profile
    }

    /// The random (CYCLON) view.
    pub fn random_view(&self) -> &crate::View<P> {
        self.cyclon.view()
    }

    /// The semantic view.
    pub fn semantic_view(&self) -> &crate::View<P> {
        self.vicinity.view()
    }

    /// Seeds both layers with a known peer (bootstrap / rejoin).
    pub fn introduce(&mut self, id: NodeId, profile: P) {
        self.cyclon.introduce(id, profile.clone());
        self.vicinity.absorb(vec![Descriptor::new(id, profile)]);
    }

    /// Changes this node's advertised profile (attribute values changed).
    pub fn set_profile(&mut self, profile: P) {
        self.profile = profile.clone();
        self.cyclon.set_profile(profile.clone());
        self.vicinity.set_profile(profile);
    }

    /// Drops a peer from both layers (e.g. the transport reported a broken
    /// connection).
    pub fn evict(&mut self, id: NodeId) {
        self.cyclon.evict(id);
        self.vicinity.evict(id);
    }

    /// Delays the first gossip initiation until `at` — drivers use random
    /// offsets so a large population does not gossip in lock-step.
    pub fn schedule_first(&mut self, at: u64) {
        self.next_gossip_at = at;
    }

    /// When the next [`tick`](Self::tick) will actually initiate gossip.
    pub fn next_gossip_at(&self) -> u64 {
        self.next_gossip_at
    }

    /// Advances the clock. If a gossip period has elapsed, initiates one
    /// CYCLON shuffle and one semantic exchange and returns the messages to
    /// send. An unanswered shuffle partner from the previous round is
    /// presumed dead and evicted (the paper's continuous repair needs no
    /// other failure detector).
    pub fn tick<R: Rng + ?Sized>(
        &mut self,
        now: u64,
        rng: &mut R,
    ) -> Vec<(NodeId, GossipMessage<P>)> {
        if now < self.next_gossip_at {
            return Vec::new();
        }
        self.next_gossip_at = now.saturating_add(self.config.period_ms);

        if let Some(stale) = self.cyclon.pending_partner() {
            self.cyclon.abort_pending();
            self.evict(stale);
        }
        if let Some(stale) = self.vicinity.pending_partner() {
            self.vicinity.abort_pending();
            self.evict(stale);
        }

        // Random layer feeds the semantic layer (§5: "the underlying CYCLON
        // layer continuously feeds the top layer with random nodes").
        self.vicinity.absorb(self.cyclon.view().to_vec());

        // A starved random layer (every entry traded away or evicted, e.g.
        // after a massive failure) re-seeds itself from the semantic view —
        // without this the CYCLON layer could never recover on its own.
        if self.cyclon.view().is_empty() {
            if let Some(d) = self.vicinity.view().random(rng) {
                let (id, profile) = (d.id, d.profile.clone());
                self.cyclon.introduce(id, profile);
            }
        }

        let mut out = Vec::with_capacity(2);
        if let Some((partner, batch)) = self.cyclon.initiate(rng) {
            out.push((
                partner,
                GossipMessage::Request {
                    layer: Layer::Random,
                    from_profile: self.profile.clone(),
                    batch,
                },
            ));
        }
        if let Some((partner, batch)) = self.vicinity.initiate(rng) {
            out.push((
                partner,
                GossipMessage::Request {
                    layer: Layer::Semantic,
                    from_profile: self.profile.clone(),
                    batch,
                },
            ));
        }

        if self.obs.enabled() {
            let id = self.cyclon.id();
            for (i, (layer, view)) in [
                (autosel_obs::Layer::Random, self.cyclon.view()),
                (autosel_obs::Layer::Semantic, self.vicinity.view()),
            ]
            .into_iter()
            .enumerate()
            {
                let turnover = view.turnover();
                let replaced = turnover - self.last_turnover[i];
                self.last_turnover[i] = turnover;
                self.obs.emit(|| Event::GossipRound {
                    at: now,
                    node: id,
                    layer,
                    view_size: view.len() as u32,
                    mean_age_x1000: view.mean_age_x1000(),
                    replaced,
                });
            }
        }
        out
    }

    /// Processes an incoming gossip message, returning any replies to send.
    pub fn handle<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        msg: GossipMessage<P>,
        rng: &mut R,
    ) -> Vec<(NodeId, GossipMessage<P>)> {
        match msg {
            GossipMessage::Request { layer: Layer::Random, from_profile, batch } => {
                // Random-layer traffic is also a candidate source for the
                // semantic layer.
                self.vicinity.absorb(batch.clone());
                self.vicinity.absorb(vec![Descriptor::new(from, from_profile)]);
                let reply = self.cyclon.handle_request(from, batch, rng);
                vec![(from, GossipMessage::Response { layer: Layer::Random, batch: reply })]
            }
            GossipMessage::Request { layer: Layer::Semantic, from_profile, batch } => {
                let from_desc = Descriptor::new(from, from_profile);
                let reply = self.vicinity.handle_request(&from_desc, batch, rng);
                vec![(from, GossipMessage::Response { layer: Layer::Semantic, batch: reply })]
            }
            GossipMessage::Response { layer: Layer::Random, batch } => {
                self.vicinity.absorb(batch.clone());
                self.cyclon.handle_response(from, batch);
                Vec::new()
            }
            GossipMessage::Response { layer: Layer::Semantic, batch } => {
                self.vicinity.handle_response(from, batch);
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RankSelector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stack(id: NodeId, profile: u64) -> GossipStack<u64> {
        GossipStack::new(
            id,
            profile,
            GossipConfig { period_ms: 1000, ..GossipConfig::default() },
            RankSelector::new(|a: &u64, b: &u64| a.abs_diff(*b)),
        )
    }

    #[test]
    fn tick_respects_period() {
        let mut a = stack(1, 5);
        a.introduce(2, 6);
        a.introduce(3, 7); // second peer survives the stale-partner eviction
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!a.tick(0, &mut rng).is_empty());
        assert!(a.tick(500, &mut rng).is_empty(), "period not yet elapsed");
        assert!(!a.tick(1000, &mut rng).is_empty());
    }

    #[test]
    fn isolated_node_stays_silent() {
        let mut a = stack(1, 5);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(a.tick(0, &mut rng).is_empty());
    }

    #[test]
    fn full_round_trip_populates_both_layers() {
        let mut a = stack(1, 5);
        let mut b = stack(2, 6);
        a.introduce(2, 6);
        let mut rng = StdRng::seed_from_u64(3);
        let msgs = a.tick(0, &mut rng);
        assert_eq!(msgs.len(), 2, "one initiation per layer");
        for (dst, m) in msgs {
            assert_eq!(dst, 2);
            for (back, reply) in b.handle(1, m, &mut rng) {
                assert_eq!(back, 1);
                a.handle(2, reply, &mut rng);
            }
        }
        assert!(b.random_view().contains(1) || b.semantic_view().contains(1));
        assert!(b.semantic_view().contains(1), "semantic layer learned requester");
    }

    #[test]
    fn unanswered_partner_evicted_next_round() {
        let mut a = stack(1, 5);
        a.introduce(2, 6);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = a.tick(0, &mut rng); // shuffle sent to 2, never answered
        let _ = a.tick(1000, &mut rng);
        assert!(!a.random_view().contains(2));
        assert!(!a.semantic_view().contains(2));
    }

    #[test]
    fn set_profile_is_advertised() {
        let mut a = stack(1, 5);
        let mut b = stack(2, 6);
        a.introduce(2, 6);
        a.set_profile(50);
        let mut rng = StdRng::seed_from_u64(3);
        for (_, m) in a.tick(0, &mut rng) {
            b.handle(1, m, &mut rng);
        }
        let d = b
            .semantic_view()
            .get(1)
            .or_else(|| b.random_view().get(1))
            .expect("B learned A");
        assert_eq!(d.profile, 50);
    }
}
