use std::fmt;

use crate::Descriptor;

/// Policy deciding which descriptors the semantic layer keeps.
///
/// Given this node's own profile and a candidate pool (current view ∪
/// received descriptors ∪ fresh random peers from CYCLON), return the
/// descriptors worth keeping, best first, at most `capacity` of them.
///
/// Implementations must be deterministic in their inputs; duplicates by id
/// have already been collapsed to the freshest descriptor when `select` is
/// called.
pub trait Selector<P>: Send + Sync {
    /// Ranks and truncates the candidate pool.
    fn select(
        &self,
        own: &P,
        candidates: Vec<Descriptor<P>>,
        capacity: usize,
    ) -> Vec<Descriptor<P>>;
}

/// A [`Selector`] that keeps the `capacity` candidates minimizing a distance
/// function — the classic Vicinity "semantic proximity" policy. Useful on its
/// own for tests and for simple similarity overlays; the resource-selection
/// crate supplies a slot-quota selector instead.
#[derive(Clone)]
pub struct RankSelector<P, F> {
    distance: F,
    _marker: std::marker::PhantomData<fn(&P)>,
}

impl<P, F> RankSelector<P, F>
where
    F: Fn(&P, &P) -> u64,
{
    /// Creates a selector from a symmetric distance function.
    pub fn new(distance: F) -> Self {
        RankSelector { distance, _marker: std::marker::PhantomData }
    }
}

impl<P, F> fmt::Debug for RankSelector<P, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RankSelector").finish_non_exhaustive()
    }
}

impl<P, F> Selector<P> for RankSelector<P, F>
where
    P: Clone + Send + Sync,
    F: Fn(&P, &P) -> u64 + Send + Sync,
{
    fn select(
        &self,
        own: &P,
        mut candidates: Vec<Descriptor<P>>,
        capacity: usize,
    ) -> Vec<Descriptor<P>> {
        candidates.sort_by_key(|d| ((self.distance)(own, &d.profile), d.age, d.id));
        candidates.truncate(capacity);
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_selector_keeps_closest() {
        let s = RankSelector::new(|a: &u64, b: &u64| a.abs_diff(*b));
        let cands = vec![
            Descriptor::new(1, 100u64),
            Descriptor::new(2, 13),
            Descriptor::new(3, 11),
            Descriptor::new(4, 50),
        ];
        let kept = s.select(&10, cands, 2);
        assert_eq!(kept.iter().map(|d| d.id).collect::<Vec<_>>(), vec![3, 2]);
    }

    #[test]
    fn ties_break_by_age_then_id() {
        let s = RankSelector::new(|_: &u64, _: &u64| 0);
        let kept = s.select(
            &0,
            vec![
                Descriptor { id: 5, profile: 0, age: 3 },
                Descriptor { id: 9, profile: 0, age: 0 },
                Descriptor { id: 2, profile: 0, age: 0 },
            ],
            2,
        );
        assert_eq!(kept.iter().map(|d| d.id).collect::<Vec<_>>(), vec![2, 9]);
    }
}
