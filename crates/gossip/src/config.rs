/// Tuning knobs for the two gossip layers.
///
/// Defaults follow Table 1 of the paper: a 10-second gossip period and a
/// cache (view) size of 20 for both layers. Times are in milliseconds of
/// whatever clock drives [`GossipStack::tick`](crate::GossipStack::tick) —
/// virtual milliseconds in the simulator, wall-clock in deployments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipConfig {
    /// CYCLON view size `Kc`.
    pub cyclon_view: usize,
    /// Number of descriptors exchanged per CYCLON shuffle (`g`).
    pub cyclon_shuffle: usize,
    /// Semantic-layer view size `Kv`.
    pub semantic_view: usize,
    /// Number of descriptors exchanged per semantic gossip.
    pub semantic_shuffle: usize,
    /// Period between gossip initiations, per layer, in clock units (ms).
    pub period_ms: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            cyclon_view: 20,
            cyclon_shuffle: 5,
            semantic_view: 20,
            semantic_shuffle: 10,
            period_ms: 10_000,
        }
    }
}

impl GossipConfig {
    /// Validates the configuration, panicking on nonsensical values.
    ///
    /// # Panics
    ///
    /// Panics if any view or shuffle size is zero, a shuffle exceeds its view,
    /// or the period is zero.
    pub fn validate(&self) {
        assert!(self.cyclon_view > 0, "cyclon view size must be positive");
        assert!(self.semantic_view > 0, "semantic view size must be positive");
        assert!(
            self.cyclon_shuffle > 0 && self.cyclon_shuffle <= self.cyclon_view,
            "cyclon shuffle length must be in [1, view size]"
        );
        assert!(
            self.semantic_shuffle > 0 && self.semantic_shuffle <= self.semantic_view,
            "semantic shuffle length must be in [1, view size]"
        );
        assert!(self.period_ms > 0, "gossip period must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table_1() {
        let c = GossipConfig::default();
        assert_eq!(c.period_ms, 10_000);
        assert_eq!(c.cyclon_view, 20);
        assert_eq!(c.semantic_view, 20);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "shuffle length")]
    fn oversized_shuffle_rejected() {
        GossipConfig { cyclon_shuffle: 21, ..GossipConfig::default() }.validate();
    }
}
