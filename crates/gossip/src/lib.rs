//! # epigossip — two-layer epidemic overlay maintenance
//!
//! The ICDCS'09 resource-selection overlay is kept alive by the two-layer
//! gossip stack of §5:
//!
//! 1. the **bottom layer** runs [CYCLON] — every node keeps `Kc` random links
//!    and periodically *shuffles* a few of them with its oldest neighbor,
//!    yielding a continuously refreshed random graph that is extremely robust
//!    to churn and partitions;
//! 2. the **top (semantic) layer** keeps `Kv` links chosen *by attribute
//!    proximity* rather than at random: each exchange pools the peers both
//!    nodes know about and a pluggable [`Selector`] retains the most useful
//!    ones (for resource selection: peers covering the node's neighboring
//!    cells `N(l,k)`). The CYCLON layer continuously feeds it fresh random
//!    candidates so the semantic views cannot get stuck in local optima.
//!
//! The whole crate is **sans-IO**: a [`GossipStack`] consumes
//! `(now, message)` pairs and produces `(destination, message)` pairs. The
//! discrete-event simulator and the network runtime drive the same code.
//!
//! [CYCLON]: https://doi.org/10.1007/s10922-005-4441-x
//!
//! ## Example: two nodes discover each other through a seed
//!
//! ```
//! use epigossip::{GossipConfig, GossipStack, RankSelector};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Profiles are just values; rank peers by |profile - mine|.
//! let selector = RankSelector::new(|mine: &u64, theirs: &u64| mine.abs_diff(*theirs));
//! let cfg = GossipConfig::default();
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! let mut a = GossipStack::new(1, 10u64, cfg.clone(), selector.clone());
//! let mut b = GossipStack::new(2, 11u64, cfg, selector);
//! a.introduce(2, 11);            // bootstrap: A knows B
//!
//! // One A-initiated round: tick A, deliver to B, deliver B's replies to A.
//! for (dst, msg) in a.tick(10_000, &mut rng) {
//!     assert_eq!(dst, 2);
//!     for (back, reply) in b.handle(1, msg, &mut rng) {
//!         assert_eq!(back, 1);
//!         a.handle(2, reply, &mut rng);
//!     }
//! }
//! assert!(b.random_view().contains(1)); // B learned about A from the shuffle
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod cyclon;
mod descriptor;
mod selector;
mod stack;
mod vicinity;
mod view;

pub use config::GossipConfig;
pub use cyclon::Cyclon;
pub use descriptor::{Descriptor, NodeId};
pub use selector::{RankSelector, Selector};
pub use stack::{GossipMessage, GossipStack, Layer};
pub use vicinity::Vicinity;
pub use view::View;
